#!/usr/bin/env python3
"""A web-session store: several structures, one pool, pipelined snapshots.

Shows the library beyond the paper's microbenchmark shapes:

* **named roots** — a sessions map, a login-event log, and an ordered
  expiry index share one pool and commit atomically together;
* **pipelined persist** (the §6 extension) — the request loop snapshots
  every N requests but only stalls for the snoop phase; commits retire in
  the background;
* crash + recovery across all three structures at once.
"""

from repro import BTree, HashMap, PersistentList, map_pool

REQUESTS = 300
SNAPSHOT_EVERY = 32


def main():
    pool = map_pool(pool_size=8 * 1024 * 1024, log_size=1024 * 1024)
    sessions = pool.persistent_named("sessions", HashMap, capacity=128)
    events = pool.persistent_named("events", PersistentList)
    expiry = pool.persistent_named("expiry", BTree)

    flights = []
    for request in range(REQUESTS):
        user = request % 40
        token = 0xAA00_0000 + request
        sessions.put(user, token)
        events.push_back(token)
        expiry.put(request + 1000, user)       # expires_at -> user
        if (request + 1) % SNAPSHOT_EVERY == 0:
            flights.append(pool.persist_async())

    pool.persist_barrier()     # retire the in-flight snapshots
    pool.persist()             # capture the tail after the last group
    committed = sum(1 for flight in flights if flight.committed)
    print("served %d requests, %d pipelined snapshots (all %d committed)"
          % (REQUESTS, len(flights), committed))

    # A few more requests, never snapshotted — then the power fails.
    for request in range(REQUESTS, REQUESTS + 20):
        sessions.put(request % 40, 0xDEAD_0000 + request)
        events.push_back(0xDEAD_0000 + request)
    pool.crash()
    print("power failure with %d un-snapshotted requests in flight" % 20)

    pool.restart()
    sessions = pool.reattach_named("sessions", HashMap)
    events = pool.reattach_named("events", PersistentList)
    expiry = pool.reattach_named("expiry", BTree)
    events.check_links()
    expiry.check_order()
    print("recovered: %d sessions, %d events, %d expiry entries — all"
          " from the same snapshot" % (len(sessions), len(events),
                                       len(expiry)))
    assert len(events) == REQUESTS               # exactly the snapshot
    assert all(value < 0xDEAD_0000 for value in events)
    # The expiry index walks in order and agrees with the session map.
    soonest, user = next(iter(expiry.items()))
    print("next expiry: t=%d (user %d, session 0x%x)"
          % (soonest, user, sessions.get(user)))


if __name__ == "__main__":
    main()
