"""The paper's contribution: the PAX persistence accelerator."""

from repro.core.config import PaxConfig
from repro.core.device import PaxDevice
from repro.core.epochs import EpochManager
from repro.core.hbm import HbmCache
from repro.core.pipeline import InFlightEpoch, PersistPipeline
from repro.core.recovery import RecoveryReport, recover_pool
from repro.core.replication import NetworkLink, ReplicaTarget, Replicator
from repro.core.undo import UndoLogger
from repro.core.writeback import WriteBackCoordinator

__all__ = [
    "EpochManager",
    "HbmCache",
    "InFlightEpoch",
    "NetworkLink",
    "PaxConfig",
    "PaxDevice",
    "PersistPipeline",
    "RecoveryReport",
    "ReplicaTarget",
    "Replicator",
    "UndoLogger",
    "WriteBackCoordinator",
    "recover_pool",
]
