"""The paging + PAX hybrid (paper §5.1, "Combining with Paging").

The paper's proposal, verbatim: "the application could directly map PM
pages as read-only; on a write page fault, the page could be remapped at
read/write through addresses assigned to vPM, letting PAX track changes
to the page at cache line granularity."

The win: reads of pages that are not being written skip the device hop
entirely (host-attached PM latency, no CXL round trip), while writes keep
PAX's line-granularity logging and snapshot semantics — page faults cost
>1 µs but happen once per written page per epoch.

Simulation: the pool's PM device is visible at *two* physical ranges —
the vPM range homed at the PAX device, and a direct range homed at the
host memory controller. A per-page table routes each access:

* ``DIRECT`` (read-only): loads use the direct range; stores fault,
  invalidate the page's direct-range cached lines (they would go stale),
  flip the page to ``VPM``, and retry through the device.
* ``VPM`` (read-write): all accesses use the vPM range; the device logs
  and snapshots as usual.
* ``persist()`` commits the PAX snapshot, then remaps every written page
  back to ``DIRECT`` — safe because persist just made PM current, and no
  store can touch the page again without a fresh fault.

Aliasing discipline (why two cached copies of one PM line stay coherent):
writes only ever travel the vPM path, and only after the direct-path
copies of that page are invalidated; between a persist and the next
fault, the page is read-only everywhere, so both paths serve the same
committed bytes.
"""

from repro.baselines.base import StructureBackend
from repro.errors import ProtocolError
from repro.libpax.machine import HEAP_PHYS_BASE
from repro.libpax.pool import PaxPool
from repro.cache.homes import HostHome
from repro.mem.accessor import MemoryAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.page_table import PagePermission, PageTable
from repro.util.bitops import split_pages
from repro.util.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.util.stats import StatGroup

#: Physical base of the direct (host-homed, read-only) view of the pool.
DIRECT_BASE = 1 << 33


class _DirectReadOnlyHome(HostHome):
    """The host memory controller's view of the pool PM: reads only.

    A dirty write-back arriving here would mean the aliasing discipline
    broke — fail loudly instead of corrupting the pool.
    """

    def writeback(self, line_addr, data):
        raise ProtocolError(
            "dirty write-back 0x%x on the read-only direct PM path"
            % line_addr)


class HybridAccessor(MemoryAccessor):
    """Routes loads/stores between the direct and vPM views per page."""

    def __init__(self, machine, direct_view_base, core_id=0):
        self._machine = machine
        self._direct_base = direct_view_base
        self._core = core_id
        self._table = PageTable(0, machine.heap_size)
        self._table.protect_all(PagePermission.READ)
        self.stats = StatGroup("hybrid_accessor")

    # -- page routing ---------------------------------------------------------

    def _is_vpm(self, page):
        return self._table.is_writable(page)

    def _fault(self, page):
        """First store to a DIRECT page this epoch: remap it into vPM."""
        machine = self._machine
        machine.clock.advance(machine.latency.software.page_fault_ns)
        machine.clock.advance(machine.latency.software.syscall_ns)
        # The direct-path cached copies of this page are about to go
        # stale; drop them (TLB-shootdown-style invalidation).
        for line in range(page, page + PAGE_SIZE, CACHE_LINE_SIZE):
            machine.hierarchy.snoop_invalidate(self._direct_base + line)
        self._table.protect(page, PAGE_SIZE, PagePermission.READ_WRITE)
        self.stats.counter("write_faults").add(1)

    def remap_all_direct(self):
        """After persist(): every page returns to the direct read path."""
        remapped = len(self._table.dirty_pages())
        self._table.clear_dirty()
        self._table.protect_all(PagePermission.READ)
        self.stats.counter("remap_sweeps").add(1)
        return remapped

    @property
    def vpm_pages(self):
        """Pages currently routed through the device."""
        return self._table.dirty_pages()

    # -- data path ----------------------------------------------------------------

    def read(self, addr, length):
        self._machine.check_alive()
        out = bytearray()
        for page, offset, chunk in split_pages(addr, length):
            base = (HEAP_PHYS_BASE if self._is_vpm(page)
                    else self._direct_base)
            out += self._machine.hierarchy.load(self._core,
                                                base + page + offset, chunk)
            if self._is_vpm(page):
                self.stats.counter("vpm_reads").add(1)
            else:
                self.stats.counter("direct_reads").add(1)
        return bytes(out)

    def write(self, addr, data):
        self._machine.check_alive()
        data = bytes(data)
        if self._machine.store_hook is not None:
            self._machine.store_hook(addr, data)
        cursor = 0
        for page, offset, chunk in split_pages(addr, len(data)):
            if not self._is_vpm(page):
                self._fault(page)
            self._table.mark_dirty(page)
            self._machine.hierarchy.store(
                self._core, HEAP_PHYS_BASE + page + offset,
                data[cursor:cursor + chunk])
            cursor += chunk


class HybridBackend(StructureBackend):
    """Hash table on the paging+PAX hybrid."""

    name = "hybrid"
    crash_consistent = True

    def __init__(self, pool_size=64 * 1024 * 1024, log_size=4 * 1024 * 1024,
                 capacity=1024, link="cxl", pax_config=None,
                 **machine_kwargs):
        super().__init__()
        self.pool = PaxPool.map_pool(pool_size=pool_size, log_size=log_size,
                                     link=link, pax_config=pax_config,
                                     **machine_kwargs)
        machine = self.pool.machine
        # Expose the same pool PM at a second, host-homed physical range.
        direct_space = AddressSpace()
        direct_space.map_device(DIRECT_BASE, machine.pm)
        lat = machine.latency
        home = _DirectReadOnlyHome("pm_direct_view", direct_space,
                                   lat.media.pm_read_ns,
                                   lat.media.pm_write_ns)
        machine.hierarchy.add_home(DIRECT_BASE, machine.pm.size, home)
        self._direct_view_base = DIRECT_BASE + machine.pool.data_base
        self._mem = HybridAccessor(machine, self._direct_view_base)
        # Rebind pool plumbing to the hybrid accessor.
        from repro.libpax.allocator import PmAllocator
        self._alloc = PmAllocator.create_or_attach(self._mem,
                                                   machine.heap_size)
        root = machine.pool.root_ptr
        if root:
            self._reattach_structure(self._mem, self._alloc, root)
        else:
            self._bind_structure(self._mem, self._alloc, capacity=capacity)
            self.persist()
            machine.pool.root_ptr = self._map.root

    @property
    def machine(self):
        return self.pool.machine

    def persist(self):
        """PAX snapshot, then flip every written page back to direct."""
        latency = self.pool.persist()
        self._mem.remap_all_direct()
        return latency

    def restart(self):
        """Reboot: standard PAX recovery; all pages reopen as direct."""
        report = self.pool.restart()
        machine = self.pool.machine
        # The rebooted hierarchy needs the direct home registered again.
        direct_space = AddressSpace()
        direct_space.map_device(DIRECT_BASE, machine.pm)
        lat = machine.latency
        home = _DirectReadOnlyHome("pm_direct_view", direct_space,
                                   lat.media.pm_read_ns,
                                   lat.media.pm_write_ns)
        machine.hierarchy.add_home(DIRECT_BASE, machine.pm.size, home)
        self._mem = HybridAccessor(machine, self._direct_view_base)
        from repro.libpax.allocator import PmAllocator
        self._alloc = PmAllocator.attach(self._mem)
        self._reattach_structure(self._mem, self._alloc,
                                 machine.pool.root_ptr)
        return report.records_rolled_back

    @property
    def fault_count(self):
        """Write faults taken (per written page per epoch)."""
        return self._mem.stats.get("write_faults")

    @property
    def direct_read_fraction(self):
        """Share of page-chunk reads served by the direct path."""
        direct = self._mem.stats.get("direct_reads")
        vpm = self._mem.stats.get("vpm_reads")
        total = direct + vpm
        return direct / total if total else 0.0

    @property
    def log_bytes(self):
        """Device undo-log bytes (same accounting as PaxBackend)."""
        from repro.pm.log import ENTRY_SIZE
        return self.machine.device.undo.stats.get("drained") * ENTRY_SIZE
