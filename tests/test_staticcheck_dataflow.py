"""The forward dataflow solver: must- vs may-analysis semantics at
joins and loops, TOP for unreachable code, and the divergence guard."""

import ast
import textwrap

import pytest

from repro.errors import LintError
from repro.staticcheck import (
    TOP,
    SetIntersectAnalysis,
    SetUnionAnalysis,
    build_cfg,
    dominators,
    postdominators,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


class _AssignedNames:
    """Shared transfer: accumulate names bound by Assign / for targets."""

    def transfer(self, fact, kind, node):
        if kind == "stmt" and isinstance(node, ast.Assign):
            names = frozenset(target.id for target in node.targets
                              if isinstance(target, ast.Name))
            return fact | names
        if kind == "for" and isinstance(node.target, ast.Name):
            return fact | {node.target.id}
        return fact


class MustAssigned(_AssignedNames, SetIntersectAnalysis):
    """Definitely-assigned-on-all-paths."""


class MayAssigned(_AssignedNames, SetUnionAnalysis):
    """Possibly-assigned-on-some-path."""


DIAMOND = """
    def f(p):
        if p:
            x = 1
            y = 2
        else:
            x = 3
        return x
"""


def test_must_analysis_intersects_at_joins():
    cfg = cfg_of(DIAMOND)
    at_exit = MustAssigned().solve(cfg)[cfg.exit]
    assert "x" in at_exit      # assigned on both arms
    assert "y" not in at_exit  # assigned on one arm only


def test_may_analysis_unions_at_joins():
    cfg = cfg_of(DIAMOND)
    at_exit = MayAssigned().solve(cfg)[cfg.exit]
    assert {"x", "y"} <= at_exit


def test_loop_body_is_not_guaranteed_to_run():
    cfg = cfg_of("""
        def f(items):
            for item in items:
                found = item
            return 0
    """)
    assert "found" not in MustAssigned().solve(cfg)[cfg.exit]
    assert "found" in MayAssigned().solve(cfg)[cfg.exit]


def test_facts_survive_the_back_edge():
    cfg = cfg_of("""
        def f(items):
            before = 1
            for item in items:
                inside = before
            return 0
    """)
    # "before" holds at loop entry from both the entry path and the
    # back edge, so the must-fact keeps it through the loop.
    assert "before" in MustAssigned().solve(cfg)[cfg.exit]


def test_unreachable_blocks_stay_top():
    cfg = cfg_of("""
        def f():
            return 1
            dead = 2
    """)
    in_facts = MustAssigned().solve(cfg)
    dead = [block for block in cfg.blocks
            if any(kind == "stmt" and isinstance(node, ast.Assign)
                   for kind, node in block.events)][0]
    assert in_facts[dead] is TOP


def test_block_out_applies_events_in_order():
    cfg = cfg_of("""
        def f():
            a = 1
            b = a
            return b
    """)
    analysis = MustAssigned()
    out = analysis.block_out(frozenset(), cfg.entry)
    assert {"a", "b"} <= out


class _NeverConverges(SetUnionAnalysis):
    """Grows its fact on every application — no fixpoint exists."""

    MAX_ITERATIONS = 3

    def transfer(self, fact, kind, node):
        return fact | {len(fact)}


def test_divergence_raises_a_typed_error():
    cfg = cfg_of("""
        def f(n):
            while n:
                n = n - 1
            return n
    """)
    with pytest.raises(LintError):
        _NeverConverges().solve(cfg)


# -- edge cases: exception edges, loop exits, degenerate graphs ------------


def _block_assigning(cfg, name):
    """The block containing ``<name> = ...`` (exactly one expected)."""
    matches = [
        block for block in cfg.blocks
        if any(kind == "stmt" and isinstance(node, ast.Assign)
               and any(isinstance(t, ast.Name) and t.id == name
                       for t in node.targets)
               for kind, node in block.events)]
    assert len(matches) == 1, matches
    return matches[0]


def test_except_edge_is_a_may_path_not_a_must_path():
    # Exception edges are block-granular: the handler meets the
    # out-facts of every guarded block, so a must-analysis keeps what
    # the straight-line prefix bound but cannot assume anything bound
    # past a branch point inside the try body.
    cfg = cfg_of("""
        def f(p):
            try:
                early = 1
                if p:
                    mid = 2
                late = 3
            except ValueError:
                handled = 4
            return 0
    """)
    handler = _block_assigning(cfg, "handled")
    must_in = MustAssigned().solve(cfg)[handler]
    assert "early" in must_in
    assert "mid" not in must_in
    assert "late" not in must_in
    assert {"mid", "late", "handled"} <= MayAssigned().solve(cfg)[cfg.exit]


def test_top_does_not_leak_through_except_meet():
    # The handler is reachable only via exception edges; TOP (the meet
    # identity on not-yet-visited paths) must not erase the facts those
    # edges carry, and the post-try join must keep what every path
    # (normal and handled) agrees on.
    cfg = cfg_of("""
        def f():
            base = 1
            try:
                risky = 2
            except KeyError:
                fallback = 3
            return 0
    """)
    solution = MustAssigned().solve(cfg)
    handler = _block_assigning(cfg, "fallback")
    assert solution[handler] is not TOP
    assert "base" in solution[handler]
    at_exit = solution[cfg.exit]
    assert "base" in at_exit            # bound before the try on all paths
    assert "fallback" not in at_exit    # only bound on the handled path


def test_dominators_on_loop_with_break_and_continue():
    cfg = cfg_of("""
        def f(items):
            head = 1
            for item in items:
                if item:
                    broke = 1
                    break
                else:
                    continue
            return head
    """)
    dom = dominators(cfg)
    head = _block_assigning(cfg, "head")
    broke = _block_assigning(cfg, "broke")
    # Straight-line facts: entry and the pre-loop block dominate
    # everything reachable, including the break arm and the exit.
    assert cfg.entry in dom[broke] and head in dom[broke]
    assert head in dom[cfg.exit]
    # The break arm is conditional: it dominates neither the exit nor
    # the loop head it jumps over.
    assert broke not in dom[cfg.exit]


def test_single_node_function_cfg_and_dominators():
    cfg = cfg_of("""
        def f():
            pass
    """)
    dom = dominators(cfg)
    pdom = postdominators(cfg)
    assert cfg.entry in dom[cfg.exit]
    assert cfg.exit in pdom[cfg.entry]
    assert MustAssigned().solve(cfg)[cfg.exit] == frozenset()


def test_postdominators_on_a_diamond():
    cfg = cfg_of(DIAMOND)
    pdom = postdominators(cfg)
    # The exit post-dominates every block; one arm of the branch
    # post-dominates nothing above it.
    y_arm = _block_assigning(cfg, "y")
    for block in cfg.blocks:
        assert cfg.exit in pdom[block]
    assert y_arm not in pdom[cfg.entry]


def test_postdominator_of_parked_unreachable_code():
    # Statements after an unconditional return are parked in a block
    # that is unreachable forward but still wired to the exit, so the
    # exit post-dominates it (and nothing else does).
    cfg = cfg_of("""
        def f():
            return 1
            dead = 2
    """)
    pdom = postdominators(cfg)
    dead = _block_assigning(cfg, "dead")
    assert pdom[dead] == {dead, cfg.exit}


def test_postdominators_with_no_path_to_exit():
    # A block with no path to the exit (never produced by build_cfg,
    # but hand-built CFGs and future lowerings can have them) must be
    # post-dominated only by itself — not by the vacuous universe.
    from repro.staticcheck.cfg import CFG, Block

    entry, exit_block, orphan = Block(0), Block(1), Block(2)
    entry.successors.append(exit_block)
    exit_block.predecessors.append(entry)
    entry.successors.append(orphan)
    orphan.predecessors.append(entry)
    cfg = CFG(None, [entry, exit_block, orphan], entry, exit_block)
    pdom = postdominators(cfg)
    assert pdom[orphan] == {orphan}
    assert pdom[entry] == {entry, exit_block}
