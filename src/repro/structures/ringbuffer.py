"""A bounded FIFO ring buffer of u64 over a memory accessor.

The classic persistent-queue shape (log shipping, task queues): a fixed
slot array plus head/tail counters. Like the other structures, it is
persistence-oblivious volatile code; head and tail live in separate cache
lines so an enqueue and a dequeue dirty disjoint lines — which makes it a
good crash-consistency specimen (a torn enqueue = tail bumped without the
slot written, or vice versa).

Layout::

    header: magic | capacity | head | pad | tail   (head/tail line-split)
    slots:  capacity contiguous u64 elements

``head`` and ``tail`` are free-running counters; slot index is
``counter % capacity``. Empty: head == tail. Full: tail - head == capacity.
"""

from repro.errors import ReproError, StructureError
from repro.mem.layout import StructLayout
from repro.util.constants import WORD_SIZE

RING_MAGIC = 0x504158524E473031     # "PAXRNG01"

_HEADER = StructLayout("ring_header", [
    ("magic", "u64"),
    ("capacity", "u64"),
    ("head", "u64"),
    # Pad so tail starts a new cache line: producers and consumers dirty
    # different lines (no false sharing, and crash-separable effects).
    ("pad", "u64:6"),
    ("tail", "u64"),
])


class RingBuffer:
    """Bounded FIFO of u64 values."""

    def __init__(self, mem, allocator, root):
        self._mem = mem
        self._alloc = allocator
        self.root = root
        self._hdr = _HEADER.view(mem, root)

    @classmethod
    def create(cls, mem, allocator, capacity=256):
        """Allocate and initialize an empty ring of ``capacity`` slots."""
        if capacity < 1:
            raise ReproError("ring capacity must be at least 1")
        root = allocator.alloc(_HEADER.size + capacity * WORD_SIZE)
        hdr = _HEADER.view(mem, root)
        hdr.set("capacity", capacity)
        hdr.set("head", 0)
        hdr.set("tail", 0)
        hdr.set("magic", RING_MAGIC)
        return cls(mem, allocator, root)

    @classmethod
    def attach(cls, mem, allocator, root):
        """Bind to an existing ring at ``root``."""
        instance = cls(mem, allocator, root)
        if instance._hdr.get("magic") != RING_MAGIC:
            raise ReproError("no ring buffer at offset 0x%x" % root)
        return instance

    def _slot_addr(self, counter):
        capacity = self._hdr.get("capacity")
        return (self.root + _HEADER.size
                + (counter % capacity) * WORD_SIZE)

    def __len__(self):
        return self._hdr.get("tail") - self._hdr.get("head")

    @property
    def capacity(self):
        """Slot count."""
        return self._hdr.get("capacity")

    def is_empty(self):
        """True when no values are queued."""
        return len(self) == 0

    def is_full(self):
        """True when every slot is occupied."""
        return len(self) >= self.capacity

    def enqueue(self, value):
        """Append ``value``; raises StructureError when full."""
        tail = self._hdr.get("tail")
        if tail - self._hdr.get("head") >= self.capacity:
            raise StructureError("ring buffer full")
        # Slot first, then the tail bump publishes it — the order that
        # makes a torn enqueue invisible rather than garbage-visible.
        self._mem.write_u64(self._slot_addr(tail), value)
        self._hdr.set("tail", tail + 1)

    def dequeue(self):
        """Pop the oldest value; raises StructureError when empty."""
        head = self._hdr.get("head")
        if self._hdr.get("tail") == head:
            raise StructureError("ring buffer empty")
        value = self._mem.read_u64(self._slot_addr(head))
        self._hdr.set("head", head + 1)
        return value

    def peek(self):
        """Oldest value without removing it."""
        head = self._hdr.get("head")
        if self._hdr.get("tail") == head:
            raise StructureError("ring buffer empty")
        return self._mem.read_u64(self._slot_addr(head))

    def __iter__(self):
        head = self._hdr.get("head")
        tail = self._hdr.get("tail")
        for counter in range(head, tail):
            yield self._mem.read_u64(self._slot_addr(counter))

    def to_list(self):
        """Materialize contents oldest-first (verification helper)."""
        return list(self)

    def check_invariants(self):
        """head <= tail and occupancy within capacity; raises otherwise."""
        head = self._hdr.get("head")
        tail = self._hdr.get("tail")
        if tail < head:
            raise ReproError("ring tail %d behind head %d" % (tail, head))
        if tail - head > self.capacity:
            raise ReproError("ring over-full: %d > %d"
                             % (tail - head, self.capacity))
        return True

    def __repr__(self):
        return "RingBuffer(root=0x%x, %d/%d)" % (self.root, len(self),
                                                 self.capacity)
