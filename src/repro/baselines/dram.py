"""The volatile DRAM backend — Figure 2's performance upper bound.

A hash table in DRAM behind the normal cache hierarchy. Fast, and loses
everything on a crash; it exists to anchor the top of the throughput
curves and the bottom of the AMAT bars.
"""

from repro.baselines.base import StructureBackend
from repro.errors import RecoveryError
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HostMachine


class DramBackend(StructureBackend):
    """Volatile hash table in DRAM."""

    name = "dram"
    crash_consistent = False

    def __init__(self, heap_size=64 * 1024 * 1024, capacity=1024, **machine_kwargs):
        super().__init__()
        self._machine = HostMachine(media="dram", heap_size=heap_size,
                                    **machine_kwargs)
        self._mem = self._machine.mem()
        self._alloc = PmAllocator.create(self._mem, heap_size)
        self._bind_structure(self._mem, self._alloc, capacity=capacity)
        self._capacity = capacity

    @property
    def machine(self):
        return self._machine

    def restart(self):
        """Reboot: DRAM is empty; start over with a fresh table."""
        self._machine.restart()
        self._alloc = PmAllocator.create(self._mem, self._machine.heap_size)
        self._bind_structure(self._mem, self._alloc, capacity=self._capacity)

    def verify_recovered(self, expected):
        """DRAM never recovers anything; only an empty expectation passes."""
        if expected:
            raise RecoveryError("DRAM backend cannot recover data")
        return True
