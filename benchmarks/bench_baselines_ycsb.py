"""abl-ycsb: every backend across YCSB-style mixes (paper §5.1's plan).

"Our plan is to compare these approaches in detail for a variety of
applications" — this bench runs mixes C (read-only), B (read-mostly),
A (update-heavy) and W (write-only) with zipfian keys over every backend
and prints simulated throughput.
"""

from benchmarks.conftest import bench_backend
from repro.analysis.report import Table
from repro.workloads.trace import apply_trace, interleave_persists
from repro.workloads.ycsb import YcsbWorkload

BACKENDS = ("dram", "pm_direct", "pax", "hybrid", "pmdk", "redo",
            "mprotect", "compiler")
MIXES = ("C", "B", "A", "W")
RECORDS = 6000
OPS = 2500
GROUP = 64


def run_cell(name, mix):
    backend = bench_backend(name)
    workload = YcsbWorkload(mix=mix, record_count=RECORDS, op_count=OPS,
                            distribution="zipfian", seed=11)
    apply_trace(backend, workload.load_trace())
    backend.persist()
    run_trace = interleave_persists(workload.run_trace(), GROUP)
    start = backend.now_ns
    ops = apply_trace(backend, run_trace)
    elapsed = backend.now_ns - start
    return ops * 1e3 / elapsed    # Mops (ops per simulated ms / 1000)


def run():
    return {mix: {name: run_cell(name, mix) for name in BACKENDS}
            for mix in MIXES}


def test_ycsb_matrix(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-ycsb: single-thread throughput [Mops] by mix",
                  ["backend"] + ["YCSB-%s" % mix for mix in MIXES])
    for name in BACKENDS:
        table.add_row(name, *[results[mix][name] for mix in MIXES])
    table.show()
    for mix in MIXES:
        cell = results[mix]
        # DRAM is the ceiling everywhere.
        assert all(cell["dram"] >= cell[name] * 0.99 for name in BACKENDS)
        # The WAL schemes pay more as the write fraction grows; on the
        # read-only mix everyone is within noise of PM direct except the
        # device-hop systems.
        if mix in ("A", "W"):
            assert cell["pm_direct"] > cell["pmdk"]
            assert cell["pax"] > cell["pmdk"]
            assert cell["pmdk"] > cell["compiler"]
    # Reads are where PAX's cacheability shines: on mix C it matches the
    # host-attached systems despite the device hop.
    read_only = results["C"]
    assert read_only["pax"] > 0.5 * read_only["pm_direct"]
