"""Replacement policies."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng


class TestLru:
    def test_victim_is_least_recent(self):
        policy = LruPolicy()
        for addr in (1, 2, 3):
            policy.on_insert(addr)
        assert policy.victim() == 1
        policy.on_access(1)
        assert policy.victim() == 2

    def test_remove(self):
        policy = LruPolicy()
        policy.on_insert(1)
        policy.on_insert(2)
        policy.on_remove(1)
        assert policy.victim() == 2

    def test_empty_victim_raises(self):
        with pytest.raises(ConfigError):
            LruPolicy().victim()

    def test_access_unknown_addr_ignored(self):
        policy = LruPolicy()
        policy.on_access(99)   # must not insert
        with pytest.raises(ConfigError):
            policy.victim()


class TestFifo:
    def test_victim_is_oldest_regardless_of_access(self):
        policy = FifoPolicy()
        for addr in (1, 2, 3):
            policy.on_insert(addr)
        policy.on_access(1)
        assert policy.victim() == 1

    def test_remove_unknown_is_noop(self):
        policy = FifoPolicy()
        policy.on_insert(1)
        policy.on_remove(99)
        assert policy.victim() == 1


class TestRandom:
    def test_victim_is_member(self):
        policy = RandomPolicy(DeterministicRng(1))
        for addr in (10, 20, 30):
            policy.on_insert(addr)
        assert policy.victim() in (10, 20, 30)

    def test_deterministic_given_seed(self):
        a = RandomPolicy(DeterministicRng(5))
        b = RandomPolicy(DeterministicRng(5))
        for addr in range(8):
            a.on_insert(addr)
            b.on_insert(addr)
        assert [a.victim() for _ in range(5)] == [b.victim() for _ in range(5)]


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("belady")

    def test_instances_are_fresh(self):
        a = make_policy("lru")
        b = make_policy("lru")
        a.on_insert(1)
        with pytest.raises(ConfigError):
            b.victim()
