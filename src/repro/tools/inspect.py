"""Pool inspection: what is durably inside a pool file.

Usage::

    python -m repro.tools.inspect path/to/ht.pool

Prints the superblock (epoch, root kind/pointer), the undo log's durable
contents grouped by epoch (a non-empty log means the pool crashed inside
an epoch and will roll back on next open), and allocator occupancy. The
tool is read-only and works on any pool file regardless of how it was
produced.
"""

import os
import sys

from repro.errors import PoolError, ReproError
from repro.libpax.allocator import ALLOC_MAGIC, HEADER_OFFSET, SIZE_CLASSES, _LAYOUT
from repro.mem.accessor import OffsetAccessor, RawAccessor
from repro.mem.address_space import AddressSpace
from repro.pm.device import PmDevice
from repro.pm.log import UndoLogRegion
from repro.pm.pool import (
    Pool,
    ROOT_KIND_DIRECTORY,
    ROOT_KIND_NONE,
    ROOT_KIND_SINGLE,
)
from repro.util.constants import NULL_ADDR, PAGE_SIZE

_ROOT_KIND_NAMES = {
    ROOT_KIND_NONE: "none",
    ROOT_KIND_SINGLE: "single structure",
    ROOT_KIND_DIRECTORY: "named-root directory",
}


def _open_pool_file(path):
    """Open ``path`` read-only as a (device, pool) pair.

    Module-private on purpose: the raw device must not leave this
    module (``pm-escape``); the public surface is :func:`inspect_pool`.
    """
    size = os.path.getsize(path)
    if size < 2 * PAGE_SIZE:
        raise PoolError("%s is too small to be a pool file" % path)
    device = PmDevice("inspect", size, backing_path=path)
    return device, Pool.open(device)


def inspect_pool(path):
    """Return a dict describing the pool's durable state."""
    device, pool = _open_pool_file(path)
    info = {
        "path": path,
        "size_bytes": device.size,
        "committed_epoch": pool.committed_epoch,
        "root_kind": _ROOT_KIND_NAMES.get(pool.root_kind,
                                          "unknown(%d)" % pool.root_kind),
        "root_ptr": pool.root_ptr,
        "log_capacity_entries": pool.log_size // 96,
        "log_entries_by_epoch": {},
        "needs_recovery": False,
        "allocator": None,
    }
    region = UndoLogRegion(device, pool.log_base, pool.log_size)
    for entry in region.scan():
        bucket = info["log_entries_by_epoch"]
        bucket[entry.epoch] = bucket.get(entry.epoch, 0) + 1
        if entry.epoch > pool.committed_epoch:
            info["needs_recovery"] = True
    info["allocator"] = _inspect_allocator(device, pool)
    return info


def _inspect_allocator(device, pool):
    space = AddressSpace()
    # Map the device at a page-aligned base so structure-space offset 0
    # lands on the pool's data region.
    base = PAGE_SIZE
    space.map_device(base, device)
    mem = OffsetAccessor(RawAccessor(space), base + pool.data_base)
    view = _LAYOUT.view(mem, HEADER_OFFSET)
    if view.get("magic") != ALLOC_MAGIC:
        return None
    free_blocks = {}
    for index, block_size in enumerate(SIZE_CLASSES):
        count = 0
        head = view.get("heads", index=index)
        seen = set()
        while head != NULL_ADDR and head not in seen and count < 1_000_000:
            seen.add(head)
            count += 1
            head = mem.read_u64(head)
        if count:
            free_blocks[block_size] = count
    bump = view.get("bump")
    limit = view.get("limit")
    return {
        "heap_used_bytes": bump,
        "heap_limit_bytes": limit,
        "utilization": bump / limit if limit else 0.0,
        "free_blocks_by_class": free_blocks,
    }


def format_report(info):
    """Human-readable report."""
    lines = []
    lines.append("pool:            %s (%d bytes)" % (info["path"],
                                                     info["size_bytes"]))
    lines.append("committed epoch: %d" % info["committed_epoch"])
    lines.append("root:            %s @ 0x%x" % (info["root_kind"],
                                                 info["root_ptr"]))
    total_entries = sum(info["log_entries_by_epoch"].values())
    lines.append("undo log:        %d/%d durable records"
                 % (total_entries, info["log_capacity_entries"]))
    for epoch, count in sorted(info["log_entries_by_epoch"].items()):
        status = ("dead (committed)" if epoch <= info["committed_epoch"]
                  else "LIVE — will roll back on open")
        lines.append("  epoch %-6d %5d records  %s" % (epoch, count, status))
    if info["needs_recovery"]:
        lines.append("state:           crashed mid-epoch; recovery pending")
    else:
        lines.append("state:           clean")
    allocator = info["allocator"]
    if allocator is None:
        lines.append("allocator:       not initialized")
    else:
        lines.append("allocator:       %d / %d bytes used (%.1f%%)"
                     % (allocator["heap_used_bytes"],
                        allocator["heap_limit_bytes"],
                        100 * allocator["utilization"]))
        for block_size, count in sorted(
                allocator["free_blocks_by_class"].items()):
            lines.append("  free %4d B blocks: %d" % (block_size, count))
    return "\n".join(lines)


def format_machine(machine):
    """Live-machine report: the analysis dump plus sanitizer state.

    Combines :func:`repro.analysis.machine_report.machine_report` with
    the attached sanitizer's ``describe()`` output when ``machine`` has a
    tracer that knows how to describe itself (e.g.
    :class:`~repro.sanitizer.PaxSanitizer`). Unlike :func:`format_report`
    this needs a running machine, not a pool file.
    """
    from repro.analysis.machine_report import machine_report
    parts = [machine_report(machine)]
    tracer = getattr(machine, "tracer", None)
    if tracer is not None and hasattr(tracer, "describe"):
        parts.append(tracer.describe())
    return "\n\n".join(parts)


def main(argv=None):
    """CLI entry point."""
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.tools.inspect <pool-file>",
              file=sys.stderr)
        return 2
    try:
        print(format_report(inspect_pool(argv[0])))
    except (OSError, ReproError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
