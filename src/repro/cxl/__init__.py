"""CXL.cache substrate: message types, link model, adapter, protocol ports."""

from repro.cxl.adapter import BusOp, CxlAdapter
from repro.cxl.link import CxlLink
from repro.cxl.lossy import LossyLink
from repro.cxl.messages import (
    CleanEvict,
    DataResponse,
    DirtyEvict,
    Go,
    Message,
    RdOwn,
    RdShared,
    SnpData,
    SnpInv,
    SnpResponse,
)
from repro.cxl.port import DevicePort, HostSnoopPort

__all__ = [
    "BusOp",
    "CleanEvict",
    "CxlAdapter",
    "CxlLink",
    "DataResponse",
    "DevicePort",
    "DirtyEvict",
    "Go",
    "HostSnoopPort",
    "LossyLink",
    "Message",
    "RdOwn",
    "RdShared",
    "SnpData",
    "SnpInv",
    "SnpResponse",
]
