"""Struct layouts: offsets, alignment, views, arrays."""

import pytest

from repro.errors import ConfigError
from repro.mem.accessor import RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.layout import StructLayout
from repro.mem.physical import MemoryDevice


def mem():
    space = AddressSpace()
    space.map_device(0x10000, MemoryDevice("m", 4096))
    return RawAccessor(space)


class TestLayout:
    def test_offsets_sequential(self):
        layout = StructLayout("s", [("a", "u64"), ("b", "u64")])
        assert layout.offset("a") == 0
        assert layout.offset("b") == 8
        assert layout.size == 16

    def test_natural_alignment_padding(self):
        layout = StructLayout("s", [("a", "u8"), ("b", "u64")])
        assert layout.offset("b") == 8
        assert layout.size == 16

    def test_packed_small_fields(self):
        layout = StructLayout("s", [("a", "u8"), ("b", "u8"), ("c", "u16")])
        assert layout.offset("c") == 2

    def test_size_rounds_to_word(self):
        layout = StructLayout("s", [("a", "u8")])
        assert layout.size == 8

    def test_array_field(self):
        layout = StructLayout("s", [("heads", "u64:4"), ("tail", "u64")])
        assert layout.offset("tail") == 32

    def test_bytes_field(self):
        layout = StructLayout("s", [("blob", "bytes:10"), ("n", "u64")])
        assert layout.field("blob").size == 10
        assert layout.offset("n") == 16   # aligned up

    def test_duplicate_field_rejected(self):
        with pytest.raises(ConfigError):
            StructLayout("s", [("a", "u64"), ("a", "u64")])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            StructLayout("s", [("a", "f64")])

    def test_empty_struct_has_min_size(self):
        assert StructLayout("s", []).size == 8


class TestView:
    def test_scalar_roundtrip(self):
        layout = StructLayout("s", [("key", "u64"), ("flags", "u32")])
        view = layout.view(mem(), 0x10100)
        view.set("key", 77)
        view.set("flags", 3)
        assert view.get("key") == 77
        assert view.get("flags") == 3

    def test_array_elements(self):
        layout = StructLayout("s", [("heads", "u64:4")])
        view = layout.view(mem(), 0x10100)
        for index in range(4):
            view.set("heads", index * 11, index=index)
        assert [view.get("heads", index=i) for i in range(4)] == [0, 11, 22, 33]

    def test_array_bounds(self):
        layout = StructLayout("s", [("heads", "u64:2")])
        view = layout.view(mem(), 0x10100)
        with pytest.raises(ConfigError):
            view.get("heads", index=2)

    def test_bytes_roundtrip(self):
        layout = StructLayout("s", [("blob", "bytes:4")])
        view = layout.view(mem(), 0x10100)
        view.set("blob", b"abcd")
        assert view.get("blob") == b"abcd"

    def test_bytes_wrong_size_rejected(self):
        layout = StructLayout("s", [("blob", "bytes:4")])
        view = layout.view(mem(), 0x10100)
        with pytest.raises(ConfigError):
            view.set("blob", b"toolong")

    def test_field_addr(self):
        layout = StructLayout("s", [("a", "u64"), ("b", "u64")])
        view = layout.view(mem(), 0x10100)
        assert view.field_addr("b") == 0x10108

    def test_views_are_memory_backed(self):
        layout = StructLayout("s", [("a", "u64")])
        accessor = mem()
        view1 = layout.view(accessor, 0x10100)
        view2 = layout.view(accessor, 0x10100)
        view1.set("a", 9)
        assert view2.get("a") == 9
