"""Trace recorder: capture a backend's event stream at the machine seams.

The recorder wraps a live backend's *semantic* entry points — hierarchy
loads/stores, raw address-space accesses, flush/fence, WAL append/reset,
``persist()`` — with thin instance-level shims that append one columnar
event each, then call through. A depth counter suppresses nested seams
(e.g. the address-space writes ``Wal.append`` performs internally, or the
home-fetch reads inside a cache miss), so the trace contains exactly the
top-level operations replay must re-issue; everything below them is
re-derived by the simulator during replay.

Recording is only faithful for workloads replay can re-execute: no
crash/restart, no pipelined persists, no store hooks. Those paths raise
:class:`~repro.errors.TraceUnsupportedError` — fall back to the
per-access path (see docs/performance.md).
"""

from repro.errors import TraceUnsupportedError
from repro.replay import format as fmt
from repro.replay.equivalence import structure_stat_groups

#: Backend scalar attributes restored after replay (the structure layer
#: does not run during replay, so its volatile accounting is carried in
#: the trace footer as deltas). Dotted paths resolved with getattr.
SCALAR_PATHS = ("_gate_commits", "_next_tx", "_tx.gate_commits",
                "_tx._next_tx")


def _resolve(obj, path):
    """Follow a dotted attribute path; returns (holder, name) or None."""
    parts = path.split(".")
    for part in parts[:-1]:
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    if not hasattr(obj, parts[-1]):
        return None
    return obj, parts[-1]


def _unsupported(what):
    def stub(*_args, **_kwargs):
        raise TraceUnsupportedError(
            "%s cannot be recorded for replay; use the per-access path"
            % what)
    return stub


class TraceRecorder:
    """Record one backend's event stream into a :class:`Trace`.

    Usage::

        recorder = TraceRecorder(backend)
        with recorder:
            drive_workload(backend)
            recorder.mark(fmt.MARK_TIMED)
            drive_timed_phase(backend)
        trace = recorder.finish()

    ``finish()`` (or leaving the ``with`` block) detaches every shim, so
    the backend is reusable afterwards; the recorded backend's final state
    is the golden reference replay must reproduce.
    """

    def __init__(self, backend):
        self._backend = backend
        self._machine = backend.machine
        if getattr(self._machine, "store_hook", None) is not None:
            raise TraceUnsupportedError(
                "store hooks fire outside the recorded seams")
        if getattr(self._machine.hierarchy, "num_cores", 1) != 1:
            raise TraceUnsupportedError(
                "multi-core schedules are not yet recordable")
        self._kinds = []
        self._aux = []
        self._addrs = []
        self._sizes = []
        self._payload = []
        self._depth = 0
        self._patched = []   # (obj, attr_name) in attach order
        self._attached = False
        self._finished = False
        self._start_sim_ns = None
        self._start_counters = {}
        self._start_scalars = {}

    # -- event emission ---------------------------------------------------

    def _emit(self, kind, aux=0, addr=0, size=0, payload=None):
        self._kinds.append(kind)
        self._aux.append(aux)
        self._addrs.append(addr)
        if payload is not None:
            payload = bytes(payload)
            size = len(payload)
            self._payload.append(payload)
        self._sizes.append(size)

    def mark(self, code, label=b""):
        """Insert a MARK event (e.g. :data:`fmt.MARK_TIMED`)."""
        if not self._attached:
            raise TraceUnsupportedError("recorder is not attached")
        self._emit(fmt.MARK, aux=code, payload=bytes(label))

    # -- seam patching ----------------------------------------------------

    def _patch(self, obj, name, wrapper):
        # Instance-level shadow of the class method; detach restores the
        # class method by deleting the shadow.
        setattr(obj, name, wrapper)
        self._patched.append((obj, name))

    def attach(self):
        """Install the recording shims. Idempotent per recorder."""
        if self._attached or self._finished:
            raise TraceUnsupportedError("recorder cannot be re-attached")
        backend, machine = self._backend, self._machine
        emit = self._emit
        self._start_sim_ns = machine.clock.now_ns
        self._start_counters = {
            path: dict(group.counters())
            for path, group in structure_stat_groups(backend).items()}
        for path in SCALAR_PATHS:
            spot = _resolve(backend, path)
            if spot is not None:
                value = getattr(spot[0], spot[1])
                if isinstance(value, int) and not isinstance(value, bool):
                    self._start_scalars[path] = value

        hier = machine.hierarchy
        call = self._call

        def wrap_load(orig):
            def load(core_id, addr, size):
                if not self._depth:
                    emit(fmt.LOAD, core_id, addr, size)
                return call(orig, core_id, addr, size)
            return load

        def wrap_store(orig):
            def store(core_id, addr, data):
                if not self._depth:
                    emit(fmt.STORE, core_id, addr, payload=data)
                return call(orig, core_id, addr, data)
            return store

        def wrap_wbl(orig):
            def writeback_line(line_addr):
                if not self._depth:
                    emit(fmt.WBL, 0, line_addr)
                return call(orig, line_addr)
            return writeback_line

        def wrap_plain(orig, kind):
            def seam():
                if not self._depth:
                    emit(kind)
                return call(orig)
            return seam

        def wrap_raw(orig, kind, carries_payload):
            def seam(addr, arg):
                if not self._depth:
                    if carries_payload:
                        emit(kind, 0, addr, payload=arg)
                    else:
                        emit(kind, 0, addr, arg)
                return call(orig, addr, arg)
            return seam

        def wrap_append(orig):
            def append(tx_id, addr, data, fence=True):
                if not self._depth:
                    emit(fmt.WAL_APPEND, tx_id * 2 + bool(fence), addr,
                         payload=data)
                return call(orig, tx_id, addr, data, fence)
            return append

        self._wrap(hier, "load", wrap_load)
        self._wrap(hier, "store", wrap_store)
        self._wrap(hier, "writeback_line", wrap_wbl)
        if hasattr(machine, "persist"):
            self._patch(machine, "persist",
                        wrap_plain(machine.persist, fmt.PERSIST))
        if hasattr(machine, "persist_async"):
            self._patch(machine, "persist_async",
                        _unsupported("persist_async (pipelined persists)"))
        space = getattr(machine, "space", None)
        if space is not None:
            self._patch(space, "read",
                        wrap_raw(space.read, fmt.RAW_READ, False))
            self._patch(space, "write",
                        wrap_raw(space.write, fmt.RAW_WRITE, True))
        flush = getattr(backend, "_flush", None)
        if flush is not None:
            self._patch(flush, "clwb",
                        wrap_raw(flush.clwb, fmt.CLWB, False))
            self._patch(flush, "sfence",
                        wrap_plain(flush.sfence, fmt.SFENCE))
        wal = getattr(backend, "_wal", None)
        if wal is not None:
            self._patch(wal, "append", wrap_append(wal.append))
            self._patch(wal, "reset",
                        wrap_plain(wal.reset, fmt.WAL_RESET))
        for obj, name in ((backend, "crash"), (machine, "crash")):
            if hasattr(obj, name):
                self._patch(obj, name, _unsupported("crash/restart"))
        self._attached = True
        return self

    def _wrap(self, obj, name, factory):
        self._patch(obj, name, factory(getattr(obj, name)))

    def _call(self, orig, *args):
        """Run the original seam with nested emission suppressed."""
        self._depth += 1
        try:
            return orig(*args)
        finally:
            self._depth -= 1

    def detach(self):
        """Remove every shim (idempotent)."""
        while self._patched:
            obj, name = self._patched.pop()
            try:
                delattr(obj, name)
            except AttributeError:
                pass
        self._attached = False

    def __enter__(self):
        if not self._attached:
            self.attach()
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.detach()
        return False

    # -- trace construction ----------------------------------------------

    def finish(self, meta=None):
        """Detach and build the :class:`Trace` (single use)."""
        self.detach()
        if self._finished:
            raise TraceUnsupportedError("recorder already finished")
        self._finished = True
        backend, machine = self._backend, self._machine
        counter_deltas = {}
        for path, group in structure_stat_groups(backend).items():
            start = self._start_counters.get(path, {})
            deltas = {}
            for name, value in group.counters().items():
                delta = value - start.get(name, 0)
                if delta:
                    deltas[name] = delta
            if deltas:
                counter_deltas[path] = deltas
        scalar_deltas = {}
        for path, start in self._start_scalars.items():
            spot = _resolve(backend, path)
            if spot is not None:
                delta = getattr(spot[0], spot[1]) - start
                if delta:
                    scalar_deltas[path] = delta
        footer = {
            "backend": getattr(backend, "name", type(backend).__name__),
            "events": len(self._kinds),
            "sim_ns_start": self._start_sim_ns,
            "sim_ns_end": machine.clock.now_ns,
            "counter_deltas": counter_deltas,
            "scalar_deltas": scalar_deltas,
            "meta": dict(meta or {}),
        }
        return fmt.Trace(self._kinds, self._aux, self._addrs, self._sizes,
                         b"".join(self._payload), footer)


def record(backend, drive, meta=None):
    """Record ``drive(backend, recorder)`` into a trace and return it.

    ``drive`` receives the live backend plus the recorder (for
    :meth:`TraceRecorder.mark`); the returned trace carries the footer
    deltas replay needs to restore structure-layer accounting.
    """
    recorder = TraceRecorder(backend)
    with recorder:
        drive(backend, recorder)
    return recorder.finish(meta=meta)
