"""PM device durability and the pool file format."""

import os

import pytest

from repro.errors import PoolError
from repro.pm.device import PmDevice
from repro.pm.pool import (
    EPOCH_SLOT_OFFSETS,
    Pool,
    decode_epoch_record,
    encode_epoch_record,
)


class TestPmDevice:
    def test_survives_crash(self):
        device = PmDevice("pm", 4096)
        device.write(0, b"durable")
        device.on_crash()
        assert device.read(0, 7) == b"durable"

    def test_line_write_accounting(self):
        device = PmDevice("pm", 4096)
        device.write(60, b"12345678")    # spans two lines
        assert device.stats.get("lines_written") == 2
        assert device.media_write_bytes == 128

    def test_wear_counter_semantics(self):
        """Pin the wear-accounting contract across implementations.

        ``line_wear`` behaves as a plain mapping: absent lines read as
        zero without being materialized, and the summary views
        (``region_writes``, ``wear_profile``, ``max_line_wear``) agree
        with the per-line tallies.
        """
        device = PmDevice("pm", 4096)
        device.write(10, b"x" * 100)   # straddles lines 0 and 64
        device.write(64, b"y" * 64)    # exactly line 64
        device.write(200, b"z")        # single byte in line 192
        assert device.line_wear[0] == 1
        assert device.line_wear[64] == 2
        assert device.line_wear[192] == 1
        assert device.line_wear[128] == 0
        # Reading a cold line must not materialize an entry.
        assert 128 not in device.line_wear
        assert device.region_writes(0, 128) == 3
        assert device.region_writes(128, 128) == 1
        assert device.region_writes(256, 4096) == 0
        assert device.wear_profile() == (3, 4, 2)
        assert device.max_line_wear() == 2

    def test_file_backing_roundtrip(self, tmp_path):
        path = str(tmp_path / "pool.pm")
        device = PmDevice("pm", 4096, backing_path=path)
        device.write(100, b"persist me")
        device.sync()
        reopened = PmDevice("pm", 4096, backing_path=path)
        assert reopened.read(100, 10) == b"persist me"

    def test_sync_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "pool.pm")
        device = PmDevice("pm", 4096, backing_path=path)
        device.sync()
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_unbacked_sync_noop(self):
        PmDevice("pm", 4096).sync()


class TestPoolFormat:
    def test_format_and_open(self):
        device = PmDevice("pm", 1 << 20)
        pool = Pool.format(device, log_size=64 * 96)
        reopened = Pool.open(device)
        assert reopened.log_base == pool.log_base
        assert reopened.data_size == pool.data_size
        assert reopened.committed_epoch == 0

    def test_open_or_format_idempotent(self):
        device = PmDevice("pm", 1 << 20)
        first = Pool.open_or_format(device, log_size=96 * 1024)
        first.commit_epoch(1)
        second = Pool.open_or_format(device)
        assert second.committed_epoch == 1

    def test_open_blank_device_fails(self):
        with pytest.raises(PoolError):
            Pool.open(PmDevice("pm", 1 << 20))

    def test_corrupt_header_detected(self):
        device = PmDevice("pm", 1 << 20)
        Pool.format(device, log_size=96 * 1024)
        device.write(8, b"\xff")     # corrupt the version field
        with pytest.raises(PoolError):
            Pool.open(device)

    def test_size_mismatch_detected(self):
        device = PmDevice("pm", 1 << 20)
        Pool.format(device, log_size=96 * 1024)
        blob = device.read(0, 4096)
        bigger = PmDevice("pm2", 1 << 21)
        bigger.write(0, blob)
        with pytest.raises(PoolError):
            Pool.open(bigger)

    def test_unaligned_log_size_rejected(self):
        with pytest.raises(PoolError):
            Pool.format(PmDevice("pm", 1 << 20), log_size=100)

    def test_too_small_device_rejected(self):
        with pytest.raises(PoolError):
            Pool.format(PmDevice("pm", 8192), log_size=8192)


class TestEpochCell:
    def test_commit_advances(self):
        pool = Pool.format(PmDevice("pm", 1 << 20), log_size=96 * 1024)
        pool.commit_epoch(1)
        pool.commit_epoch(2)
        assert pool.committed_epoch == 2

    def test_commit_must_be_monotonic(self):
        pool = Pool.format(PmDevice("pm", 1 << 20), log_size=96 * 1024)
        pool.commit_epoch(3)
        with pytest.raises(PoolError):
            pool.commit_epoch(3)
        with pytest.raises(PoolError):
            pool.commit_epoch(2)

    def test_epoch_survives_crash(self):
        device = PmDevice("pm", 1 << 20)
        pool = Pool.format(device, log_size=96 * 1024)
        pool.commit_epoch(7)
        device.on_crash()
        assert Pool.open(device).committed_epoch == 7

    def test_commit_writes_alternating_slots(self):
        device = PmDevice("pm", 1 << 20)
        pool = Pool.format(device, log_size=96 * 1024)
        pool.commit_epoch(1)
        assert decode_epoch_record(device.read(EPOCH_SLOT_OFFSETS[1], 12)) == 1
        assert decode_epoch_record(device.read(EPOCH_SLOT_OFFSETS[0], 12)) == 0
        pool.commit_epoch(2)
        assert decode_epoch_record(device.read(EPOCH_SLOT_OFFSETS[0], 12)) == 2
        assert pool.committed_epoch == 2

    def test_torn_commit_falls_back_to_prior_epoch(self):
        device = PmDevice("pm", 1 << 20)
        pool = Pool.format(device, log_size=96 * 1024)
        pool.commit_epoch(1)
        pool.commit_epoch(2)
        # Epoch 3 targets slot 1 (holding epoch 1); tear the slot write
        # after 5 of its 12 bytes.
        record = encode_epoch_record(3)
        old = device.read(EPOCH_SLOT_OFFSETS[1], 12)
        device.write(EPOCH_SLOT_OFFSETS[1], record[:5] + old[5:])
        epoch, slot_used, valid = pool.epoch_record()
        assert epoch == 2
        assert slot_used == 0
        assert valid == (True, False)

    def test_both_slots_corrupt_detected(self):
        device = PmDevice("pm", 1 << 20)
        pool = Pool.format(device, log_size=96 * 1024)
        for slot_offset in EPOCH_SLOT_OFFSETS:
            device.write(slot_offset, b"\xde\xad" * 6)
        with pytest.raises(PoolError):
            pool.committed_epoch


class TestRootCells:
    def test_root_ptr_roundtrip(self):
        pool = Pool.format(PmDevice("pm", 1 << 20), log_size=96 * 1024)
        pool.root_ptr = 0x5000
        assert pool.root_ptr == 0x5000

    def test_alloc_root_roundtrip(self):
        pool = Pool.format(PmDevice("pm", 1 << 20), log_size=96 * 1024)
        pool.alloc_root = 64
        assert pool.alloc_root == 64

    def test_contains_data(self):
        pool = Pool.format(PmDevice("pm", 1 << 20), log_size=96 * 1024)
        assert pool.contains_data(pool.data_base)
        assert pool.contains_data(pool.data_end - 1)
        assert not pool.contains_data(pool.data_end)
        assert not pool.contains_data(0)
