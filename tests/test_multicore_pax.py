"""Multi-core access to vPM: coherence across cores through the device."""

import pytest

from repro.structures import HashMap
from tests.conftest import make_pax_pool


class TestMultiCoreVpm:
    def test_cores_see_each_others_stores(self):
        pool = make_pax_pool(num_cores=4)
        mems = [pool.mem(core) for core in range(4)]
        mems[0].write_u64(4096, 111)
        for core in range(1, 4):
            assert mems[core].read_u64(4096) == 111
        mems[3].write_u64(4096, 333)
        assert mems[0].read_u64(4096) == 333

    def test_device_logs_once_despite_core_migration(self):
        # Ownership migrating between cores is a host-internal affair:
        # the line stays M, so the device hears nothing new.
        pool = make_pax_pool(num_cores=2)
        device = pool.machine.device
        mems = [pool.mem(0), pool.mem(1)]
        mems[0].write_u64(4096, 1)
        logged = device.stats.get("lines_logged")
        mems[1].write_u64(4096, 2)      # M migrates core 0 -> core 1
        assert device.stats.get("lines_logged") == logged

    def test_persist_captures_lines_dirty_on_any_core(self):
        pool = make_pax_pool(num_cores=4)
        table = pool.persistent(HashMap, capacity=64)
        # Interleave mutations from different cores via raw accessors on
        # the shared structure (structure ops are single-threaded per the
        # paper's §3.5 contract; cores take turns).
        mems = [pool.mem(core) for core in range(4)]
        for core, mem in enumerate(mems):
            mem.write_u64(8192 + core * 64, core + 1)
        pool.persist()
        pool.crash()
        pool.restart()
        fresh = pool.mem(0)
        for core in range(4):
            assert fresh.read_u64(8192 + core * 64) == core + 1

    def test_round_robin_structure_ops(self):
        pool = make_pax_pool(num_cores=4)
        table = pool.persistent(HashMap, capacity=64)
        # The same HashMap driven through per-core accessors in turn.
        tables = [
            type(table)(pool.mem(core), pool.allocator, table.root)
            for core in range(4)
        ]
        for key in range(100):
            tables[key % 4].put(key, key * 2)
        pool.persist()
        pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        assert recovered.to_dict() == {key: key * 2 for key in range(100)}

    def test_cross_core_sharing_cheaper_than_device_refetch(self):
        pool = make_pax_pool(num_cores=2)
        mem0, mem1 = pool.mem(0), pool.mem(1)
        mem0.read_u64(4096)
        device_reads = pool.machine.device.stats.get("rd_shared")
        mem1.read_u64(4096)     # served host-side (S copy exists)
        assert pool.machine.device.stats.get("rd_shared") == device_reads
