"""The built-in rule catalogue.

Each rule is a generator decorated with :func:`repro.lint.engine.rule`;
it walks the file's AST (via :class:`~repro.lint.engine.LintContext`) and
yields ``(lineno, col, message)`` for every violation. Location/module
scoping lives here, suppression handling lives in the engine.
"""

import ast

from repro.lint.engine import rule

#: Builtins whose ``raise`` the project bans: callers must be able to
#: catch ``ReproError`` and know they have a simulator failure, not a
#: Python one. ``NotImplementedError`` (abstract methods) and
#: ``StopIteration`` (protocol) stay legal.
_BANNED_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "RuntimeError", "IndexError", "IOError", "OSError", "ArithmeticError",
    "AttributeError", "AssertionError", "LookupError", "NameError",
    "ZeroDivisionError", "OverflowError", "BufferError",
})

#: Modules whose import makes a simulation non-reproducible: wall-clock
#: time and ambient entropy. Simulated time comes from ``repro.sim.clock``
#: and randomness from ``repro.sim.rng`` (seeded, replayable).
_NONDET_MODULES = frozenset({"time", "random", "datetime", "secrets"})

#: Files allowed to import the non-deterministic modules: the two
#: wrappers that fence them off behind seeded/simulated interfaces.
_NONDET_SANCTIONED = ("sim/rng.py", "sim/clock.py")

#: Modules allowed to call ``*.write(...)`` on a PM device directly.
#: Everything else must go through the cache hierarchy or a transaction
#: accessor so write interposition (PaxSan, write-amp stats) sees it.
_PM_WRITE_SANCTIONED = (
    "pm/",
    "mem/",
    "faults/",
    "core/writeback.py",
    "core/recovery.py",
    "core/replication.py",
)

#: Receiver names that identify a PM device in a ``.write()`` call.
_DEVICE_NAMES = frozenset({"device", "pm", "media", "pm_device"})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)


def _exception_name(node):
    """Name of the exception a ``raise`` node raises, or None."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


@rule("typed-errors",
      "raise ReproError subclasses, not bare builtin exceptions")
def check_typed_errors(ctx):
    """Flag ``raise ValueError(...)``-style raises of banned builtins.

    Bare ``raise`` (re-raise) and exceptions outside the banned set —
    project errors, ``NotImplementedError`` — pass.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        name = _exception_name(node)
        if name in _BANNED_EXCEPTIONS:
            yield (node.lineno, node.col_offset,
                   "raise a repro.errors type instead of builtin %s" % name)


@rule("pm-direct-write",
      "only sanctioned modules may write the PM device directly")
def check_pm_direct_write(ctx):
    """Flag ``device.write(...)`` / ``self.pm.write(...)`` calls outside
    the sanctioned module list.

    A direct media write bypasses the cache hierarchy, so the coherence
    model, the write-amplification stats, and PaxSan all lose sight of
    it — exactly the interposition argument the paper builds on.
    """
    if ctx.in_package(*_PM_WRITE_SANCTIONED):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "write":
            continue
        receiver = func.value
        if isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        elif isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        else:
            continue
        if receiver_name in _DEVICE_NAMES:
            yield (node.lineno, node.col_offset,
                   "direct PM write via %r bypasses the hierarchy; go "
                   "through stores or an accessor" % receiver_name)


@rule("sim-determinism",
      "no wall-clock or ambient randomness outside sim.clock / sim.rng")
def check_sim_determinism(ctx):
    """Flag imports of time/random/datetime/secrets outside the two
    sanctioned wrapper modules.

    Results must replay bit-for-bit from a seed; ambient time or entropy
    anywhere else silently breaks that.
    """
    if ctx.in_package(*_NONDET_SANCTIONED):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _NONDET_MODULES:
                    yield (node.lineno, node.col_offset,
                           "import of %r breaks determinism; use sim.clock"
                           " / sim.rng" % alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            root = (node.module or "").split(".")[0]
            if root in _NONDET_MODULES:
                yield (node.lineno, node.col_offset,
                       "import from %r breaks determinism; use sim.clock"
                       " / sim.rng" % node.module)


@rule("mutable-default",
      "no mutable default arguments")
def check_mutable_default(ctx):
    """Flag list/dict/set literals (and their constructors) used as
    parameter defaults — they are shared across calls."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            bad = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set"))
            if bad:
                yield (default.lineno, default.col_offset,
                       "mutable default argument is shared across calls; "
                       "default to None")
