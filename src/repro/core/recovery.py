"""Crash recovery (paper §3.4).

After a crash, the pool's durable bytes are: the PM data region (possibly
containing partially-applied epoch N+1 writes), the durable prefix of the
undo log, and the committed epoch number N. Recovery rolls back every
durable undo record tagged with an epoch newer than N, newest first, which
restores the data region to exactly the epoch-N snapshot. Records that
never became durable correspond to modifications that never reached PM
(the write-back gate guarantees it), so nothing is missed.

Recovery is performed by ``libpax`` on ``map_pool`` — the application
cannot tell a recovered pool from a cleanly closed one.
"""

from dataclasses import dataclass, field
from typing import List

from repro.errors import RecoveryError
from repro.pm.log import UndoLogRegion
from repro.util.constants import CACHE_LINE_SIZE


@dataclass
class RecoveryReport:
    """What recovery did, for logging and tests."""

    committed_epoch: int
    records_scanned: int = 0
    records_rolled_back: int = 0
    lines_restored: List[int] = field(default_factory=list)

    @property
    def was_dirty(self):
        """True if the crash interrupted an uncommitted epoch."""
        return self.records_rolled_back > 0


def recover_pool(pool):
    """Roll the pool's data region back to its last committed snapshot.

    Returns a :class:`RecoveryReport`. Idempotent: running it twice (e.g.
    a crash during recovery, which only re-writes old values) is safe
    because undo records are only discarded after the rollback completes.
    """
    committed = pool.committed_epoch
    region = UndoLogRegion(pool.device, pool.log_base, pool.log_size)
    report = RecoveryReport(committed_epoch=committed)
    to_undo = []
    previous_epoch = 0
    for entry in region.scan():
        report.records_scanned += 1
        if entry.epoch < previous_epoch:
            raise RecoveryError(
                "undo records out of epoch order (%d after %d); the log "
                "is append-only per epoch" % (entry.epoch, previous_epoch))
        previous_epoch = entry.epoch
        if entry.epoch <= committed:
            # Stale record from an epoch that committed before the crash
            # (possible because the log region is rewound lazily — only
            # at a quiescent point, or at a blocking commit). Dead.
            continue
        # With pipelined persists (core.pipeline) several uncommitted
        # epochs may be present; all of them roll back, newest first.
        if not pool.contains_data(entry.addr, CACHE_LINE_SIZE):
            raise RecoveryError(
                "undo record targets 0x%x outside the data region"
                % entry.addr)
        to_undo.append(entry)
    # Newest-first rollback: the oldest record for a line holds the
    # epoch-start value and must win.
    for entry in reversed(to_undo):
        data = entry.data.ljust(CACHE_LINE_SIZE, b"\x00")
        pool.device.write(entry.addr, data)
        report.records_rolled_back += 1
        report.lines_restored.append(entry.addr)
    # Only now is it safe to discard the log.
    region.reset()
    return report
