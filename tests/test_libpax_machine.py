"""Machine models: accessors, homes, crash/restart lifecycle."""

import pytest

from repro.cxl import messages as msg
from repro.errors import ConfigError, CrashedError
from repro.libpax.machine import HEAP_PHYS_BASE, HostMachine, PaxMachine
from tests.conftest import small_cache_kwargs


class TestHostMachine:
    def test_dram_store_load(self, dram_machine):
        mem = dram_machine.mem()
        mem.write_u64(64, 77)
        assert mem.read_u64(64) == 77

    def test_invalid_media(self):
        with pytest.raises(ConfigError):
            HostMachine(media="tape")

    def test_invalid_core(self, dram_machine):
        with pytest.raises(ConfigError):
            dram_machine.mem(core_id=5)

    def test_dram_crash_loses_everything(self, dram_machine):
        mem = dram_machine.mem()
        mem.write_u64(64, 123)
        dram_machine.crash()
        dram_machine.restart()
        assert mem.read_u64(64) == 0

    def test_pm_crash_keeps_evicted_data_only(self, pm_machine):
        mem = pm_machine.mem()
        mem.write_u64(64, 123)                  # dirty in cache
        pm_machine.hierarchy.writeback_line(HEAP_PHYS_BASE + 64)
        mem.write_u64(128, 456)                 # dirty, never flushed
        pm_machine.crash()
        pm_machine.restart()
        assert mem.read_u64(64) == 123
        assert mem.read_u64(128) == 0

    def test_access_while_crashed_rejected(self, dram_machine):
        dram_machine.crash()
        with pytest.raises(CrashedError):
            dram_machine.mem().read_u64(64)

    def test_time_advances_with_accesses(self, dram_machine):
        before = dram_machine.now_ns
        dram_machine.mem().read_u64(64)
        assert dram_machine.now_ns > before


class TestPaxMachine:
    def test_vpm_store_load(self, pax_machine):
        mem = pax_machine.mem()
        mem.write_u64(4096, 0xFEED)
        assert mem.read_u64(4096) == 0xFEED

    def test_store_triggers_device_logging(self, pax_machine):
        mem = pax_machine.mem()
        mem.write_u64(4096, 1)
        assert pax_machine.device.stats.get("rd_own") >= 1
        assert pax_machine.device.stats.get("lines_logged") >= 1

    def test_load_miss_goes_through_device(self, pax_machine):
        pax_machine.mem().read_u64(8192)
        assert pax_machine.device.stats.get("rd_shared") >= 1

    def test_cached_load_skips_device(self, pax_machine):
        mem = pax_machine.mem()
        mem.read_u64(4096)
        count = pax_machine.device.stats.get("rd_shared")
        mem.read_u64(4096)
        mem.read_u64(4100)          # same line
        assert pax_machine.device.stats.get("rd_shared") == count

    def test_persist_commits_epoch(self, pax_machine):
        pax_machine.mem().write_u64(4096, 5)
        assert pax_machine.pool.committed_epoch == 0
        pax_machine.persist()
        assert pax_machine.pool.committed_epoch == 1

    def test_persist_makes_data_durable_in_pm(self, pax_machine):
        mem = pax_machine.mem()
        mem.write_u64(4096, 0xAB)
        pax_machine.persist()
        pool_addr = pax_machine.device.to_pool(HEAP_PHYS_BASE + 4096)
        raw = pax_machine.pm.read(pool_addr, 8)
        assert int.from_bytes(raw, "little") == 0xAB

    def test_unpersisted_data_lost_in_crash(self, pax_machine):
        mem = pax_machine.mem()
        mem.write_u64(4096, 1)
        pax_machine.persist()
        mem.write_u64(4096, 2)
        pax_machine.crash()
        pax_machine.restart()
        assert mem.read_u64(4096) == 1

    def test_restart_without_crash_rejected(self, pax_machine):
        with pytest.raises(CrashedError):
            pax_machine.restart()

    def test_persist_latency_positive_and_charged(self, pax_machine):
        pax_machine.mem().write_u64(4096, 9)
        before = pax_machine.now_ns
        latency = pax_machine.persist()
        assert latency > 0
        assert pax_machine.now_ns >= before + latency

    def test_recovery_report_clean_on_fresh_pool(self):
        machine = PaxMachine(pool_size=2 * 1024 * 1024,
                             log_size=128 * 1024, **small_cache_kwargs())
        assert not machine.recovery_report.was_dirty

    def test_enzian_link_slower_than_cxl(self):
        def persist_time(link):
            machine = PaxMachine(pool_size=2 * 1024 * 1024,
                                 log_size=128 * 1024, link=link,
                                 **small_cache_kwargs())
            mem = machine.mem()
            for index in range(64):
                mem.write_u64(4096 + index * 64, index)
            return machine.now_ns

        assert persist_time("enzian") > persist_time("cxl")

    def test_file_backed_pool_reopens(self, tmp_path):
        path = str(tmp_path / "m.pool")
        machine = PaxMachine(pool_size=2 * 1024 * 1024, log_size=128 * 1024,
                             backing_path=path, **small_cache_kwargs())
        machine.mem().write_u64(4096, 42)
        machine.persist()
        machine.close()
        reopened = PaxMachine(pool_size=2 * 1024 * 1024, log_size=128 * 1024,
                              backing_path=path, **small_cache_kwargs())
        assert reopened.mem().read_u64(4096) == 42
