"""Workload generation: key distributions, YCSB mixes, op traces."""

from repro.workloads.keys import KeySequence, KeySpace
from repro.workloads.trace import (
    Op,
    apply_trace,
    expected_state,
    interleave_persists,
    load_trace,
    save_trace,
)
from repro.workloads.ycsb import MIXES, YcsbWorkload

__all__ = [
    "KeySequence",
    "KeySpace",
    "MIXES",
    "Op",
    "YcsbWorkload",
    "apply_trace",
    "expected_state",
    "interleave_persists",
    "load_trace",
    "save_trace",
]
