"""Boundary and failure-path edge cases across subsystems."""

import pytest

from repro.analysis.amat import figure_2a
from repro.errors import AddressError, LogError
from repro.pm.device import PmDevice
from repro.pm.log import ENTRY_SIZE, UndoLogRegion, encode_entry
from repro.structures import HashMap
from tests.conftest import make_pax_pool


class TestVpmBoundaries:
    def test_access_beyond_heap_rejected(self, pax_machine):
        mem = pax_machine.mem()
        with pytest.raises(AddressError):
            mem.read_u64(pax_machine.heap_size + 64)

    def test_access_at_last_line_ok(self, pax_machine):
        mem = pax_machine.mem()
        last = pax_machine.heap_size - 8
        mem.write_u64(last, 0xE0F)
        assert mem.read_u64(last) == 0xE0F

    def test_store_spanning_three_lines(self, pax_machine):
        mem = pax_machine.mem()
        blob = bytes(range(140))
        mem.write(4090, blob)
        assert mem.read(4090, 140) == blob
        # [4090, 4230) touches lines 4032/4096/4160/4224: four first-store
        # notifications reach the device.
        assert pax_machine.device.stats.get("lines_logged") == 4


class TestTornLogTail:
    def test_scan_stops_at_half_written_entry(self):
        device = PmDevice("pm", 1 << 20)
        region = UndoLogRegion(device, 4096, 32 * ENTRY_SIZE)
        region.append(1, 0x1000, b"a" * 64)
        # A crash tore the next append half-way: only the first 40 bytes
        # of the entry landed.
        torn = encode_entry(1, 0x1040, b"b" * 64)[:40]
        device.write(4096 + ENTRY_SIZE, torn)
        fresh = UndoLogRegion(device, 4096, 32 * ENTRY_SIZE)
        entries = list(fresh.scan())
        assert len(entries) == 1
        assert entries[0].addr == 0x1000

    def test_full_log_raises_with_guidance(self):
        pool = make_pax_pool(log_size=ENTRY_SIZE * 32 // 64 * 64 + 64 * 30)
        table = pool.persistent(HashMap, capacity=64)
        with pytest.raises(LogError) as excinfo:
            for key in range(100000):
                table.put(key, key)
        assert "persist()" in str(excinfo.value)


class TestFigure2aFunction:
    def test_one_call_pipeline(self):
        model, estimates = figure_2a(record_count=6000, op_count=6000)
        assert set(estimates) == {"dram", "pm", "pm_cxl", "pm_enzian"}
        assert estimates["dram"] <= estimates["pm"] \
            <= estimates["pm_cxl"] <= estimates["pm_enzian"]


class TestEmptyAndDegenerate:
    def test_empty_persist_loop(self, pax_pool):
        for _ in range(5):
            pax_pool.persist()
        assert pax_pool.committed_epoch == 5

    def test_persist_async_with_nothing_touched(self, pax_pool):
        flight = pax_pool.persist_async()
        pax_pool.persist_barrier()
        assert flight.committed

    def test_crash_immediately_after_open(self):
        # The allocator header written at open belongs to the (never
        # committed) first epoch: recovery legitimately rolls it back and
        # restart re-creates it — the pool must come back fully usable.
        pool = make_pax_pool()
        pool.crash()
        report = pool.restart()
        assert pool.committed_epoch == 0
        assert report.records_rolled_back >= 0
        table = pool.persistent(HashMap, capacity=64)
        table.put(1, 1)
        pool.persist()
        assert table.get(1) == 1

    def test_double_crash_rejected(self, pax_pool):
        from repro.errors import CrashedError
        pax_pool.persistent(HashMap, capacity=64)
        pax_pool.crash()
        with pytest.raises(CrashedError):
            pax_pool.persist()

    def test_zero_length_access(self, pax_machine):
        mem = pax_machine.mem()
        assert mem.read(4096, 0) == b""
        mem.write(4096, b"")
