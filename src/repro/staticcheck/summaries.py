"""Per-function persistency effect summaries.

The interprocedural layer (:mod:`repro.staticcheck.interproc`) reasons
about whole call chains; its unit of exchange is the
:class:`FunctionSummary` — what one function *does* to the persistency
state, abstracted over the PR4 CFG+dataflow lattice:

``opens_gate``
    On every path from entry to exit a tx/persist gate is open when the
    function returns (a *must* fact — callers may count a call to this
    function as a gate-open).
``closes_gate``
    Some path closes gates (``*.end()`` / ``*.commit()`` / ...).
``stores_gated`` / ``stores_entry_dep`` / ``stores_unprotected``
    PM stores through an accessor, classified by the gate fact at the
    store site: covered by a gate the function opened itself; covered
    only by a gate the *caller* may hold at the call site (the
    ``@entry`` token); or covered by nothing at all.
``calls``
    Every call site as ``(descriptor, gatedness)`` with gatedness one
    of ``"yes"`` (under a locally-opened gate), ``"entry"`` (gated iff
    the caller entered gated), ``"no"``.
``taint_return``
    The return value derives from wall-clock/entropy (det-taint).
``leaks_params``
    With every parameter treated as a raw PM device, the function leaks
    one (public return/yield, public attribute, or unsanctioned
    foreign-module call) — pm-escape's callee question.

Summaries are pure data (``to_dict``/``from_dict`` round-trip), which is
what makes the on-disk summary cache (:mod:`repro.staticcheck.cache`)
possible. All cross-function inputs arrive through ``get_summary``
callbacks so the SCC fixed-point driver in ``interproc.py`` owns the
iteration order.
"""

import ast

from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.checkers import (
    _bound_store_names,
    _GateAnalysis,
    _ModuleImportsShim,
    _TaintAnalysis,
    ENTRY_TOKEN,
)
from repro.staticcheck.dataflow import TOP


class FunctionSummary:
    """Serializable persistency effects of one function."""

    __slots__ = ("module", "qualname", "opens_gate", "closes_gate",
                 "stores_gated", "stores_entry_dep", "stores_unprotected",
                 "calls", "taint_return", "leaks_params")

    def __init__(self, module, qualname):
        self.module = module
        self.qualname = qualname
        self.opens_gate = False
        self.closes_gate = False
        self.stores_gated = 0
        self.stores_entry_dep = 0
        self.stores_unprotected = 0
        #: ``[(descriptor tuple, "yes"|"entry"|"no"), ...]``
        self.calls = []
        self.taint_return = False
        self.leaks_params = False

    @property
    def key(self):
        """The summary-store key: ``(module, qualname)``."""
        return (self.module, self.qualname)

    def to_dict(self):
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "module": self.module,
            "qualname": self.qualname,
            "opens_gate": self.opens_gate,
            "closes_gate": self.closes_gate,
            "stores_gated": self.stores_gated,
            "stores_entry_dep": self.stores_entry_dep,
            "stores_unprotected": self.stores_unprotected,
            "calls": [[list(descriptor), gated]
                      for descriptor, gated in self.calls],
            "taint_return": self.taint_return,
            "leaks_params": self.leaks_params,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a summary from :meth:`to_dict` output."""
        summary = cls(data["module"], data["qualname"])
        summary.opens_gate = bool(data["opens_gate"])
        summary.closes_gate = bool(data["closes_gate"])
        summary.stores_gated = int(data["stores_gated"])
        summary.stores_entry_dep = int(data["stores_entry_dep"])
        summary.stores_unprotected = int(data["stores_unprotected"])
        summary.calls = [(tuple(descriptor), gated)
                         for descriptor, gated in data["calls"]]
        summary.taint_return = bool(data["taint_return"])
        summary.leaks_params = bool(data["leaks_params"])
        return summary

    def __repr__(self):
        return "FunctionSummary(%s:%s%s%s)" % (
            self.module, self.qualname,
            " opens" if self.opens_gate else "",
            " leaks" if self.leaks_params else "")


def _gate_closes(func):
    """True if any call in ``func`` carries a gate-close verb."""
    from repro.staticcheck.checkers import _gate_delta
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and _gate_delta(node) == "close":
            return True
    return False


def summarize_gates(module, qualname, func, resolver=None):
    """The gate-side of a summary: opens/closes/stores/call gatedness.

    ``resolver`` (optional) supplies callee facts — ``opens(call)`` for
    calls to must-open functions and ``defers_store(call)`` for store
    verbs that resolve to a project function (whose own body is then the
    thing being judged, not the call site). Returns a partially filled
    :class:`FunctionSummary`.
    """
    summary = FunctionSummary(module.key, qualname)
    bound = _bound_store_names(func)
    cfg = build_cfg(func)
    solver = _GateAnalysis(bound, resolver=resolver, entry_gate=True)
    in_facts = solver.solve(cfg)

    walker = _GateAnalysis(bound, resolver=resolver, entry_gate=True)
    walker.call_sites = []
    walker.report = []
    seen = set()
    for block in cfg.blocks:
        fact = in_facts.get(block, TOP)
        if fact is TOP:
            continue
        walker.block_out(fact, block)
    for call, gated in walker.call_sites:
        location = (call.lineno, call.col_offset)
        if location in seen:
            continue
        seen.add(location)
        descriptor = module.call_descriptor(call.func)
        if descriptor is not None:
            summary.calls.append((descriptor, gated))
    reported = {id(call) for call in walker.report}
    entry_covered = walker.entry_covered
    store_sites = set()
    for call, gated in walker.call_sites:
        if id(call) not in reported:
            continue
        location = (call.lineno, call.col_offset)
        if location in store_sites:
            continue
        store_sites.add(location)
        if id(call) in entry_covered:
            summary.stores_entry_dep += 1
        else:
            summary.stores_unprotected += 1
    summary.stores_gated = max(
        0, len({(c.lineno, c.col_offset) for c, _g in walker.call_sites
                if id(c) in walker.store_calls}) - len(store_sites))

    exit_fact = in_facts.get(cfg.exit, TOP)
    summary.opens_gate = exit_fact is not TOP \
        and bool(exit_fact - frozenset({ENTRY_TOKEN}))
    summary.closes_gate = _gate_closes(func)
    return summary


def returns_value(func):
    """True if ``func`` has a value-carrying ``return``."""
    return any(isinstance(node, ast.Return) and node.value is not None
               for node in ast.walk(func))


def has_direct_taint_source(module, func):
    """True if ``func``'s body contains a direct non-determinism source."""
    analysis = _TaintAnalysis(_ModuleImportsShim(module), None)
    return any(isinstance(node, ast.Call) and analysis._is_source_call(node)
               for node in ast.walk(func))
