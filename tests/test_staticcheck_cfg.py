"""CFG construction: block/edge shapes for the control constructs the
checkers rely on, plus dominator sets."""

import ast
import textwrap

from repro.staticcheck import build_cfg, dominators


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def block_of(cfg, node_type):
    """The unique block holding a "stmt" event of ``node_type``."""
    matches = [block for block in cfg.blocks
               if any(kind == "stmt" and isinstance(node, node_type)
                      for kind, node in block.events)]
    assert len(matches) == 1, matches
    return matches[0]


def blocks_with_event(cfg, wanted):
    return [block for block in cfg.blocks
            if any(kind == wanted for kind, _ in block.events)]


def test_linear_function_is_one_block_to_exit():
    cfg = cfg_of("""
        def f():
            a = 1
            b = 2
            return a + b
    """)
    assert cfg.entry.successors == [cfg.exit]
    assert [kind for kind, _ in cfg.entry.events] == ["stmt", "stmt", "stmt"]


def test_if_else_builds_a_diamond():
    cfg = cfg_of("""
        def f(p):
            if p:
                x = 1
            else:
                x = 2
            return x
    """)
    assert len(cfg.entry.successors) == 2
    join = block_of(cfg, ast.Return)
    assert len(join.predecessors) == 2


def test_if_without_else_falls_through():
    cfg = cfg_of("""
        def f(p):
            if p:
                x = 1
            return p
    """)
    join = block_of(cfg, ast.Return)
    # One edge from the then-arm, one straight from the test block.
    assert len(join.predecessors) == 2
    assert cfg.entry in join.predecessors


def test_while_loop_has_a_back_edge():
    cfg = cfg_of("""
        def f(n):
            while n:
                n = n - 1
            return n
    """)
    (head,) = blocks_with_event(cfg, "test")
    body = block_of(cfg, ast.Assign)
    assert head in body.successors          # back edge
    assert len(head.predecessors) == 2      # entry path + back edge


def test_for_loop_header_event_and_back_edge():
    cfg = cfg_of("""
        def f(items):
            for item in items:
                x = item
            return x
    """)
    (head,) = blocks_with_event(cfg, "for")
    body = block_of(cfg, ast.Assign)
    assert head in body.successors


def test_break_jumps_past_the_loop():
    cfg = cfg_of("""
        def f(n):
            while True:
                if n:
                    break
                n = 1
            return n
    """)
    after = block_of(cfg, ast.Return)
    break_block = block_of(cfg, ast.Break)
    assert after in break_block.successors


def test_code_after_return_is_disconnected():
    cfg = cfg_of("""
        def f():
            return 1
            x = 2
    """)
    dead = block_of(cfg, ast.Assign)
    assert dead.predecessors == []
    assert dead is not cfg.entry


def test_try_body_has_exception_edges_to_handlers():
    cfg = cfg_of("""
        def f(mem):
            try:
                mem.write(0, 1)
            except KeyError:
                mem.flush()
            return 0
    """)
    (handler,) = blocks_with_event(cfg, "except")
    body = [block for block in cfg.blocks
            if any(kind == "stmt" and isinstance(node, ast.Expr)
                   for kind, node in block.events)
            and handler in block.successors]
    assert body, "try-body block should have an edge to the handler"


def test_with_enter_and_exit_events():
    cfg = cfg_of("""
        def f(tx, mem):
            with tx.transaction():
                mem.write(0, 1)
            return 0
    """)
    assert blocks_with_event(cfg, "with-enter")
    assert blocks_with_event(cfg, "with-exit")


def test_reverse_postorder_starts_at_entry():
    cfg = cfg_of("""
        def f(p):
            if p:
                x = 1
            else:
                x = 2
            return x
    """)
    order = cfg.reverse_postorder()
    assert order[0] is cfg.entry
    assert cfg.exit in order


def test_dominators_on_a_diamond():
    cfg = cfg_of("""
        def f(p):
            if p:
                x = 1
            else:
                x = 2
            return x
    """)
    dom = dominators(cfg)
    join = block_of(cfg, ast.Return)
    then_arm = [block for block in cfg.blocks
                if any(kind == "stmt" and isinstance(node, ast.Assign)
                       for kind, node in block.events)][0]
    assert cfg.entry in dom[join]
    assert then_arm not in dom[join]


def test_dominators_through_a_loop():
    cfg = cfg_of("""
        def f(n):
            while n:
                n = n - 1
            return n
    """)
    dom = dominators(cfg)
    (head,) = blocks_with_event(cfg, "test")
    after = block_of(cfg, ast.Return)
    body = block_of(cfg, ast.Assign)
    assert head in dom[body]
    assert head in dom[after]
