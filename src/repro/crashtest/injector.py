"""Crash injection at arbitrary store boundaries.

Crash consistency is only as good as the worst crash point, so the
injector cuts execution at an exact *store count* — including mid-way
through a ``put()`` that has linked half a node, or mid-resize — via the
machine's ``store_hook``. Hypothesis drives the crash point in the
property tests; the ablation benchmarks sweep it.
"""

from repro.errors import ReproError
from repro.util.stats import StatGroup


class CrashSignal(ReproError):
    """Raised by the hook to unwind out of the interrupted operation."""


class CrashInjector:
    """Arms a machine to crash after N further stores."""

    def __init__(self, machine):
        self.machine = machine
        self._remaining = None
        self.stats = StatGroup("crash_injector")

    def arm(self, stores_until_crash):
        """Crash after ``stores_until_crash`` more CPU stores."""
        if stores_until_crash < 0:
            raise ReproError("crash point cannot be negative")
        self._remaining = stores_until_crash
        self.machine.store_hook = self._hook

    def disarm(self):
        """Remove the hook without crashing."""
        self._remaining = None
        self.machine.store_hook = None

    def _hook(self, _addr, _data):
        if self._remaining is None:
            return
        if self._remaining == 0:
            self.disarm()
            raise CrashSignal("injected crash")
        self._remaining -= 1

    def run(self, operation):
        """Run ``operation()``; if the armed crash fires, crash the machine.

        Returns True if the crash fired (machine is now crashed), False if
        the operation completed first (hook disarmed).
        """
        try:
            operation()
        except CrashSignal:
            self.machine.crash()
            self.stats.counter("crashes_fired").add(1)
            return True
        finally:
            # Unconditional: an unrelated exception from ``operation``
            # must not leave the hook armed, or the countdown would fire
            # mid-way through whatever the caller does next.
            self.disarm()
        self.stats.counter("completed").add(1)
        return False


def count_stores(machine, operation):
    """Run ``operation()`` counting CPU stores; returns the count.

    Use this to size the crash-point sweep: a follow-up run of the same
    deterministic operation can then be cut at every store index.
    """
    counter = {"stores": 0}

    def hook(_addr, _data):
        counter["stores"] += 1

    previous = machine.store_hook
    machine.store_hook = hook
    try:
        operation()
    finally:
        machine.store_hook = previous
    return counter["stores"]
