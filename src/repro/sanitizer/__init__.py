"""Dynamic persistency sanitizers (PaxSan / WalSan).

Runtime complement to the static linter (:mod:`repro.lint`): the linter
catches bug *patterns* in the source; the sanitizers catch persist-order
violations as they *happen* in a simulation, by shadowing every PM cache
line with a persist-state machine (clean → dirty-in-cache → logged →
durable) fed from tracer hooks in the coherence, logging, and commit
paths. See docs/analysis-tools.md for the rule catalogue and wiring.

Quick start::

    from repro.sanitizer import PaxSanitizer
    pool = PaxPool.map_pool(...)
    san = PaxSanitizer().attach(pool.machine)
    ... workload ...            # raises SanitizerError on a violation
    assert san.ok

The crash fuzzer runs with PaxSan attached under ``--sanitize``
(``make fuzz SANITIZE=1``).
"""

from repro.errors import SanitizerError
from repro.sanitizer.base import (
    ALL_RULES,
    RULE_FENCE_INVERSION,
    RULE_MISSING_UNDO,
    RULE_PREMATURE_COMMIT,
    RULE_UNDO_GATE,
    SanitizerBase,
    Tracer,
)
from repro.sanitizer.paxsan import PaxSanitizer
from repro.sanitizer.walsan import WalSanitizer

__all__ = [
    "ALL_RULES",
    "PaxSanitizer",
    "RULE_FENCE_INVERSION",
    "RULE_MISSING_UNDO",
    "RULE_PREMATURE_COMMIT",
    "RULE_UNDO_GATE",
    "SanitizerBase",
    "SanitizerError",
    "Tracer",
    "WalSanitizer",
]
