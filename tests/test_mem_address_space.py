"""The system address map: routing, overlap rejection, crash fan-out."""

import pytest

from repro.errors import AddressError, ConfigError
from repro.mem.address_space import AddressSpace
from repro.mem.physical import DramDevice, MemoryDevice


def space_with_two_devices():
    space = AddressSpace()
    a = MemoryDevice("a", 4096)
    b = MemoryDevice("b", 4096)
    space.map_device(0x10000, a)
    space.map_device(0x20000, b)
    return space, a, b


class TestMapping:
    def test_routing(self):
        space, a, b = space_with_two_devices()
        space.write(0x10010, b"AA")
        space.write(0x20020, b"BB")
        assert a.read(0x10, 2) == b"AA"
        assert b.read(0x20, 2) == b"BB"

    def test_overlap_rejected(self):
        space, _a, _b = space_with_two_devices()
        with pytest.raises(ConfigError):
            space.map_device(0x10800, MemoryDevice("c", 4096))

    def test_overlap_before_rejected(self):
        space = AddressSpace()
        space.map_device(0x20000, MemoryDevice("a", 4096))
        with pytest.raises(ConfigError):
            space.map_device(0x1F000, MemoryDevice("b", 8192))

    def test_adjacent_mappings_allowed(self):
        space = AddressSpace()
        space.map_device(0x10000, MemoryDevice("a", 4096))
        space.map_device(0x11000, MemoryDevice("b", 4096))
        assert space.device_at(0x10FFF).name == "a"
        assert space.device_at(0x11000).name == "b"

    def test_low_mapping_rejected(self):
        # Address 0 stays NULL.
        with pytest.raises(ConfigError):
            AddressSpace().map_device(0, MemoryDevice("a", 64))

    def test_unmapped_access(self):
        space, _a, _b = space_with_two_devices()
        with pytest.raises(AddressError):
            space.read(0x500, 1)
        with pytest.raises(AddressError):
            space.read(0x18000, 1)

    def test_access_spanning_device_end_rejected(self):
        space, _a, _b = space_with_two_devices()
        with pytest.raises(AddressError):
            space.read(0x10000 + 4090, 10)

    def test_resolve_offsets(self):
        space, _a, _b = space_with_two_devices()
        mapping, offset = space.resolve(0x10020, 4)
        assert mapping.base == 0x10000
        assert offset == 0x20


class TestCrashFanOut:
    def test_crash_reaches_all_devices(self):
        space = AddressSpace()
        dram = DramDevice("dram", 4096)
        keep = MemoryDevice("keep", 4096)
        space.map_device(0x10000, dram)
        space.map_device(0x20000, keep)
        space.write(0x10000, b"gone")
        space.write(0x20000, b"kept")
        space.on_crash()
        assert space.read(0x10000, 4) == bytes(4)
        assert space.read(0x20000, 4) == b"kept"
