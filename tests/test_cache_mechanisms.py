"""The miss-path mechanism zoo: units, composition, and golden defaults."""

import pytest

from repro.cache.mechanisms import (MECHANISMS, MechanismStack, MissCache,
                                    NextLinePrefetch, StreamBuffers,
                                    VictimCache, make_mechanisms,
                                    mechanism_names)
from repro.errors import ConfigError
from repro.perfbench import _drive, build_backend
from repro.util.constants import CACHE_LINE_SIZE

LINE = CACHE_LINE_SIZE


def line(i):
    """Distinct line-sized payload for line index ``i``."""
    return bytes([i & 0xFF]) * LINE


def always_fetch(addr):
    """A fetch callable that always has data (low byte of the address)."""
    return bytes([(addr >> 6) & 0xFF]) * LINE


def never_fetch(addr):
    return None


class TestVictimCache:
    def test_eviction_fill_and_hit_removes(self):
        victim = VictimCache(capacity=4)
        victim.on_evict(0, line(0))
        assert len(victim) == 1
        assert victim.probe(0) == line(0)
        # A hit moves the line back up: the entry is consumed.
        assert len(victim) == 0
        assert victim.probe(0) is None
        assert victim.stats.get("hits") == 1
        assert victim.stats.get("misses") == 1

    def test_capacity_evicts_lru(self):
        victim = VictimCache(capacity=2)
        for i in range(3):
            victim.on_evict(i * LINE, line(i))
        assert len(victim) == 2
        assert victim.stats.get("evictions") == 1
        assert victim.probe(0) is None           # oldest entry was dropped
        assert victim.probe(LINE) == line(1)

    def test_invalidate_and_clear(self):
        victim = VictimCache(capacity=4)
        victim.on_evict(0, line(0))
        victim.invalidate(0)
        assert victim.probe(0) is None
        assert victim.stats.get("invalidations") == 1
        victim.on_evict(LINE, line(1))
        victim.clear()
        assert len(victim) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            VictimCache(capacity=0)


class TestMissCache:
    def test_demand_fill_and_hit_keeps_entry(self):
        miss = MissCache(capacity=4)
        miss.on_demand_fill(0, line(0), never_fetch)
        assert miss.probe(0) == line(0)
        # Unlike a victim cache, a hit refreshes rather than consumes.
        assert miss.probe(0) == line(0)
        assert miss.stats.get("hits") == 2

    def test_capacity_and_recency(self):
        miss = MissCache(capacity=2)
        miss.on_demand_fill(0, line(0), never_fetch)
        miss.on_demand_fill(LINE, line(1), never_fetch)
        miss.probe(0)                            # refresh 0's recency
        miss.on_demand_fill(2 * LINE, line(2), never_fetch)
        assert miss.probe(0) == line(0)          # survived (recently used)
        assert miss.probe(LINE) is None          # the LRU victim


class TestStreamBuffers:
    def test_fill_prefetches_depth_lines(self):
        stream = StreamBuffers(buffers=2, depth=3)
        stream.on_demand_fill(0, line(0), always_fetch)
        # The missed line itself is NOT buffered; the next `depth` are.
        assert len(stream) == 3
        assert stream.stats.get("prefetches") == 3
        assert stream.probe(0) is None

    def test_head_only_match_and_streaming(self):
        stream = StreamBuffers(buffers=2, depth=3)
        stream.on_demand_fill(0, line(0), always_fetch)
        # Probing past the head misses (classic head-only design).
        assert stream.probe(3 * LINE) is None
        assert stream.probe(LINE) is not None    # the head
        stream.extend(always_fetch)              # site extends on a hit
        # Head popped + tail extended: still 3 lines, window advanced.
        assert len(stream) == 3
        assert stream.probe(2 * LINE) is not None

    def test_allocation_evicts_oldest_stream(self):
        stream = StreamBuffers(buffers=1, depth=2)
        stream.on_demand_fill(0, line(0), always_fetch)
        stream.on_demand_fill(0x1000, line(1), always_fetch)
        assert stream.stats.get("evictions") == 1
        assert stream.probe(LINE) is None        # first stream is gone
        assert stream.probe(0x1000 + LINE) is not None

    def test_invalidate_flushes_whole_stream(self):
        stream = StreamBuffers(buffers=2, depth=3)
        stream.on_demand_fill(0, line(0), always_fetch)
        stream.invalidate(2 * LINE)              # a mid-stream line
        assert len(stream) == 0
        assert stream.stats.get("invalidations") == 1

    def test_fetch_refusal_truncates_fill(self):
        calls = []

        def fussy(addr):
            calls.append(addr)
            return always_fetch(addr) if len(calls) < 2 else None

        stream = StreamBuffers(buffers=1, depth=4)
        stream.on_demand_fill(0, line(0), fussy)
        assert len(stream) == 1                  # stopped at the refusal


class TestNextLinePrefetch:
    def test_demand_fill_prefetches_next(self):
        nextline = NextLinePrefetch(capacity=4)
        nextline.on_demand_fill(0, line(0), always_fetch)
        assert nextline.probe(LINE) is not None
        assert nextline.stats.get("prefetches") == 1

    def test_prefetch_on_hit_keeps_stream_going(self):
        nextline = NextLinePrefetch(capacity=4)
        nextline.on_demand_fill(0, line(0), always_fetch)
        assert nextline.probe_and_extend(LINE, always_fetch) is not None
        # Consuming addr+64 prefetched addr+128.
        assert nextline.probe(2 * LINE) is not None

    def test_pollution_evicts_unconsumed_prefetches(self):
        # Seeded pollution scenario: scattered demand fills at capacity 1
        # evict every prefetch before it can be consumed — all cost, no
        # hits, which is exactly what the pollution experiments measure.
        nextline = NextLinePrefetch(capacity=1)
        for i in range(8):
            nextline.on_demand_fill(i * 0x1000, line(i), always_fetch)
        assert nextline.stats.get("evictions") == 7
        assert nextline.stats.get("hits") == 0
        assert len(nextline) == 1


class TestStackAndSpecs:
    def test_registry_names(self):
        assert mechanism_names() == sorted(MECHANISMS)
        assert set(MECHANISMS) == {"victim", "miss", "stream", "nextline"}

    def test_spec_grammar(self):
        stack = make_mechanisms("victim:8+nextline:2", policy="fifo")
        assert isinstance(stack, MechanismStack)
        kinds = [type(m).kind for m in stack.mechanisms]
        assert kinds == ["victim", "nextline"]
        assert stack.mechanisms[0].capacity == 8
        assert stack.mechanisms[1].capacity == 2
        stream = make_mechanisms("stream:2x8").mechanisms[0]
        assert (stream.buffers, stream.depth) == (2, 8)

    def test_none_specs_return_none(self):
        assert make_mechanisms(None) is None
        assert make_mechanisms("") is None
        assert make_mechanisms("none") is None

    def test_stack_passthrough(self):
        stack = make_mechanisms("victim:4")
        assert make_mechanisms(stack) is stack

    def test_bad_specs_raise(self):
        with pytest.raises(ConfigError):
            make_mechanisms("warp-drive")
        with pytest.raises(ConfigError):
            make_mechanisms("victim:many")
        with pytest.raises(ConfigError):
            make_mechanisms("stream:4")
        with pytest.raises(ConfigError):
            make_mechanisms("victim:4++miss")

    def test_first_hit_wins_in_spec_order(self):
        stack = make_mechanisms("victim:4+miss:4")
        victim, miss = stack.mechanisms
        victim.on_evict(0, line(1))
        miss.on_demand_fill(0, line(2), never_fetch)
        assert stack.probe(0, never_fetch) == line(1)

    def test_broadcasts(self):
        stack = make_mechanisms("victim:4+miss:4")
        stack.on_evict(0, line(0))
        stack.invalidate(0)
        assert len(stack) == 0
        stack.on_demand_fill(LINE, line(1), never_fetch)
        stack.clear()
        assert len(stack) == 0


#: Absolute machine clock after perfbench's standard drive (ops=2000,
#: records=400, seed=42) at the default (no-mechanism) configuration —
#: captured before the mechanism zoo landed. The default miss path must
#: execute the exact pre-zoo arithmetic, backend by backend.
GOLDEN_DEFAULT_SIM_NS = {
    ("dram", "store_heavy"): 104032,
    ("dram", "mixed"): 104032,
    ("pm_direct", "store_heavy"): 264416,
    ("pm_direct", "mixed"): 264416,
    ("pmdk", "store_heavy"): 1887807,
    ("pmdk", "mixed"): 1381807,
    ("compiler", "store_heavy"): 2526809,
    ("compiler", "mixed"): 1891809,
    ("autopass", "store_heavy"): 1963241,
    ("autopass", "mixed"): 1457241,
    ("pax", "store_heavy"): 386320,
    ("pax", "mixed"): 386320,
}


class TestGoldenDefaults:
    @pytest.mark.parametrize("backend_name,workload",
                             sorted(GOLDEN_DEFAULT_SIM_NS))
    def test_default_miss_path_unchanged(self, backend_name, workload):
        backend = build_backend(backend_name)
        _drive(backend, workload, 2000, 400, 42)
        assert int(backend.machine.clock.now_ns) == \
            GOLDEN_DEFAULT_SIM_NS[(backend_name, workload)]


class TestHierarchyIntegration:
    def drive_pair(self, mechanisms, **kwargs):
        """Drive a mechanized and a default backend identically."""
        from repro.cache.cache import CacheConfig
        llc = CacheConfig(size_bytes=64 * 1024, ways=16)
        plain = build_backend("pax", llc_config=llc)
        mech = build_backend("pax", llc_config=llc, mechanisms=mechanisms,
                             **kwargs)
        for backend in (plain, mech):
            _drive(backend, "mixed", 1500, 2400, 42)
        return plain, mech

    def test_victim_hits_and_value_equivalence(self):
        plain, mech = self.drive_pair("victim:32")
        hier = mech.machine.hierarchy
        assert hier.stats.get("mech_hits") > 0
        # Performance overlay only: every observable value is identical.
        for key in range(0, 2400, 37):
            assert mech.get(key) == plain.get(key)

    def test_victim_never_slows_the_clock(self):
        # Victim probes are free on miss and save a home round trip on
        # a hit; its fetches are nil. The clock can only move down.
        plain, mech = self.drive_pair("victim:32")
        assert mech.now_ns <= plain.now_ns

    def test_crash_clears_host_mechanisms(self):
        _plain, mech = self.drive_pair("victim:32+nextline:16")
        stack = mech.machine.hierarchy.mechanisms
        mech.machine.crash()
        assert len(stack) == 0


class TestDeviceIntegration:
    def build(self):
        return build_backend("pax", device_mechanisms="stream:4x4",
                             hbm_lines=64)

    def test_device_stream_serves_pm_reads(self):
        backend = self.build()
        plain = build_backend("pax", hbm_lines=64)
        for b in (backend, plain):
            _drive(b, "mixed", 1500, 2400, 42)
        device = backend.machine.device
        assert device.stats.get("mech_hits") > 0
        # Mechanism hits replace PM media reads one for one (plus the
        # prefetch reads that filled them).
        assert device.stats.get("pm_line_reads") < \
            plain.machine.device.stats.get("pm_line_reads")
        for key in range(0, 2400, 37):
            assert backend.get(key) == plain.get(key)

    def test_crash_clears_device_mechanisms(self):
        backend = self.build()
        _drive(backend, "mixed", 400, 256, 42)
        device = backend.machine.device
        backend.machine.crash()
        assert len(device.mech) == 0

    def test_device_mechanisms_need_a_device(self):
        with pytest.raises(ConfigError):
            build_backend("pmdk", device_mechanisms="victim:8")
