"""Golden determinism tests: tracing must never perturb the simulation.

Each test drives two identical seeded runs — one untraced, one with an
``ObsTracer`` attached — and asserts the simulated results are
*byte-identical*: same final ``sim_ns``, same stat counters, same
histogram contents. This is the guarantee docs/observability.md
advertises and the ``python -m repro.obs overhead`` CI gate enforces on
wall-clock; here it is enforced on simulated state exactly.
"""

from repro.cache.cache import CacheConfig
from repro.libpax.pool import PaxPool
from repro.obs import MetricsRegistry, ObsTracer
from repro.perfbench import run_cell
from repro.sim.rng import DeterministicRng
from repro.structures.hashmap import HashMap

POOL_SIZE = 2 * 1024 * 1024
LOG_SIZE = 64 * 1024

SMALL_CACHES = dict(
    l1_config=CacheConfig(size_bytes=4 * 1024, ways=4),
    l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
    llc_config=CacheConfig(size_bytes=64 * 1024, ways=8),
)


def _make_pool():
    return PaxPool.map_pool(pool_size=POOL_SIZE, log_size=LOG_SIZE,
                            **SMALL_CACHES)


def _drive_crash_recover(pool):
    """A seeded put/persist/crash/recover/put workload."""
    rng = DeterministicRng(7)
    structure = pool.persistent(HashMap)
    for i in range(300):
        structure.put(rng.randint(0, 15), i)
        if i % 60 == 59:
            pool.persist()
    pool.crash()
    pool.restart()
    structure = pool.reattach_root(HashMap)
    for i in range(100):
        structure.put(rng.randint(0, 15), i + 1000)
    pool.persist()


def _machine_fingerprint(pool):
    """Every observable stat series plus the simulated clock."""
    registry = MetricsRegistry(clock=pool.machine.clock)
    registry.register_machine(pool.machine)
    return pool.machine.clock.now_ns, registry.to_prometheus()


def test_traced_crash_recover_is_sim_identical_to_untraced():
    untraced = _make_pool()
    _drive_crash_recover(untraced)

    traced = _make_pool()
    tracer = ObsTracer().attach(traced.machine)
    _drive_crash_recover(traced)

    assert _machine_fingerprint(traced) == _machine_fingerprint(untraced)
    # The trace itself actually observed the run.
    counts = tracer.counts_by_category()
    assert counts.get("recovery")           # crash + recover-pool + restart
    assert counts.get("epoch-commit")       # persists + slot writes
    assert counts.get("store")


def test_traced_store_heavy_microworkload_is_sim_identical():
    untraced = run_cell("store_heavy", "pax", ops=1500, records=300, seed=11)
    tracer = ObsTracer()
    traced = run_cell("store_heavy", "pax", ops=1500, records=300, seed=11,
                      tracer=tracer)
    assert traced["sim_ns"] == untraced["sim_ns"]
    assert len(tracer.ring)                 # and events were captured


def test_two_traced_runs_produce_identical_events():
    events = []
    for _ in range(2):
        tracer = ObsTracer()
        run_cell("mixed", "pax", ops=600, records=200, seed=5,
                 tracer=tracer)
        events.append(tracer.events())
    assert events[0] == events[1]


def test_ring_wraparound_under_a_real_workload():
    tracer = ObsTracer(capacity=256)
    run_cell("store_heavy", "pax", ops=1200, records=200, seed=3,
             tracer=tracer)
    assert len(tracer.ring) == 256
    assert tracer.ring.dropped == tracer.ring.total - 256 > 0
    # Oldest-first ordering survives the wrap (span starts are stamped
    # before their children append, so compare endpoints, not every pair).
    stamps = [event[3] for event in tracer.events()]
    assert stamps[0] <= stamps[-1]
