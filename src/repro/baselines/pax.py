"""The PAX system behind the common backend interface.

Not a baseline — the contribution — but exposing it through
:class:`~repro.baselines.base.KvBackend` lets every benchmark and crash
test iterate over one backend list. ``persist()`` maps to the device group
commit; ``group_size`` (used by harnesses) controls how many operations
share one epoch, the knob paper §3.2 calls group commit.
"""

from repro.baselines.base import StructureBackend
from repro.errors import ConfigError
from repro.libpax.pool import PaxPool
from repro.structures.hashmap import HashMap


class PaxBackend(StructureBackend):
    """Hash table on vPM through the PAX accelerator."""

    name = "pax"
    crash_consistent = True

    def __init__(self, pool_size=64 * 1024 * 1024, log_size=4 * 1024 * 1024,
                 capacity=1024, link="cxl", pax_config=None, **machine_kwargs):
        super().__init__()
        self.pool = PaxPool.map_pool(pool_size=pool_size, log_size=log_size,
                                     link=link, pax_config=pax_config,
                                     **machine_kwargs)
        self._map = self.pool.persistent(HashMap, capacity=capacity)

    @property
    def machine(self):
        return self.pool.machine

    def persist(self):
        """Group commit: crash-consistent snapshot of the pool."""
        return self.pool.persist()

    def restart(self):
        """Reboot; libpax recovery restores the last snapshot."""
        report = self.pool.restart()
        self._map = self.pool.reattach_root(HashMap)
        return report.records_rolled_back

    @property
    def committed_epoch(self):
        """Durable snapshot epoch."""
        return self.pool.committed_epoch

    @property
    def log_bytes(self):
        """Bytes of undo log written by the device (write-amp accounting)."""
        from repro.pm.log import ENTRY_SIZE
        return self.machine.device.undo.stats.get("drained") * ENTRY_SIZE


def make_backend(name, **kwargs):
    """Factory over every backend by short name."""
    from repro.baselines.autopass import AutopassBackend
    from repro.baselines.compiler_pass import CompilerPassBackend
    from repro.baselines.dram import DramBackend
    from repro.baselines.hybrid import HybridBackend
    from repro.baselines.mprotect import MprotectBackend
    from repro.baselines.pm_direct import PmDirectBackend
    from repro.baselines.pmdk import PmdkBackend
    from repro.baselines.redo import RedoBackend
    classes = {
        "dram": DramBackend,
        "pm_direct": PmDirectBackend,
        "pmdk": PmdkBackend,
        "redo": RedoBackend,
        "compiler": CompilerPassBackend,
        "autopass": AutopassBackend,
        "mprotect": MprotectBackend,
        "pax": PaxBackend,
        "hybrid": HybridBackend,
    }
    try:
        cls = classes[name]
    except KeyError:
        raise ConfigError("unknown backend %r (have %s)"
                          % (name, ", ".join(sorted(classes)))) from None
    return cls(**kwargs)
