"""Shared fixtures: small machines sized for fast tests.

The default cache geometry (2 MiB LLC) is right for benchmarks but makes
eviction paths unreachable in small tests, so fixtures here use scaled-
down caches — 4 KiB L1 / 16 KiB L2 / 64 KiB LLC — which exercise every
eviction and write-back path with working sets of a few hundred lines.
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.libpax.machine import HostMachine, PaxMachine
from repro.libpax.pool import PaxPool
from repro.sim.clock import SimClock
from repro.sim.latency import default_model


def small_cache_kwargs():
    """Tiny-but-real cache geometry for eviction-heavy tests."""
    return dict(
        l1_config=CacheConfig(size_bytes=4 * 1024, ways=4),
        l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
        llc_config=CacheConfig(size_bytes=64 * 1024, ways=8),
    )


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def latency():
    return default_model()


@pytest.fixture
def dram_machine():
    return HostMachine(media="dram", heap_size=4 * 1024 * 1024,
                       **small_cache_kwargs())


@pytest.fixture
def pm_machine():
    return HostMachine(media="pm", heap_size=4 * 1024 * 1024,
                       **small_cache_kwargs())


def make_pax_pool(**overrides):
    """A small PAX pool for tests; overridable knobs."""
    kwargs = dict(pool_size=4 * 1024 * 1024, log_size=256 * 1024)
    kwargs.update(small_cache_kwargs())
    kwargs.update(overrides)
    return PaxPool.map_pool(**kwargs)


@pytest.fixture
def pax_pool():
    return make_pax_pool()


@pytest.fixture
def pax_machine():
    return PaxMachine(pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                      **small_cache_kwargs())
