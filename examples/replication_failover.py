#!/usr/bin/env python3
"""Fault tolerance via remote memory (paper §6): replicate, kill, fail over.

A primary PAX pool ships every committed epoch to a replica pool across a
simulated datacenter network. The primary then dies mid-flight; the
replica comes online holding exactly the last replicated snapshot —
whole epochs, never torn ones.
"""

from repro import HashMap, map_pool
from repro.core.replication import NetworkLink, ReplicaTarget, Replicator
from repro.pm.device import PmDevice
from repro.pm.pool import Pool

POOL_SIZE = 8 * 1024 * 1024
LOG_SIZE = 1024 * 1024


def main():
    primary = map_pool(pool_size=POOL_SIZE, log_size=LOG_SIZE)
    replica = ReplicaTarget(
        Pool.format(PmDevice("replica", POOL_SIZE), log_size=LOG_SIZE))
    link = NetworkLink(primary.machine.clock, rtt_ns=2000.0)
    replicator = Replicator(primary.machine, replica, link=link,
                            mode="sync")

    orders = primary.persistent(HashMap, capacity=128)
    for batch in range(5):
        for order in range(batch * 20, batch * 20 + 20):
            orders.put(order, 1_000_000 + order)
        latency = primary.persist()     # durable on BOTH machines now
        print("epoch %d: 20 orders committed + replicated in %.1f us "
              "(lag: %d epochs)"
              % (primary.committed_epoch, latency / 1e3,
                 replicator.lag_epochs))

    # Disaster strikes mid-operation.
    orders.put(9999, 42)
    primary.crash()
    print()
    print("primary machine lost (1 un-persisted order with it)")

    standby = replicator.failover(pool_size=POOL_SIZE, log_size=LOG_SIZE)
    recovered = standby.reattach_root(HashMap)
    print("replica promoted: %d orders, epoch %d — identical to the last "
          "replicated snapshot" % (len(recovered),
                                   standby.committed_epoch))
    assert len(recovered) == 100
    assert recovered.get(9999) is None

    # Life goes on: the standby is a fully functional PAX pool.
    recovered.put(100, 1_000_100)
    standby.persist()
    print("standby serving writes: epoch %d" % standby.committed_epoch)


if __name__ == "__main__":
    main()
