"""Seeded ``det-taint`` violations.

Nondeterministic values (wall clock, OS entropy, unordered-container
iteration order) flow — possibly through assignments and a local helper
— into simulated state.  The test suite asserts staticcheck reports
exactly these sink lines; ``taint_clean.py`` must report none.
"""

import os
import time


def _entropy():
    """Local helper whose return value is tainted (summary-based)."""
    return time.time_ns()


def drive(clock):
    start = time.time()
    delay = start * 2
    clock.advance(delay)  # VIOLATION: wall clock -> sim clock


def reseed(rng):
    raw = os.urandom(8)
    rng.seed(raw)  # VIOLATION: OS entropy -> simulated RNG


def schedule_jitter(scheduler):
    jitter = _entropy()
    scheduler.schedule(jitter)  # VIOLATION: via helper return summary


def replay(events, link):
    pending = set(events)
    for message in pending:
        link.send(message)  # VIOLATION: set iteration order
