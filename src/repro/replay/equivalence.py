"""Golden-equivalence fingerprints (the PR3 pattern, machine-wide).

The per-access path is the executable spec; replay is an optimization
that must be *indistinguishable* from it. :func:`fingerprint` reduces a
backend to a flat dict covering everything the spec defines:

* ``sim_ns`` — the simulated clock;
* every counter and histogram of every :class:`StatGroup` reachable from
  the backend (cache levels, hierarchy, directory, device, undo logger,
  write-back coordinator, HBM, link + both bandwidth limiters, ports,
  adapter, media devices, flush model, WAL, the structure layer);
* every :class:`MemoryDevice`'s full contents (sha256) and per-line wear
  tally — "final pool bytes" in the acceptance criteria;
* the machine-shape scalars replay must reproduce (epoch number, undo
  sequence frontier, buffered/pending/logged line sets, cache line
  populations).

Histogram fingerprints take the raw accumulator state (count, total,
sum of squares, min, max, reservoir contents) rather than derived
percentiles, so a single reassociated float add anywhere shows up.
Deliberately excluded: ``CacheHierarchy._home_map`` (a lazily populated
memo with no observable effect) and ``Histogram``'s sorted-reservoir
cache (derived, rebuilt on demand).

Two backends are equivalent iff ``fingerprint(a) == fingerprint(b)``;
:func:`diff` names the keys that disagree.
"""

import hashlib
from collections import deque

from repro.mem.physical import MemoryDevice
from repro.util.stats import StatGroup

#: Object-graph traversal depth bound; the deepest interesting object
#: (a media bandwidth limiter's histogram inside a host home) sits at 5.
_MAX_DEPTH = 10


def _attr_items(obj):
    """(name, value) pairs of ``obj``'s instance attributes, sorted."""
    items = {}
    data = getattr(obj, "__dict__", None)
    if data is not None:
        items.update(data)
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot not in items and hasattr(obj, slot):
                items[slot] = getattr(obj, slot)
    return sorted(items.items())


def _is_repro_object(value):
    return type(value).__module__.split(".", 1)[0] == "repro"


def collect_instrumented(root, label="backend"):
    """Map path -> object for every StatGroup/MemoryDevice reachable.

    Deterministic BFS over instance attributes (sorted by name), list and
    tuple elements, and dict values under sorted keys; identically built
    backends therefore produce identical paths. Breadth-first matters:
    the graph has back-references, and first-visit-wins dedup combined
    with the depth bound would truncate a subtree first reached on a deep
    path — BFS guarantees every object is expanded at its shallowest
    depth.
    """
    seen = set()
    found = {}
    stack = deque([(label, root, 0)])
    while stack:
        path, obj, depth = stack.popleft()
        if id(obj) in seen or depth > _MAX_DEPTH:
            continue
        seen.add(id(obj))
        if isinstance(obj, StatGroup):
            found.setdefault(path, obj)
            continue
        if isinstance(obj, MemoryDevice):
            found.setdefault(path, obj)
        children = []
        if isinstance(obj, dict):
            try:
                keys = sorted(obj)
            except TypeError:
                keys = sorted(obj, key=repr)
            children = [("%s[%r]" % (path, key), obj[key]) for key in keys]
        elif isinstance(obj, (list, tuple)):
            children = [("%s[%d]" % (path, index), value)
                        for index, value in enumerate(obj)]
        else:
            children = [("%s.%s" % (path, name), value)
                        for name, value in _attr_items(obj)]
        for child_path, value in children:
            if (_is_repro_object(value)
                    or isinstance(value, (dict, list, tuple))):
                stack.append((child_path, value, depth + 1))
    return found


def structure_stat_groups(backend):
    """Stat groups of the structure layer, by the backend's declaration.

    Replay re-executes everything below the recorded seams (machine, WAL,
    flush), so those counters must match by re-execution; the groups the
    structure layer increments directly never run during replay and their
    deltas travel in the trace footer. The split cannot be inferred from
    reachability — the object graph is full of back-references (the PAX
    machine holds its pool, the write-back coordinator holds the device
    pool) — so each backend declares it via
    :meth:`~repro.baselines.base.KvBackend.replay_structure_stats`.
    """
    declare = getattr(backend, "replay_structure_stats", None)
    if declare is not None:
        return dict(declare())
    stats = getattr(backend, "stats", None)
    return {"backend.stats": stats} if isinstance(stats, StatGroup) else {}


def _histogram_state(hist):
    return (hist.count, hist.total, hist._sum_sq, hist.min, hist.max,
            tuple(hist._reservoir))


def fingerprint(backend):
    """Flat dict capturing every spec-visible bit of ``backend``."""
    out = {"sim_ns": backend.machine.clock.now_ns}
    for path, obj in sorted(collect_instrumented(backend).items()):
        if isinstance(obj, StatGroup):
            for name, value in obj.counters().items():
                out["%s:%s" % (path, name)] = value
            for name, hist in obj.histograms().items():
                out["%s:%s" % (path, name)] = _histogram_state(hist)
        else:   # MemoryDevice: durable bytes + media wear
            out["%s:sha256" % path] = hashlib.sha256(
                bytes(obj._data)).hexdigest()
            wear = getattr(obj, "line_wear", None)
            if wear is not None:
                out["%s:line_wear" % path] = tuple(sorted(wear.items()))
    machine = backend.machine
    device = getattr(machine, "device", None)
    if device is not None:
        out["device:epoch"] = device.epochs.current_epoch
        undo = device.undo
        out["undo:next_seq"] = undo._next_seq
        out["undo:durable_seq"] = undo._durable_seq
        out["undo:pending"] = tuple(
            (r.seq, r.epoch, r.pool_addr, r.old_data) for r in undo._pending)
        out["undo:logged"] = tuple(sorted(undo._logged.items()))
        out["wb:buffer"] = tuple(
            (addr, entry.seq, entry.data)
            for addr, entry in device.writeback._buffer.items())
        out["hbm:lines"] = hashlib.sha256(
            b"".join(b"%x:" % addr + data
                     for addr, data in device.hbm._lines.items())
        ).hexdigest()
    hier = machine.hierarchy
    out["dir:entries"] = tuple(
        sorted((addr, tuple(sorted(entry.states.items())))
               for addr, entry in hier._dir_entries.items()))
    caches = [("llc", hier._llc)]
    for core in hier._cores:
        caches.append(("core%d.l1" % core.core_id, core.l1))
        caches.append(("core%d.l2" % core.core_id, core.l2))
    for label, cache in caches:
        out["cache:%s" % label] = tuple(
            sorted((line.addr, bytes(line.data), line.dirty)
                   for line in cache.lines()))
    return out


def diff(golden, candidate):
    """Keys where two fingerprints disagree: [(key, golden, candidate)]."""
    out = []
    for key in sorted(set(golden) | set(candidate)):
        a = golden.get(key)
        b = candidate.get(key)
        if a != b or type(a) is not type(b):
            out.append((key, a, b))
    return out
