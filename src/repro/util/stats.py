"""Lightweight statistics primitives used by every simulated component.

Components expose a :class:`StatGroup` of named counters and histograms
instead of ad-hoc integer attributes, so benchmarks and tests can inspect
behaviour (hit rates, log bytes written, snoops issued) through one
interface.
"""

import math

from repro.errors import StatsError


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def add(self, amount=1):
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise StatsError("counter %s cannot decrease" % self.name)
        self.value += amount

    def reset(self):
        """Reset to zero."""
        self.value = 0

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Histogram:
    """A streaming histogram tracking count/sum/min/max and moments.

    Good enough for latency summaries without storing every sample; also
    records a small reservoir for percentile estimates in reports.

    :meth:`record` sits on the simulator's per-access critical path
    (every cache access charges latency through one), so it does strictly
    O(1) arithmetic: all percentile work — sorting the reservoir — is
    deferred to :meth:`percentile` and cached there until new samples
    arrive.
    """

    RESERVOIR_SIZE = 4096

    __slots__ = ("name", "count", "total", "min", "max",
                 "_sum_sq", "_reservoir", "_sorted", "_sorted_at")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sum_sq = 0.0
        self._reservoir = []
        #: Sorted copy of the reservoir, valid only while ``_sorted_at``
        #: equals ``count`` (lazily rebuilt by :meth:`percentile`).
        self._sorted = None
        self._sorted_at = -1

    def record(self, value):
        """Record one sample."""
        count = self.count = self.count + 1
        self.total += value
        self._sum_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        reservoir = self._reservoir
        if len(reservoir) < self.RESERVOIR_SIZE:
            reservoir.append(value)
        else:
            # Deterministic decimation: overwrite a rotating slot. This is
            # not statistically unbiased reservoir sampling, but it is
            # deterministic (no RNG) and fine for report percentiles.
            reservoir[count % self.RESERVOIR_SIZE] = value

    @property
    def mean(self):
        """Arithmetic mean of all recorded samples (0 if empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def stddev(self):
        """Population standard deviation of recorded samples."""
        if self.count == 0:
            return 0.0
        mean = self.mean
        variance = max(0.0, self._sum_sq / self.count - mean * mean)
        return math.sqrt(variance)

    def percentile(self, p):
        """Estimate the ``p``-th percentile (0..100) from the reservoir.

        The sorted reservoir is cached, so report code querying several
        percentiles in a row (p50/p99/p999) sorts at most once between
        samples.
        """
        if not self._reservoir:
            return 0.0
        if self._sorted_at != self.count:
            self._sorted = sorted(self._reservoir)
            self._sorted_at = self.count
        ordered = self._sorted
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def reset(self):
        """Forget all samples.

        Fields are reset explicitly rather than by re-calling
        ``__init__`` so subclasses with richer constructors can reuse it
        safely.
        """
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sum_sq = 0.0
        self._reservoir = []
        self._sorted = None
        self._sorted_at = -1

    def __repr__(self):
        return "Histogram(%s: n=%d mean=%.1f)" % (self.name, self.count, self.mean)


class StatGroup:
    """A named bag of counters and histograms owned by one component.

    ``counter(name)`` / ``histogram(name)`` are get-or-create by string
    key. Hot-path code must not pay that dict lookup per event: bind the
    returned object to an attribute at construction time and call
    ``add``/``record`` on the binding (see docs/performance.md and the
    ``hot-path-stat-lookup`` lint rule). The bound object is the same one
    the group reports, so snapshots are unaffected.
    """

    def __init__(self, owner):
        self.owner = owner
        self._counters = {}
        self._histograms = {}

    def counter(self, name):
        """Get or create the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name):
        """Get or create the histogram called ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def get(self, name):
        """Return the current value of counter ``name`` (0 if absent)."""
        if name in self._counters:
            return self._counters[name].value
        return 0

    def counters(self):
        """Return a dict of counter name -> value."""
        return {name: c.value for name, c in self._counters.items()}

    def histograms(self):
        """Return a dict of histogram name -> :class:`Histogram` object.

        The objects themselves (not copies): exporters like
        ``repro.obs.metrics`` read count/total/percentiles off them
        without another layer of indirection.
        """
        return dict(self._histograms)

    def reset(self):
        """Reset every counter and histogram in the group."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def snapshot(self):
        """Return a flat dict snapshot for reporting."""
        out = dict(self.counters())
        for name, histogram in self._histograms.items():
            out[name + ".count"] = histogram.count
            out[name + ".mean"] = histogram.mean
        return out

    def __repr__(self):
        return "StatGroup(%s, %d counters)" % (self.owner, len(self._counters))


def ratio(numerator, denominator):
    """Safe division for hit-rate style metrics; 0.0 when denominator is 0."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
