"""Persistence primitives: CLWB / SFENCE cost modelling.

Hand-crafted PM code (the PMDK-style baseline) must explicitly write dirty
lines back (`CLWB`) and order those write-backs against subsequent stores
(`SFENCE`). The paper's core argument (§2) is that these ordering stalls,
incurred several times per logical operation, are what PAX eliminates.

:class:`FlushModel` charges those costs to a simulated clock and counts
them, so benchmarks can report both time and flush counts.
"""

from repro.util.bitops import lines_covering
from repro.util.stats import StatGroup


class FlushModel:
    """Charges CLWB/SFENCE costs against a :class:`~repro.sim.clock.SimClock`."""

    def __init__(self, clock, latency_model):
        self._clock = clock
        self._lat = latency_model
        #: Optional tracer told about flushes and fences (WalSan).
        self.tracer = None
        self.stats = StatGroup("flush")

    def clwb(self, addr, length):
        """Write back every cache line covering ``[addr, addr+length)``.

        Charges the issue cost per line plus the PM write latency for the
        final line (CLWBs pipeline; the trailing SFENCE pays the rest).
        """
        lines = lines_covering(addr, length)
        if not lines:
            return 0.0
        cost = len(lines) * self._lat.software.clwb_ns
        self.stats.counter("clwb_lines").add(len(lines))
        if self.tracer is not None:
            self.tracer.on_clwb(addr, len(lines))
        self._clock.advance(cost)
        return cost

    def sfence(self):
        """Order prior write-backs; stall until they reach the ADR domain."""
        cost = self._lat.software.sfence_ns + self._lat.media.pm_write_ns
        self.stats.counter("sfences").add(1)
        if self.tracer is not None:
            self.tracer.on_fence()
        self._clock.advance(cost)
        return cost

    def persist_range(self, addr, length):
        """The canonical CLWB-all-lines-then-SFENCE sequence."""
        total = self.clwb(addr, length)
        total += self.sfence()
        return total

    @property
    def sfence_count(self):
        """Number of ordering stalls charged so far."""
        return self.stats.get("sfences")
