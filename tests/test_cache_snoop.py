"""Device-to-host snoops: the persist() machinery (paper §3.3)."""

from tests.test_cache_hierarchy import BASE, build

from repro.cache.line import MesiState


class TestSnoopShared:
    def test_pulls_dirty_data_and_downgrades(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"\xaa" * 8)
        fresh = h.snoop_shared(BASE)
        assert fresh[:8] == b"\xaa" * 8
        assert h.directory.state(BASE, 0) == MesiState.SHARED

    def test_clean_line_returns_none(self):
        h, _c, _s, _home = build()
        h.load(0, BASE, 8)
        assert h.snoop_shared(BASE) is None

    def test_uncached_line_returns_none(self):
        h, _c, _s, _home = build()
        assert h.snoop_shared(BASE) is None

    def test_second_snoop_sees_clean(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"x")
        assert h.snoop_shared(BASE) is not None
        assert h.snoop_shared(BASE) is None

    def test_line_stays_readable_after_snoop(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"keepread")
        h.snoop_shared(BASE)
        assert h.load(0, BASE, 8) == b"keepread"

    def test_store_after_snoop_needs_new_upgrade(self):
        h, _c, _s, home = build(grants_exclusive=False)
        h.store(0, BASE, b"first")
        h.snoop_shared(BASE)
        acquires = home.stats.get("acquires")
        h.store(0, BASE, b"again")
        # S->M upgrade: the home (device) hears about it again.
        assert home.stats.get("acquires") == acquires + 1

    def test_dirty_line_in_llc_found(self):
        h, _c, _s, _home = build()
        # Dirty the line, then force it out of the core into the LLC by
        # filling the private caches.
        h.store(0, BASE, b"\xcc" * 8)
        for i in range(64, 64 * 1024, 64):
            h.load(0, BASE + i, 8)
        if h.directory.owner(BASE) is None:       # made it to the LLC
            fresh = h.snoop_shared(BASE)
            assert fresh is not None and fresh[:8] == b"\xcc" * 8

    def test_core_dirty_beats_llc_stale(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"v1......")
        h.load(1, BASE, 8)            # downgrade: v1 lands dirty in LLC
        h.store(0, BASE, b"v2......")  # core 0 re-owns with newer data
        fresh = h.snoop_shared(BASE)
        assert fresh[:8] == b"v2......"


class TestSnoopInvalidate:
    def test_removes_all_copies(self):
        h, _c, _s, _home = build()
        h.load(0, BASE, 8)
        h.load(1, BASE, 8)
        h.snoop_invalidate(BASE)
        assert h.directory.state(BASE, 0) == MesiState.INVALID
        assert h.directory.state(BASE, 1) == MesiState.INVALID

    def test_returns_dirty_data(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"\xdd" * 8)
        fresh = h.snoop_invalidate(BASE)
        assert fresh[:8] == b"\xdd" * 8

    def test_reload_after_invalidate_misses(self):
        h, _c, _s, _home = build()
        h.load(0, BASE, 8)
        fetches = h.stats.get("memory_fetches")
        h.snoop_invalidate(BASE)
        h.load(0, BASE, 8)
        assert h.stats.get("memory_fetches") == fetches + 1
