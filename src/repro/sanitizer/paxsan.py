"""PaxSan: the dynamic persist-order checker for the PAX machine.

Shadows every vPM cache line with a persist-state machine::

    clean --store--> dirty-in-cache --undo record durable + PM write--> durable
                          |                          ^
                          +----- logged (record  ----+
                                 pending in SRAM)

and checks the three invariants the accelerator design rests on
(paper §3.2-3.3), as the simulation runs:

``san-missing-undo``
    A data-region line reached the PM medium with no undo record
    covering it this epoch — rollback could not restore its pre-image.
``san-undo-gate``
    A line reached PM *before* its undo record did. A crash between the
    two writes leaves a modified line with no durable pre-image.
``san-premature-commit``
    The epoch record advanced while a line modified in the committing
    epoch was still volatile (host cache or device SRAM) — the
    "snapshot" would be missing data after a crash.

Attach with ``PaxSanitizer().attach(machine)`` (or to a
:class:`~repro.libpax.pool.PaxPool` via its ``.machine``). Crash and
restart are understood: checking suspends while recovery rewrites PM and
resumes, reset, on the recovered state. Works for both the blocking and
the pipelined (:mod:`repro.core.pipeline`) persist paths — pending
stores are tagged with their undo record's epoch, so a line superseded
by a later epoch does not false-positive the earlier commit.
"""

from repro.sanitizer.base import (
    RULE_MISSING_UNDO,
    RULE_PREMATURE_COMMIT,
    RULE_UNDO_GATE,
    SanitizerBase,
)
from repro.util.bitops import align_down, lines_covering
from repro.util.constants import CACHE_LINE_SIZE


class PaxSanitizer(SanitizerBase):
    """Per-line persist-state tracking over one PAX machine."""

    def __init__(self, raise_on_violation=True):
        super().__init__(raise_on_violation=raise_on_violation)
        self._machine = None
        self._pending = {}       # pool line -> epoch of its undo record
        self._covered = {}       # pool line -> (record seq, record epoch)
        self._durable_seq = 0    # undo-log durability frontier
        self._epoch = 0          # open (uncommitted) epoch
        self._vpm_base = 0
        self._data_base = 0
        self._data_end = 0

    def attach(self, machine):
        """Hook every component of ``machine``; returns self.

        ``machine`` must be a :class:`~repro.libpax.machine.PaxMachine`
        (the device geometry is read from it). Attach right after the
        machine/pool is built, before the workload's first store.
        """
        self._machine = machine
        self._vpm_base = machine.device.vpm_base
        self._data_base = machine.pool.data_base
        self._data_end = machine.pool.data_end
        self._epoch = machine.device.epochs.current_epoch
        self._adopt_machine_state()
        machine.attach_tracer(self)
        return self

    def _adopt_machine_state(self):
        """Seed the shadow state from stores that preceded the attach.

        ``map_pool`` itself issues stores (allocator creation) before a
        sanitizer can exist, so attaching mid-epoch must adopt the undo
        log's coverage and the hierarchy's dirty lines as if it had
        watched them happen.
        """
        undo = self._machine.device.undo
        self._durable_seq = undo.durable_seq
        for pool_addr in undo.touched_lines():
            line = align_down(pool_addr, CACHE_LINE_SIZE)
            self._covered[line] = (undo.seq_for(pool_addr),
                                   undo.current_epoch)
        for phys_line in self._machine.hierarchy.dirty_lines():
            pool_line = self._to_pool(phys_line)
            if self._in_data(pool_line):
                covered = self._covered.get(pool_line)
                self._pending[pool_line] = (covered[1] if covered is not None
                                            else self._epoch)

    # -- address helpers -----------------------------------------------------

    def _to_pool(self, phys_addr):
        return phys_addr - self._vpm_base + self._data_base

    def _in_data(self, pool_addr):
        return self._data_base <= pool_addr < self._data_end

    # -- events --------------------------------------------------------------

    def on_store(self, phys_line):
        """Mark the stored line volatile, tagged with its record's epoch."""
        if self._suspended:
            return
        pool_line = self._to_pool(phys_line)
        if not self._in_data(pool_line):
            return
        covered = self._covered.get(pool_line)
        # CXL.cache logs at RdOwn, which precedes the store, so the
        # record (and its epoch) exists by now; CXL.mem logs at
        # write-back, so fall back to the sanitizer's epoch counter.
        self._pending[pool_line] = (covered[1] if covered is not None
                                    else self._epoch)

    def on_log_record(self, pool_addr, seq, epoch):
        """Record undo coverage for the line."""
        self._covered[align_down(pool_addr, CACHE_LINE_SIZE)] = (seq, epoch)

    def on_log_durable(self, seq):
        """Advance the durability frontier."""
        if seq > self._durable_seq:
            self._durable_seq = seq

    def on_pm_write(self, offset, length):
        """Check the write-back gate; retire pending state for the lines."""
        if self._suspended or length == 0:
            return
        if offset >= self._data_end or offset + length <= self._data_base:
            return      # superblock or undo-log region: not shadowed
        for line in lines_covering(offset, length):
            if not self._in_data(line):
                continue
            covered = self._covered.get(line)
            if covered is None:
                self._pending.pop(line, None)
                self._report(
                    RULE_MISSING_UNDO,
                    "line written to PM with no undo record this epoch; "
                    "rollback cannot restore its pre-image",
                    addr=line, epoch=self._epoch)
            elif covered[0] > self._durable_seq:
                self._pending.pop(line, None)
                self._report(
                    RULE_UNDO_GATE,
                    "line written to PM before undo record %d became "
                    "durable (frontier %d)" % (covered[0], self._durable_seq),
                    addr=line, epoch=covered[1])
            else:
                self._pending.pop(line, None)

    def on_epoch_commit(self, epoch):
        """Check no line of the committing epoch is still volatile."""
        if self._suspended:
            return
        stale = sorted(line for line, tag in self._pending.items()
                       if tag <= epoch)
        if stale:
            for line in stale:
                del self._pending[line]
            self._report(
                RULE_PREMATURE_COMMIT,
                "epoch committed while %d modified line(s) never reached "
                "PM (first: 0x%x)" % (len(stale), stale[0]),
                addr=stale[0], epoch=epoch)
        self._covered = {line: cov for line, cov in self._covered.items()
                         if cov[1] > epoch}
        if epoch >= self._epoch:
            self._epoch = epoch + 1

    def on_machine_crash(self):
        """Power loss: every pending (volatile) line is legitimately gone."""
        super().on_machine_crash()
        self._pending.clear()

    def on_machine_restart(self):
        """Resync with the recovered machine: fresh log, committed epoch."""
        super().on_machine_restart()
        self._pending.clear()
        self._covered.clear()
        self._durable_seq = 0
        self._epoch = self._machine.device.epochs.current_epoch

    # -- introspection -------------------------------------------------------

    def describe(self):
        """Multi-line summary of the shadow state (for tools.inspect)."""
        lines = [
            "sanitizer:       PaxSan (%s mode)"
            % ("raise" if self.raise_on_violation else "collect"),
            "open epoch:      %d" % self._epoch,
            "pending lines:   %d volatile (stored, not yet on PM)"
            % len(self._pending),
            "covered lines:   %d with live undo records" % len(self._covered),
            "durable seq:     %d" % self._durable_seq,
            "checking:        %s" % ("suspended (mid-crash)"
                                     if self._suspended else "active"),
            "violations:      %d" % len(self.findings),
        ]
        for finding in self.findings[:5]:
            lines.append("  %s" % finding)
        return "\n".join(lines)
