"""abl-replication: the cost of remote fault tolerance (§6).

Sync replication charges each persist() a network round trip plus line
transfer; async replication hides the wire behind the epoch pipeline at
the price of bounded failover staleness. This bench measures both against
an unreplicated pool across epoch sizes.
"""

from benchmarks.conftest import BENCH_CACHES
from repro.analysis.report import Table
from repro.core.replication import NetworkLink, ReplicaTarget, Replicator
from repro.libpax.pool import PaxPool
from repro.pm.device import PmDevice
from repro.pm.pool import Pool
from repro.structures.hashmap import HashMap
from repro.workloads.keys import KeySequence

HEAP = 32 * 1024 * 1024
LOG = 8 * 1024 * 1024
RECORDS = 8000
OPS = 2000
GROUP = 64


def run_mode(mode):
    pool = PaxPool.map_pool(pool_size=HEAP, log_size=LOG, **BENCH_CACHES)
    replicator = None
    if mode != "none":
        replica = ReplicaTarget(
            Pool.format(PmDevice("replica", HEAP), log_size=LOG))
        link = NetworkLink(pool.machine.clock)
        replicator = Replicator(pool.machine, replica, link=link, mode=mode)
    table = pool.persistent(HashMap, capacity=1 << 13)
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        table.put(load.next(), index)
    pool.persist()
    keys = KeySequence(RECORDS, "uniform", seed=2)
    start = pool.machine.now_ns
    persist_ns = []
    max_lag = 0
    for index in range(OPS):
        table.put(keys.next(), index)
        if (index + 1) % GROUP == 0:
            persist_ns.append(pool.persist())
            if replicator is not None:
                max_lag = max(max_lag, replicator.lag_epochs)
    if replicator is not None:
        replicator.flush()
    elapsed = pool.machine.now_ns - start
    return {
        "ns_per_op": elapsed / OPS,
        "mean_persist_ns": sum(persist_ns) / len(persist_ns),
        "max_lag_epochs": max_lag,
    }


def run():
    return {mode: run_mode(mode) for mode in ("none", "sync", "async")}


def test_replication_cost(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-replication: remote fault tolerance",
                  ["mode", "ns/op", "mean persist (ns)",
                   "max failover lag (epochs)"])
    for mode, row in results.items():
        table.add_row(mode, row["ns_per_op"], row["mean_persist_ns"],
                      row["max_lag_epochs"])
    table.show()
    # Sync pays the wire on every persist; async hides most of it.
    assert results["sync"]["mean_persist_ns"] \
        > results["none"]["mean_persist_ns"]
    assert results["async"]["mean_persist_ns"] \
        < results["sync"]["mean_persist_ns"]
    # Sync never lags; async may.
    assert results["sync"]["max_lag_epochs"] == 0
