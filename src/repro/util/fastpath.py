"""Fast-path/slow-path toggle for the simulator's per-access code.

The cache hierarchy and the PM device carry single-line fast paths that
bypass the generic ``split_lines`` walk (docs/performance.md). Both paths
must produce byte-identical simulated behaviour — the same stats, clock
values, and pool contents. Setting the ``REPRO_SLOW_PATH`` environment
variable to a truthy value before a component is constructed forces the
generic slow path, which is what the golden-equivalence test
(tests/test_fastpath_equivalence.py) uses to prove the optimization
changes nothing observable.

The flag is read once, at component construction, so a single process can
build one machine per setting and compare them.
"""

import os

#: Environment variable forcing the generic per-line walk.
SLOW_PATH_ENV = "REPRO_SLOW_PATH"


def fast_path_enabled():
    """True unless ``REPRO_SLOW_PATH`` is set to a non-empty, non-"0" value."""
    return os.environ.get(SLOW_PATH_ENV, "0") in ("", "0")
