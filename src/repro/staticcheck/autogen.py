"""Generate the ``autopass`` backend's auto-instrumented structure code.

``python -m repro.staticcheck.autogen --write`` reads the volatile hash
table (:mod:`repro.structures.hashmap`), runs the persist-order auto-fix
pass over it (style ``tx``: every uncovered accessor-store region gets
``begin()``/``end()`` gates), and writes the result to
``repro/baselines/_autopass_gen.py`` under a do-not-edit banner. The
:class:`~repro.baselines.autopass.AutopassBackend` binds that generated
module to an undo-logging accessor, turning the volatile structure into
a crash-consistent backend with zero hand-written gate sites.

``--check`` (the default; CI runs it) regenerates in memory and fails
if the committed file drifted from the generator output, so the
committed artifact is provably the fixer's work and not a hand edit.
"""

import argparse
import difflib
import os
import sys

from repro.errors import LintError
from repro.staticcheck.fixer import fix_source

GENERATED_NAME = "_autopass_gen.py"

_BANNER = [
    "# AUTO-GENERATED -- do not edit by hand.",
    "# Source: src/repro/structures/hashmap.py, instrumented by the",
    "# staticcheck persist-order auto-fix pass:",
    "#   python -m repro.staticcheck.autogen --write",
    "# Every begin()/end() pair below was placed by the fixer",
    "# (docs/analysis-tools.md, \"Auto-fix\"); CI checks this file is",
    "# byte-identical to a fresh regeneration.",
]


def source_path():
    """The volatile structure source the generator instruments."""
    import repro.structures.hashmap
    return repro.structures.hashmap.__file__


def target_path():
    """Where the generated, gate-instrumented copy is committed."""
    import repro.baselines
    return os.path.join(os.path.dirname(repro.baselines.__file__),
                        GENERATED_NAME)


def generate():
    """Return the generated module text: banner + gate-fixed source."""
    path = source_path()
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    fixed, report = fix_source(path, source, style="tx")
    if report.unfixable:
        details = "; ".join("%d:%d %s" % item for item in report.unfixable)
        raise LintError("autogen: fixer left uncovered stores in %s: %s"
                        % (path, details))
    return "\n".join(_BANNER) + "\n" + fixed


def main(argv=None):
    """CLI entry point; ``--check`` exits 1 on drift, 0 when in sync."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck.autogen",
        description="Regenerate (or verify) the auto-instrumented "
                    "structure module behind the autopass backend.")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help="write the generated module to %s"
                           % GENERATED_NAME)
    mode.add_argument("--check", action="store_true",
                      help="verify the committed module matches a fresh "
                           "regeneration (default)")
    args = parser.parse_args(argv)

    try:
        text = generate()
    except LintError as exc:
        print("autogen: error: %s" % exc, file=sys.stderr)
        return 2
    target = target_path()

    if args.write:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("autogen: wrote %s" % target, file=sys.stderr)
        return 0

    try:
        with open(target, "r", encoding="utf-8") as handle:
            committed = handle.read()
    except OSError:
        print("autogen: %s is missing; run --write" % target,
              file=sys.stderr)
        return 1
    if committed == text:
        print("autogen: %s matches the generator" % target, file=sys.stderr)
        return 0
    sys.stdout.writelines(difflib.unified_diff(
        committed.splitlines(keepends=True), text.splitlines(keepends=True),
        fromfile="committed/" + GENERATED_NAME,
        tofile="generated/" + GENERATED_NAME))
    print("autogen: %s drifted from the generator; run --write" % target,
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
