"""The compiler-instrumented baseline (Atlas / iDO style; paper §1-2).

A compiler pass that transforms volatile code for PM cannot see logical
operation boundaries the way a hand-crafted PMDK transaction does, so it
conservatively orders *every* store: log the old value, SFENCE, store,
CLWB, SFENCE. The paper calls this out verbatim: "Without nuanced,
structure-specific changes to code, stalls are incurred multiple times
during a single logical operation."

Implementation: same WAL machinery as the PMDK backend, but the accessor
eagerly persists every store instead of batching the flush at commit
(lines it has flushed leave the dirty set, so commit only publishes the
transaction id). Failure atomicity of whole operations still comes from an
outer per-operation region (as Atlas derives from lock scopes), so
recovery semantics match PMDK; only the hot-path cost differs.
"""

from repro.baselines.pmdk import PmdkBackend, UndoTxAccessor
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HEAP_PHYS_BASE
from repro.util.bitops import split_lines
from repro.util.constants import CACHE_LINE_SIZE


class PerStoreTxAccessor(UndoTxAccessor):
    """Undo logging with per-store flush+fence (no commit-time batching)."""

    def __init__(self, inner, wal, space, flush, machine):
        super().__init__(inner, wal, space)
        self._flush = flush
        self._machine = machine

    def write(self, addr, data):
        data = bytes(data)
        super().write(addr, data)
        if self.in_tx:
            # The pass cannot prove the store is covered by a later flush,
            # so it eagerly persists it: CLWB the line(s), SFENCE. The
            # lines are durable now, so commit need not revisit them.
            for line, _off, _len in split_lines(addr, len(data)):
                self._flush.clwb(line, CACHE_LINE_SIZE)
                self._machine.hierarchy.writeback_line(HEAP_PHYS_BASE + line)
                self._dirty.discard(line)
            self._flush.sfence()


class CompilerPassBackend(PmdkBackend):
    """Per-store instrumented undo-WAL hash table on PM."""

    name = "compiler"
    crash_consistent = True

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        # Swap in the eager accessor and rebind structure + allocator so
        # every subsequent store goes through it. (The heap written by the
        # parent constructor is already durable and committed.)
        self._tx = PerStoreTxAccessor(self._machine.mem(), self._wal,
                                      self._machine.space, self._flush,
                                      self._machine)
        self._alloc = PmAllocator.attach(self._tx)
        self._reattach_structure(self._tx, self._alloc, self._cells.root)
