"""PaxSan / WalSan: clean runs stay silent, planted persist-order bugs
are caught with the right rule id and location, and the crash fuzzer
passes a sanitized sweep."""

import pytest

from repro.cache.cache import CacheConfig
from repro.crashtest.fuzz import run_fuzz
from repro.errors import SanitizerError
from repro.libpax.pool import PaxPool
from repro.sanitizer import (
    RULE_FENCE_INVERSION,
    RULE_MISSING_UNDO,
    RULE_PREMATURE_COMMIT,
    RULE_UNDO_GATE,
    PaxSanitizer,
    WalSanitizer,
)
from repro.structures.hashmap import HashMap
from repro.util.constants import CACHE_LINE_SIZE

POOL_SIZE = 2 * 1024 * 1024
LOG_SIZE = 64 * 1024


def make_pool():
    """A small sanitized PAX pool (tiny caches force early write-backs)."""
    pool = PaxPool.map_pool(
        pool_size=POOL_SIZE, log_size=LOG_SIZE,
        l1_config=CacheConfig(size_bytes=4 * 1024, ways=4),
        l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
        llc_config=CacheConfig(size_bytes=64 * 1024, ways=8))
    sanitizer = PaxSanitizer().attach(pool.machine)
    return pool, sanitizer


# -- clean runs -------------------------------------------------------------

def test_pax_clean_run_with_crash_and_restart():
    pool, sanitizer = make_pool()
    structure = pool.persistent(HashMap)
    for i in range(200):
        structure.put(i % 16, i)
        if i % 50 == 49:
            pool.persist()
    pool.crash()
    assert not sanitizer.checking
    pool.restart()
    assert sanitizer.checking
    structure = pool.reattach_root(HashMap)
    for i in range(50):
        structure.put(i % 16, i + 1000)
    pool.persist()
    assert sanitizer.ok
    assert "PaxSan" in sanitizer.describe()


def test_pax_clean_run_pipelined_persists():
    pool, sanitizer = make_pool()
    structure = pool.persistent(HashMap)
    for i in range(60):
        structure.put(i % 16, i)
        if i % 20 == 19:
            pool.persist_async()
    pool.persist_barrier()
    assert sanitizer.ok


def test_wal_backends_clean_run():
    from repro.baselines.pmdk import PmdkBackend
    from repro.baselines.redo import RedoBackend
    for backend_cls in (PmdkBackend, RedoBackend):
        backend = backend_cls(heap_size=4 * 1024 * 1024)
        sanitizer = WalSanitizer().attach(backend)
        for i in range(40):
            backend.put(i % 8, i)
            if i % 10 == 9:
                backend.remove(i % 8)
        backend.machine.crash()
        backend.restart()
        backend.put(1, 2)
        assert sanitizer.ok, backend_cls.name


# -- planted bugs -----------------------------------------------------------

def test_missing_undo_on_raw_device_write():
    pool, _sanitizer = make_pool()
    structure = pool.persistent(HashMap)
    structure.put(1, 2)
    # A device write to an untouched data line, bypassing the logging
    # path: rollback could never restore its pre-image.
    target = pool.machine.pool.data_base + 256 * 1024
    with pytest.raises(SanitizerError) as excinfo:
        pool.machine.pool.device.write(target, b"\xab" * CACHE_LINE_SIZE)
    assert excinfo.value.rule == RULE_MISSING_UNDO
    assert excinfo.value.addr == target


def test_undo_gate_on_write_before_record_durable():
    pool, _sanitizer = make_pool()
    structure = pool.persistent(HashMap)
    structure.put(1, 2)
    # Forge a pending (not yet durable) undo record, then write the line
    # to PM before the background drain runs — the ordering a real PAX
    # device enforces in hardware.
    target = pool.machine.pool.data_base + 128 * 1024
    pool.machine.device.undo.note_modification(target,
                                               bytes(CACHE_LINE_SIZE))
    with pytest.raises(SanitizerError) as excinfo:
        pool.machine.pool.device.write(target, b"\xcd" * CACHE_LINE_SIZE)
    assert excinfo.value.rule == RULE_UNDO_GATE
    assert excinfo.value.addr == target


def test_premature_commit_with_volatile_lines():
    pool, _sanitizer = make_pool()
    structure = pool.persistent(HashMap)
    structure.put(3, 4)
    # Advance the epoch record while the put's lines are still dirty in
    # the host caches — the "snapshot" would be missing them.
    inner = pool.machine.pool
    with pytest.raises(SanitizerError) as excinfo:
        inner.commit_epoch(inner.committed_epoch + 1)
    assert excinfo.value.rule == RULE_PREMATURE_COMMIT
    assert excinfo.value.addr is not None


def test_fence_inversion_on_unfenced_commit():
    from repro.baselines.pmdk import PmdkBackend
    backend = PmdkBackend(heap_size=4 * 1024 * 1024)
    WalSanitizer().attach(backend)
    # Break the backend: commits publish without ordering their flushes.
    backend._flush.sfence = lambda: 0.0
    with pytest.raises(SanitizerError) as excinfo:
        backend.put(1, 2)
    assert excinfo.value.rule == RULE_FENCE_INVERSION


def test_wal_missing_undo_on_unlogged_tx_store():
    from repro.baselines.pmdk import PmdkBackend
    backend = PmdkBackend(heap_size=4 * 1024 * 1024)
    WalSanitizer().attach(backend)
    backend._tx.begin(99)
    try:
        # Store into the arena around the TX_ADD interposer: no WAL
        # entry covers the line.
        with pytest.raises(SanitizerError) as excinfo:
            backend._machine.mem().write(256, b"\x01" * 8)
    finally:
        backend._tx.end()
    assert excinfo.value.rule == RULE_MISSING_UNDO


def test_collect_mode_accumulates_instead_of_raising():
    pool = PaxPool.map_pool(
        pool_size=POOL_SIZE, log_size=LOG_SIZE,
        l1_config=CacheConfig(size_bytes=4 * 1024, ways=4),
        l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
        llc_config=CacheConfig(size_bytes=64 * 1024, ways=8))
    sanitizer = PaxSanitizer(raise_on_violation=False).attach(pool.machine)
    structure = pool.persistent(HashMap)
    structure.put(1, 2)
    target = pool.machine.pool.data_base + 256 * 1024
    pool.machine.pool.device.write(target, b"\xab" * CACHE_LINE_SIZE)
    assert not sanitizer.ok
    assert [f.rule for f in sanitizer.findings] == [RULE_MISSING_UNDO]
    # Violation counts show up in the live-machine dump.
    from repro.tools.inspect import format_machine
    report = format_machine(pool.machine)
    assert "PaxSan" in report and "violations:      1" in report


# -- the fuzzer under the sanitizer ----------------------------------------

def test_sanitized_fuzz_smoke_is_clean():
    stats = run_fuzz(iterations=100, seed=20260806, progress=None,
                     sanitize=True)
    assert stats.iterations == 100
    assert stats.ok, stats.summary()
