"""The coherence-bus-to-CXL adapter layer.

Paper §4: the Enzian prototype sees ThunderX-1 ECI messages, which are
lower-level and microarchitecture-specific; PAX therefore runs behind an
"adapter" that filters and rewrites them into CXL-shaped messages, so the
device logic ports unchanged to commodity CXL hardware. The software
prototype (Pin-based) uses the same layer.

We reproduce that structure: the cache hierarchy's device home emits
*raw bus operations* (:class:`BusOp`), and :class:`CxlAdapter` maps them
onto the typed message set in :mod:`repro.cxl.messages`. The device only
ever consumes CXL messages — the test suite asserts the device never sees
a raw bus op, which is exactly the portability property the paper wants.
"""

from repro.cxl import messages as msg
from repro.errors import ProtocolError
from repro.util.stats import StatGroup


class BusOp:
    """Raw host coherence-bus operations (microarchitecture-flavoured)."""

    READ_MISS = "read_miss"          # LLC read miss into device-homed range
    WRITE_MISS = "write_miss"        # store miss needing data + ownership
    WRITE_UPGRADE = "write_upgrade"  # S->M upgrade, data already cached
    EVICT_DIRTY = "evict_dirty"      # modified victim leaving the LLC
    EVICT_CLEAN = "evict_clean"      # clean victim notification

    ALL = (READ_MISS, WRITE_MISS, WRITE_UPGRADE, EVICT_DIRTY, EVICT_CLEAN)


class CxlAdapter:
    """Stateless translation between bus ops and CXL.cache messages."""

    def __init__(self):
        self.stats = StatGroup("cxl_adapter")
        # Per-miss translation counters, keyed by op and bound once
        # (hot-path-stat-lookup rule): the op set is closed, so the
        # "translated." + op key concatenation can happen here instead of
        # on every miss.
        self._c_translated = {
            op: self.stats.counter("translated." + op) for op in BusOp.ALL}

    def to_cxl(self, op, addr, data=None):
        """Translate a host bus operation into the CXL request to send."""
        counter = self._c_translated.get(op)
        if counter is not None:
            counter.value += 1
        if op == BusOp.READ_MISS:
            return msg.RdShared(addr)
        if op == BusOp.WRITE_MISS:
            return msg.RdOwn(addr, need_data=True)
        if op == BusOp.WRITE_UPGRADE:
            return msg.RdOwn(addr, need_data=False)
        if op == BusOp.EVICT_DIRTY:
            if data is None:
                raise ProtocolError("dirty eviction needs line data")
            return msg.DirtyEvict(addr, data)
        if op == BusOp.EVICT_CLEAN:
            return msg.CleanEvict(addr)
        raise ProtocolError("unknown bus operation %r" % (op,))

    def expected_response(self, request):
        """The response type the protocol requires for ``request``."""
        if isinstance(request, msg.RdShared):
            return msg.DataResponse
        if isinstance(request, msg.RdOwn):
            return msg.DataResponse if request.need_data else msg.Go
        if isinstance(request, (msg.DirtyEvict, msg.CleanEvict)):
            return msg.Go
        raise ProtocolError("unknown request %r" % (request,))

    def check_response(self, request, response):
        """Raise :class:`ProtocolError` if ``response`` is malformed."""
        expected = self.expected_response(request)
        if not isinstance(response, expected):
            raise ProtocolError(
                "%s answered with %s, protocol requires %s"
                % (request.name, response.name, expected.__name__))
        if response.addr != request.addr:
            raise ProtocolError(
                "response address 0x%x does not match request 0x%x"
                % (response.addr, request.addr))
        if isinstance(request, msg.RdShared) and response.state != "S":
            raise ProtocolError("RdShared must be granted S, got %s"
                                % response.state)
        if (isinstance(request, msg.RdOwn) and request.need_data
                and response.state != "M"):
            raise ProtocolError("RdOwn must be granted M, got %s"
                                % response.state)
        return response
