"""The chaos controller: scheduled faults under live traffic.

Consumes a :class:`~repro.faults.plan.FaultTimeline` (validated at build
time — see :class:`~repro.errors.FaultPlanError`) and makes it happen
against the harness's shards:

* **crash windows** — when a window opens, a
  :class:`~repro.faults.injector.FaultInjector` is armed on a
  deterministically chosen shard with a store-count fuse, so the power
  cut lands *mid-operation* (half-linked node, mid-resize) exactly like
  the offline fuzzer's worst cases; if the window closes before any
  store burns the fuse, the crash is forced so every scheduled cycle
  actually runs. The window's :class:`~repro.faults.plan.FaultPlan`
  (default: torn in-flight write) is applied between power-off and
  recovery.
* **link-storm windows** — every shard's
  :class:`~repro.cxl.lossy.LossyLink` is swapped to the storm's
  :class:`~repro.faults.plan.LinkFaultSpec` for the duration. A health
  monitor watches the retransmit counters; past
  ``read_only_after_retransmits`` the controller reports the pool
  unhealthy and the harness degrades to read-only until the storm ends.

Everything keys off the served-request tick and forked RNGs, never
wall-clock, so an entire drill replays bit-for-bit.
"""

from repro.cxl.lossy import LossyLink
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FaultTimeline,
    FaultWindow,
    LinkFaultSpec,
)

#: A crash window's store-count fuse is drawn from [0, this].
MAX_STORES_UNTIL_CRASH = 300

#: Storm link behaviour when none is specified: every tenth message
#: dropped, jittered backoff, a deep retry budget (storms should degrade
#: service, not kill shards outright).
DEFAULT_STORM_LINK = LinkFaultSpec(drop_rate=0.10, jitter=0.5,
                                   max_retries=64)

#: Default crash dirtiness: tear the PM write in flight. (Log-interior
#: and epoch-slot bit flips stay out of serving drills on purpose — they
#: can legitimately cost a snapshot, which would muddy the drill's
#: zero-lost-acked-writes contract; the offline fuzzer owns those.)
DEFAULT_CRASH_PLAN = FaultPlan(torn_write=True)


def build_timeline(total_ticks, crashes=0, storms=0, rng=None,
                   crash_plan=None, storm_link=None, window_ticks=None):
    """Evenly spaced, jitter-offset crash/storm windows over a drill.

    ``total_ticks`` is the expected served-request count; ``crashes``
    crash windows and ``storms`` link-storm windows are spread across
    it, with deterministic jitter from ``rng`` so cycles do not land on
    metronome ticks. Returns a validated
    :class:`~repro.faults.plan.FaultTimeline`.
    """
    windows = []
    width = window_ticks or max(10, total_ticks // (4 * max(crashes, 1)))
    if crashes:
        plan = crash_plan or DEFAULT_CRASH_PLAN
        spacing = total_ticks / crashes
        for index in range(crashes):
            base = int(index * spacing) + 1
            offset = rng.randint(0, max(1, int(spacing) // 4)) if rng else 0
            start = base + offset
            windows.append(FaultWindow("crash", start, start + width,
                                       plan=plan))
    if storms:
        spec = storm_link or DEFAULT_STORM_LINK
        storm_width = window_ticks or max(10, total_ticks // (3 * storms))
        spacing = total_ticks / storms
        for index in range(storms):
            # Offset storms half a stride from crashes so same-kind
            # windows stay disjoint by construction.
            start = int(index * spacing + spacing / 2) + 1
            windows.append(FaultWindow("link-storm", start,
                                       start + storm_width, link=spec))
    return FaultTimeline.build(windows)


class ChaosController:
    """Drives one timeline against the harness's shards."""

    def __init__(self, timeline, shards, rng, slo,
                 read_only_after_retransmits=None):
        self.timeline = timeline.validate()
        self.shards = shards                   # list of ShardState
        self.rng = rng
        self.slo = slo
        self.read_only_after_retransmits = read_only_after_retransmits
        self._crash_windows = timeline.of_kind("crash")
        # Deterministic shard targeting, fixed up front: window order is
        # defined, so the draw sequence is too.
        self._crash_targets = [rng.randint(0, len(shards) - 1)
                               for _ in self._crash_windows]
        self._next_crash = 0
        self._armed = None                     # (window, shard_index)
        self._injector = None
        self._storm = None
        self._storm_saved = []                 # (shard_index, previous spec)
        self._storm_retransmit_base = 0
        self._degraded = False

    # -- health ------------------------------------------------------------

    @property
    def read_only(self):
        """True while the harness must reject writes (degraded mode)."""
        return self._degraded

    def _retransmits_total(self):
        total = 0
        for shard in self.shards:
            link = shard.pool.machine.link
            if isinstance(link, LossyLink):
                total += link.stats.get("retransmits")
        return total

    # -- per-tick driving ----------------------------------------------------

    def begin_tick(self, tick):
        """Advance chaos state for serving tick ``tick``.

        Returns the shard index that must *force-crash* now (its window
        expired before the armed fuse burned), or None.
        """
        self._drive_storm(tick)
        return self._drive_crash(tick)

    def _drive_storm(self, tick):
        storm = self.timeline.active("link-storm", tick)
        if storm is self._storm:
            if self._storm is not None:
                self._check_health()
            return
        if self._storm is not None and storm is None:
            self._exit_storm()
        elif storm is not None:
            self._enter_storm(storm)

    def _enter_storm(self, storm):
        self._storm = storm
        self._storm_saved = []
        for index, shard in enumerate(self.shards):
            link = shard.pool.machine.link
            if isinstance(link, LossyLink):
                self._storm_saved.append((index, link.set_spec(storm.link)))
        self._storm_retransmit_base = self._retransmits_total()
        self.slo.storms_entered.add(1)

    def _exit_storm(self):
        for index, previous in self._storm_saved:
            link = self.shards[index].pool.machine.link
            if isinstance(link, LossyLink):
                link.set_spec(previous)
        self._storm = None
        self._storm_saved = []
        self._degraded = False

    def _check_health(self):
        if self.read_only_after_retransmits is None or self._degraded:
            return
        seen = self._retransmits_total() - self._storm_retransmit_base
        if seen > self.read_only_after_retransmits:
            self._degraded = True
            self.slo.degraded_entered.add(1)

    def reapply_storm(self, shard_index):
        """Re-impose an active storm on a shard rebuilt by restart().

        ``restart()`` rebuilds the link wrapper from the machine's base
        spec, which would silently end the storm for that shard.
        """
        if self._storm is None:
            return
        link = self.shards[shard_index].pool.machine.link
        if isinstance(link, LossyLink):
            link.set_spec(self._storm.link)

    # -- crash scheduling -----------------------------------------------------

    def _drive_crash(self, tick):
        if self._next_crash >= len(self._crash_windows):
            return None
        window = self._crash_windows[self._next_crash]
        if self._armed is None:
            if window.contains(tick):
                self._arm(window)
            return None
        if tick >= window.end:
            # Fuse never burned (read-heavy stretch, wrong shard): force
            # the cycle so the schedule is honoured.
            return self._armed[1]
        return None

    def _arm(self, window):
        shard_index = self._crash_targets[self._next_crash]
        machine = self.shards[shard_index].pool.machine
        plan = window.plan or DEFAULT_CRASH_PLAN
        self._injector = FaultInjector(machine, plan,
                                       rng=self.rng.fork(
                                           "crash-%d" % self._next_crash))
        self._injector.arm(self.rng.randint(0, MAX_STORES_UNTIL_CRASH))
        self._armed = (window, shard_index)

    @property
    def armed_shard(self):
        """Index of the shard currently armed to crash, or None."""
        return self._armed[1] if self._armed is not None else None

    def crash_now(self, shard_index):
        """Cut power on ``shard_index`` and apply the window's fault plan.

        Used both for the armed-fuse path (the
        :class:`~repro.crashtest.injector.CrashSignal` already unwound
        the interrupted op; the machine is still powered) and the
        forced path.
        """
        injector = self._injector
        injector.crash_injector.disarm()
        injector.crash()
        self.slo.crashes.add(1)
        self._armed = None
        self._injector = None
        self._next_crash += 1
        return shard_index
