"""Trace record / trace replay (see docs/performance.md, "Trace replay").

Record a workload's event stream once at the machine seams, then replay
it many times against freshly built backends without re-running the
structure layer — with a fast columnar interpreter for the single-core
PAX shape. Replay is proven byte-identical to the per-access path
(``sim_ns``, stat counters, final pool bytes) by the golden-equivalence
tests; the per-access path remains the executable spec.

Public API::

    trace = record(backend, drive)            # capture
    trace.save(path); trace = load_trace(path)
    result = replay_trace(trace, fresh_backend)
"""

from repro.replay.engine import (ReplayResult, fast_eligible,
                                 replay_trace)
from repro.replay.format import (MARK_TIMED, TRACE_MAGIC, TRACE_VERSION,
                                 Trace, load_trace, load_trace_bytes)
from repro.replay.recorder import TraceRecorder, record

__all__ = [
    "MARK_TIMED", "TRACE_MAGIC", "TRACE_VERSION", "Trace",
    "TraceRecorder", "ReplayResult", "fast_eligible", "load_trace",
    "load_trace_bytes", "record", "replay_trace",
]
