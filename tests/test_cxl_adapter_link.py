"""Adapter translation rules, protocol checking, and the link model."""

import pytest

from repro.cxl import messages as msg
from repro.cxl.adapter import BusOp, CxlAdapter
from repro.cxl.link import CxlLink
from repro.errors import ConfigError, ProtocolError
from repro.sim.clock import SimClock
from repro.sim.latency import default_model


class TestAdapterTranslation:
    def test_read_miss(self):
        out = CxlAdapter().to_cxl(BusOp.READ_MISS, 0x40)
        assert isinstance(out, msg.RdShared)

    def test_write_miss(self):
        out = CxlAdapter().to_cxl(BusOp.WRITE_MISS, 0x40)
        assert isinstance(out, msg.RdOwn) and out.need_data

    def test_write_upgrade(self):
        out = CxlAdapter().to_cxl(BusOp.WRITE_UPGRADE, 0x40)
        assert isinstance(out, msg.RdOwn) and not out.need_data

    def test_evict_dirty_requires_data(self):
        adapter = CxlAdapter()
        with pytest.raises(ProtocolError):
            adapter.to_cxl(BusOp.EVICT_DIRTY, 0x40)
        out = adapter.to_cxl(BusOp.EVICT_DIRTY, 0x40, b"\x00" * 64)
        assert isinstance(out, msg.DirtyEvict)

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError):
            CxlAdapter().to_cxl("flush_all", 0x40)

    def test_translation_counted(self):
        adapter = CxlAdapter()
        adapter.to_cxl(BusOp.READ_MISS, 0x40)
        assert adapter.stats.get("translated.read_miss") == 1


class TestResponseChecking:
    def test_correct_response_passes(self):
        adapter = CxlAdapter()
        request = msg.RdShared(0x40)
        response = msg.DataResponse(0x40, b"\x00" * 64, "S")
        assert adapter.check_response(request, response) is response

    def test_wrong_type_rejected(self):
        adapter = CxlAdapter()
        with pytest.raises(ProtocolError):
            adapter.check_response(msg.RdShared(0x40), msg.Go(0x40))

    def test_wrong_addr_rejected(self):
        adapter = CxlAdapter()
        with pytest.raises(ProtocolError):
            adapter.check_response(
                msg.RdShared(0x40),
                msg.DataResponse(0x80, b"\x00" * 64, "S"))

    def test_rd_shared_must_grant_S(self):
        adapter = CxlAdapter()
        with pytest.raises(ProtocolError):
            adapter.check_response(
                msg.RdShared(0x40),
                msg.DataResponse(0x40, b"\x00" * 64, "M"))

    def test_rd_own_must_grant_M(self):
        adapter = CxlAdapter()
        with pytest.raises(ProtocolError):
            adapter.check_response(
                msg.RdOwn(0x40, need_data=True),
                msg.DataResponse(0x40, b"\x00" * 64, "S"))

    def test_upgrade_expects_go(self):
        adapter = CxlAdapter()
        assert adapter.expected_response(msg.RdOwn(0x40, need_data=False)) \
            is msg.Go


class TestLink:
    def test_presets(self):
        clock = SimClock()
        model = default_model()
        cxl = CxlLink.from_model("cxl", clock, model)
        enzian = CxlLink.from_model("enzian", clock, model)
        assert cxl.one_way_ns < enzian.one_way_ns

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            CxlLink.from_model("nvlink", SimClock(), default_model())

    def test_hop_latency(self):
        link = CxlLink("t", SimClock(), 50, 1e12)
        assert link.send_h2d(msg.RdShared(0x40)) == pytest.approx(50)

    def test_round_trip(self):
        link = CxlLink("t", SimClock(), 50, 1e12)
        total = link.round_trip(msg.RdShared(0x40),
                                msg.DataResponse(0x40, b"\x00" * 64, "S"))
        assert total == pytest.approx(100)

    def test_bandwidth_queueing_slows_bursts(self):
        link = CxlLink("t", SimClock(), 10, 1e9)    # slow link
        first = link.send_h2d(msg.DirtyEvict(0x40, b"\x00" * 64))
        second = link.send_h2d(msg.DirtyEvict(0x80, b"\x00" * 64))
        assert second > first

    def test_message_accounting(self):
        link = CxlLink("t", SimClock(), 10, 1e12)
        link.send_h2d(msg.RdShared(0x40))
        link.send_d2h(msg.Go(0x40))
        assert link.stats.get("h2d_messages") == 1
        assert link.stats.get("d2h_messages") == 1
