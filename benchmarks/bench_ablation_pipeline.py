"""abl-pipeline: blocking vs pipelined persist (the §6 extension).

Paper §6: "we believe it may be possible to make persist() fully
non-blocking, so that epochs overlap and threads never stall". Our
implementation blocks only for the snoop phase; log pump, write-back, and
the epoch-cell write retire in the background. This bench measures the
host-visible cost of a snapshot under both modes across epoch sizes.
"""

from benchmarks.conftest import bench_backend
from repro.analysis.report import Table
from repro.workloads.keys import KeySequence

RECORDS = 8000
OPS = 2000
GROUPS = (16, 128)


def run_mode(use_async, group_size):
    backend = bench_backend("pax")
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        backend.put(load.next(), index)
    backend.persist()
    keys = KeySequence(RECORDS, "uniform", seed=2)
    pool = backend.pool
    start = backend.now_ns
    persist_blocking_ns = 0.0
    for index in range(OPS):
        backend.put(keys.next(), index)
        if (index + 1) % group_size == 0:
            before = backend.now_ns
            if use_async:
                pool.persist_async()
            else:
                pool.persist()
            persist_blocking_ns += backend.now_ns - before
    pool.persist_barrier()
    pool.persist()
    elapsed = backend.now_ns - start
    persists = OPS // group_size
    return {
        "ns_per_op": elapsed / OPS,
        "block_per_persist_ns": persist_blocking_ns / persists,
    }


def run():
    results = {}
    for group in GROUPS:
        results[("blocking", group)] = run_mode(False, group)
        results[("pipelined", group)] = run_mode(True, group)
    return results


def test_pipelined_persist(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-pipeline: host-visible persist cost",
                  ["mode", "group size", "ns/op",
                   "blocking ns per persist"])
    for (mode, group), row in results.items():
        table.add_row(mode, group, row["ns_per_op"],
                      row["block_per_persist_ns"])
    table.show()
    for group in GROUPS:
        blocking = results[("blocking", group)]
        pipelined = results[("pipelined", group)]
        # The host stalls strictly less per snapshot when pipelined...
        assert pipelined["block_per_persist_ns"] \
            < blocking["block_per_persist_ns"]
        # ...and end-to-end throughput does not regress.
        assert pipelined["ns_per_op"] <= blocking["ns_per_op"] * 1.05
