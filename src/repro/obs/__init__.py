"""Observability layer: structured tracing, metrics export, trace tooling.

The rest of this repository can tell you *how much* time a run consumed
(end-of-run counters, perfbench cells); this package tells you *where it
went* while the run unfolds — the paper's whole argument is about the
shape of a persist epoch (coherence interposition, undo-log drain,
group-commit snoop storms), and a shape needs a timeline, not a total.
See docs/observability.md for the event taxonomy and exporter formats.

Three pieces:

* :class:`~repro.obs.tracer.ObsTracer` — a ring-buffered structured
  event tracer fed from the sanitizer :class:`~repro.sanitizer.base.Tracer`
  hook points plus dedicated span hooks in the cache miss path, the CXL
  link, ``persist()``/epoch commit, and recovery. Timestamps are
  **simulated** nanoseconds; attaching a tracer never changes simulated
  behaviour (the golden tests pin this).
* :class:`~repro.obs.metrics.MetricsRegistry` — unifies the bound
  :class:`~repro.util.stats.StatGroup` counters/histograms behind named,
  labeled series with periodic (sim-time) snapshotting and a flat
  Prometheus-style text dump.
* exporters and a CLI — JSONL event logs, Chrome ``trace_event`` JSON
  (loadable in Perfetto), ``python -m repro.obs summarize / convert /
  validate / overhead``.

Hot-path discipline (docs/performance.md): with no tracer attached every
hook is a single ``is not None`` attribute check — the ``overhead`` CLI
subcommand measures exactly that and CI fails if it costs more than 5%.
"""

from repro.obs.tracer import (
    CATEGORIES,
    DEFAULT_CAPACITY,
    EVENT_INSTANT,
    EVENT_SPAN,
    ObsTracer,
    RingBuffer,
    TeeTracer,
)
from repro.obs.metrics import MetricsRegistry, prometheus_name
from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace,
    event_to_dict,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_CAPACITY",
    "EVENT_INSTANT",
    "EVENT_SPAN",
    "MetricsRegistry",
    "ObsTracer",
    "RingBuffer",
    "TRACE_SCHEMA",
    "TeeTracer",
    "chrome_trace",
    "event_to_dict",
    "prometheus_name",
    "read_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
