"""CPU cache substrate: arrays, MESI directory, coherent hierarchy, homes."""

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.coherence import Directory, DirectoryEntry
from repro.cache.hierarchy import (
    CacheHierarchy,
    default_l1_config,
    default_l2_config,
    default_llc_config,
)
from repro.cache.homes import Home, HostHome
from repro.cache.line import CacheLine, MesiState
from repro.cache.mechanisms import (
    MECHANISMS,
    Mechanism,
    MechanismStack,
    MissCache,
    NextLinePrefetch,
    StreamBuffers,
    VictimCache,
    make_mechanisms,
    mechanism_names,
)
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.stats import MissRates

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CacheLine",
    "Directory",
    "DirectoryEntry",
    "FifoPolicy",
    "Home",
    "HostHome",
    "LruPolicy",
    "MECHANISMS",
    "Mechanism",
    "MechanismStack",
    "MesiState",
    "MissCache",
    "MissRates",
    "NextLinePrefetch",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "StreamBuffers",
    "VictimCache",
    "default_l1_config",
    "default_l2_config",
    "default_llc_config",
    "make_mechanisms",
    "make_policy",
    "mechanism_names",
]
