"""Crash injection and post-recovery consistency checking."""

from repro.crashtest.checker import (
    SnapshotTracker,
    check_prefix_atomic,
    verify_map_integrity,
)
from repro.crashtest.injector import CrashInjector, CrashSignal, count_stores

#: Fuzzer exports resolve lazily (PEP 562) so ``python -m
#: repro.crashtest.fuzz`` does not import the module twice.
_FUZZ_EXPORTS = ("FuzzFailure", "FuzzStats", "run_backend_iteration",
                 "run_fuzz", "run_iteration")


def __getattr__(name):
    if name in _FUZZ_EXPORTS:
        from repro.crashtest import fuzz
        return getattr(fuzz, name)
    # PEP 562 requires AttributeError here for getattr()/hasattr().
    raise AttributeError(  # lint: ignore[typed-errors]
        "module %r has no attribute %r" % (__name__, name))


__all__ = [
    "CrashInjector",
    "CrashSignal",
    "FuzzFailure",
    "FuzzStats",
    "SnapshotTracker",
    "check_prefix_atomic",
    "count_stores",
    "run_backend_iteration",
    "run_fuzz",
    "run_iteration",
    "verify_map_integrity",
]
