"""Vector and linked list over a plain accessor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.libpax.allocator import PmAllocator
from repro.mem.accessor import OffsetAccessor, RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice
from repro.structures.linkedlist import PersistentList
from repro.structures.vector import PersistentVector

ARENA = 1 << 20


def fresh():
    space = AddressSpace()
    space.map_device(4096, MemoryDevice("m", ARENA))
    mem = OffsetAccessor(RawAccessor(space), 4096)
    return mem, PmAllocator.create(mem, ARENA)


class TestVector:
    def test_append_get(self):
        mem, alloc = fresh()
        vector = PersistentVector.create(mem, alloc, capacity=2)
        vector.append(10)
        vector.append(20)
        assert vector[0] == 10
        assert vector[1] == 20
        assert len(vector) == 2

    def test_growth(self):
        mem, alloc = fresh()
        vector = PersistentVector.create(mem, alloc, capacity=2)
        for value in range(100):
            vector.append(value)
        assert vector.to_list() == list(range(100))

    def test_setitem(self):
        mem, alloc = fresh()
        vector = PersistentVector.create(mem, alloc, capacity=4)
        vector.append(1)
        vector[0] = 42
        assert vector[0] == 42

    def test_bounds_checked(self):
        mem, alloc = fresh()
        vector = PersistentVector.create(mem, alloc, capacity=4)
        vector.append(1)
        with pytest.raises(IndexError):
            vector[1]
        with pytest.raises(IndexError):
            vector[-1]

    def test_pop(self):
        mem, alloc = fresh()
        vector = PersistentVector.create(mem, alloc, capacity=4)
        vector.append(5)
        assert vector.pop() == 5
        with pytest.raises(IndexError):
            vector.pop()

    def test_attach(self):
        mem, alloc = fresh()
        vector = PersistentVector.create(mem, alloc, capacity=4)
        vector.append(9)
        attached = PersistentVector.attach(mem, alloc, vector.root)
        assert attached.to_list() == [9]

    def test_attach_garbage_rejected(self):
        mem, alloc = fresh()
        with pytest.raises(ReproError):
            PersistentVector.attach(mem, alloc, 4096)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.one_of(
        st.tuples(st.just("append"), st.integers(0, 2**64 - 1)),
        st.tuples(st.just("pop"), st.just(0))), max_size=80))
    def test_matches_python_list(self, ops):
        mem, alloc = fresh()
        vector = PersistentVector.create(mem, alloc, capacity=1)
        model = []
        for kind, value in ops:
            if kind == "append":
                vector.append(value)
                model.append(value)
            elif model:
                assert vector.pop() == model.pop()
        assert vector.to_list() == model


class TestLinkedList:
    def test_push_pop_both_ends(self):
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        linked.push_back(2)
        linked.push_front(1)
        linked.push_back(3)
        assert linked.to_list() == [1, 2, 3]
        assert linked.pop_front() == 1
        assert linked.pop_back() == 3
        assert linked.to_list() == [2]

    def test_empty_pops_raise(self):
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        with pytest.raises(IndexError):
            linked.pop_front()
        with pytest.raises(IndexError):
            linked.pop_back()

    def test_single_element_edge(self):
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        linked.push_front(1)
        assert linked.pop_back() == 1
        assert len(linked) == 0
        linked.push_back(2)
        assert linked.pop_front() == 2

    def test_check_links_valid(self):
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        for value in range(20):
            linked.push_back(value)
        assert linked.check_links() == 20

    def test_check_links_detects_corruption(self):
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        linked.push_back(1)
        linked.push_back(2)
        # Corrupt the count.
        linked._hdr.set("count", 5)
        with pytest.raises(ReproError):
            linked.check_links()

    def test_attach(self):
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        linked.push_back(4)
        attached = PersistentList.attach(mem, alloc, linked.root)
        assert attached.to_list() == [4]

    def test_node_reuse_after_pop(self):
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        linked.push_back(1)
        bump_before = alloc.bump
        linked.pop_back()
        linked.push_back(2)
        assert alloc.bump == bump_before     # freed node reused

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["push_front", "push_back", "pop_front", "pop_back"]),
        st.integers(0, 1000)), max_size=80))
    def test_matches_python_deque(self, ops):
        from collections import deque
        mem, alloc = fresh()
        linked = PersistentList.create(mem, alloc)
        model = deque()
        for kind, value in ops:
            if kind == "push_front":
                linked.push_front(value)
                model.appendleft(value)
            elif kind == "push_back":
                linked.push_back(value)
                model.append(value)
            elif kind == "pop_front" and model:
                assert linked.pop_front() == model.popleft()
            elif kind == "pop_back" and model:
                assert linked.pop_back() == model.pop()
        assert linked.to_list() == list(model)
        linked.check_links()
