"""Shared benchmark configuration.

The benchmarks simulate a machine whose caches are scaled down ~8x so the
paper's cache-pressure regime (working set >> LLC) is reached with
workloads that run in seconds. Media latencies and bandwidths stay at
their real values; DESIGN.md §5 and EXPERIMENTS.md discuss the scaling.
"""

import os
import re

import pytest

from repro.baselines import make_backend
from repro.cache.cache import CacheConfig

#: Set by ``--obs-trace DIR``: every backend built by :func:`bench_backend`
#: then gets a fresh ``repro.obs`` tracer, and each test's events land in
#: ``DIR/<testname>.jsonl`` (written by the autouse fixture below).
_TRACE_DIR = None
_ACTIVE_TRACERS = []


def pytest_addoption(parser):
    parser.addoption(
        "--obs-trace", metavar="DIR", default=None,
        help="write one repro.obs JSONL trace per benchmark test into DIR")


def pytest_configure(config):
    global _TRACE_DIR
    _TRACE_DIR = config.getoption("--obs-trace")
    if _TRACE_DIR:
        os.makedirs(_TRACE_DIR, exist_ok=True)

#: Scaled cache geometry used by every throughput-style benchmark.
BENCH_CACHES = dict(
    l1_config=CacheConfig(size_bytes=8 * 1024, ways=4),
    l2_config=CacheConfig(size_bytes=64 * 1024, ways=8),
    llc_config=CacheConfig(size_bytes=256 * 1024, ways=16),
)

#: Working set / op counts matched to the scaled caches.
RECORDS = 40000
OPS = 5000
HEAP = 32 * 1024 * 1024


def bench_backend(name, **overrides):
    """Build a backend with benchmark-standard sizing."""
    kwargs = dict(heap_size=HEAP, capacity=1 << 14)
    if name in ("pax", "hybrid"):
        kwargs = dict(pool_size=HEAP, log_size=8 * 1024 * 1024,
                      capacity=1 << 14)
    kwargs.update(BENCH_CACHES)
    kwargs.update(overrides)
    backend = make_backend(name, **kwargs)
    if _TRACE_DIR:
        from repro.obs import ObsTracer
        _ACTIVE_TRACERS.append((name, ObsTracer().attach(backend)))
    return backend


@pytest.fixture(autouse=True)
def _obs_trace_dump(request):
    """Write the backends' trace events after each traced benchmark."""
    yield
    if not _TRACE_DIR or not _ACTIVE_TRACERS:
        _ACTIVE_TRACERS.clear()
        return
    from repro.obs.export import write_jsonl
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    path = os.path.join(_TRACE_DIR, stem + ".jsonl")
    with open(path, "w") as handle:
        write_jsonl((), handle)                  # header line only
        for backend_name, tracer in _ACTIVE_TRACERS:
            write_jsonl(tracer.events(), handle, header=False,
                        extra={"cell": backend_name})
    _ACTIVE_TRACERS.clear()


@pytest.fixture(scope="session")
def bench_records():
    return RECORDS
