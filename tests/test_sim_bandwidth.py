"""Bandwidth meter and fluid-model limiter."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.bandwidth import BandwidthLimiter, BandwidthMeter
from repro.sim.clock import SimClock


class TestMeter:
    def test_counts_bytes(self):
        meter = BandwidthMeter("m", SimClock())
        meter.record(100)
        meter.record(28)
        assert meter.bytes_moved == 128

    def test_achieved_rate(self):
        clock = SimClock()
        meter = BandwidthMeter("m", clock)
        meter.record(1000)
        clock.advance(1000)          # 1000 B in 1000 ns = 1 GB/s
        assert meter.achieved_bps() == pytest.approx(1e9)

    def test_no_time_no_rate(self):
        meter = BandwidthMeter("m", SimClock())
        meter.record(100)
        assert meter.achieved_bps() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthMeter("m", SimClock()).record(-1)


class TestLimiter:
    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigError):
            BandwidthLimiter("l", SimClock(), 0)

    def test_unloaded_transfer_has_no_delay(self):
        limiter = BandwidthLimiter("l", SimClock(), 1e9)
        assert limiter.submit(64) == 0.0

    def test_backlog_builds_queue_delay(self):
        limiter = BandwidthLimiter("l", SimClock(), 1e9)  # 1 B/ns
        limiter.submit(1000)
        delay = limiter.submit(64)
        assert delay == pytest.approx(1000.0)   # wait for 1000 B backlog

    def test_backlog_drains_with_time(self):
        clock = SimClock()
        limiter = BandwidthLimiter("l", clock, 1e9)
        limiter.submit(1000)
        clock.advance(600)
        assert limiter.backlog_bytes == pytest.approx(400.0)
        clock.advance(10_000)
        assert limiter.backlog_bytes == 0.0

    def test_service_time(self):
        limiter = BandwidthLimiter("l", SimClock(), 2e9)
        assert limiter.service_time_ns(128) == pytest.approx(64.0)

    def test_stall_statistics(self):
        limiter = BandwidthLimiter("l", SimClock(), 1e9)
        limiter.submit(100)
        limiter.submit(100)
        assert limiter.stats.get("stalled_transfers") == 1
