"""The lint engine: rule registry, suppression parsing, file walking.

Rules are plugins: a rule is a generator function taking a
:class:`LintContext` and yielding ``(lineno, col, message)`` tuples; the
:func:`rule` decorator registers it under a stable id. The engine owns
everything else — AST parsing, per-line ``# lint: ignore[rule]``
suppressions, path walking, and the CLI.
"""

import argparse
import ast
import json
import os
import re
import sys

from repro.errors import LintError

#: ``# lint: ignore`` or ``# lint: ignore[rule-a, rule-b]``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[a-z0-9\-_,\s]*)\])?")

#: Compound statements: a marker inside their (possibly huge) body must
#: not suppress findings on the header line, so statement-extent lookup
#: only indexes the simple statements.
_COMPOUND_STMTS = (
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.If, ast.For,
    ast.AsyncFor, ast.While, ast.With, ast.AsyncWith, ast.Try,
)

_RULES = {}


class Rule:
    """One registered rule: an id, a one-line summary, and a checker."""

    __slots__ = ("rule_id", "summary", "check")

    def __init__(self, rule_id, summary, check):
        self.rule_id = rule_id
        self.summary = summary
        self.check = check


def rule(rule_id, summary):
    """Decorator registering ``func`` as the checker for ``rule_id``.

    ``func(ctx)`` receives a :class:`LintContext` and yields
    ``(lineno, col, message)`` findings. Registering the same id twice is
    a programming error and raises :class:`~repro.errors.LintError`.
    """
    if not re.fullmatch(r"[a-z][a-z0-9\-]*", rule_id):
        raise LintError("rule id %r must be kebab-case" % (rule_id,))

    def decorator(func):
        if rule_id in _RULES:
            raise LintError("duplicate lint rule id %r" % (rule_id,))
        _RULES[rule_id] = Rule(rule_id, summary, func)
        return func
    return decorator


def all_rules():
    """The registered catalogue as ``{rule_id: Rule}`` (a copy)."""
    return dict(_RULES)


class LintFinding:
    """One located finding: file, position, rule id, message."""

    __slots__ = ("path", "lineno", "col", "rule_id", "message",
                 "properties")

    def __init__(self, path, lineno, col, rule_id, message,
                 properties=None):
        self.path = path
        self.lineno = lineno
        self.col = col
        self.rule_id = rule_id
        self.message = message
        #: Optional extra facts (e.g. the witness verdict); emitted as
        #: the SARIF result property bag and extra JSON keys when set.
        self.properties = properties

    def render(self):
        """``path:line:col: rule-id message`` (editor-clickable)."""
        return "%s:%d:%d: %s %s" % (self.path, self.lineno, self.col,
                                    self.rule_id, self.message)

    def __repr__(self):
        return "LintFinding(%s)" % self.render()


class LintContext:
    """Everything a rule checker may inspect about one file."""

    def __init__(self, path, source, tree):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: Path normalized to forward slashes, for module-scope predicates.
        self.norm_path = path.replace(os.sep, "/")

    def in_package(self, *suffixes):
        """True if this file lives at one of ``suffixes`` inside the
        ``repro`` package (e.g. ``"pm/"`` or ``"sim/rng.py"``)."""
        marker = "/repro/"
        index = self.norm_path.rfind(marker)
        if index < 0:
            if self.norm_path.startswith("repro/"):
                relative = self.norm_path[len("repro/"):]
            else:
                return False
        else:
            relative = self.norm_path[index + len(marker):]
        return any(relative == s or relative.startswith(s) for s in suffixes)


def _suppressed_rules(line):
    """Return None (no marker), "all", or a set of suppressed rule ids."""
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    listed = match.group("rules")
    if listed is None or not listed.strip():
        return "all"
    return {item.strip() for item in listed.split(",") if item.strip()}


def iter_function_nodes(tree):
    """Yield every function-like node: defs, async defs, and lambdas.

    ``ast.walk`` order, so nested functions, methods of nested classes,
    and lambdas buried in expressions are all visited — rules that scope
    per-function must use this rather than scanning top-level bodies.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node


class SuppressionIndex:
    """Per-file ``# lint: ignore`` lookup, aware of multi-line statements.

    A finding is anchored to the line its AST node *starts* on, but the
    human editing the file naturally appends the marker to the line they
    are looking at — which for a wrapped call or a parenthesised
    expression may be the statement's *last* line. The index therefore
    honours a marker on the finding line itself, or on the first or last
    line of the smallest *simple* statement enclosing it. Compound
    statements (def/if/try/...) are excluded so a marker deep inside a
    body cannot blanket-suppress its header.
    """

    def __init__(self, lines, tree=None):
        self._lines = lines
        self._extents = []
        if tree is not None:
            for node in ast.walk(tree):
                if isinstance(node, ast.stmt) \
                        and not isinstance(node, _COMPOUND_STMTS):
                    end = getattr(node, "end_lineno", None) or node.lineno
                    if end > node.lineno:
                        self._extents.append((node.lineno, end))

    def _marker_lines(self, lineno):
        """Line numbers whose marker may suppress a finding at ``lineno``."""
        lines = {lineno}
        best = None
        for start, end in self._extents:
            if start <= lineno <= end:
                if best is None or (end - start) < (best[1] - best[0]):
                    best = (start, end)
        if best is not None:
            lines.update(best)
        return lines

    def suppressed(self, lineno, rule_id):
        """True if ``rule_id`` is suppressed for a finding at ``lineno``."""
        for line_no in self._marker_lines(lineno):
            if not 0 < line_no <= len(self._lines):
                continue
            marks = _suppressed_rules(self._lines[line_no - 1])
            if marks == "all" or (marks is not None and rule_id in marks):
                return True
        return False


#: Version of the ``--json`` payload (shared by repro.lint and
#: repro.staticcheck); bumped on incompatible shape changes.
JSON_SCHEMA_VERSION = 1


def findings_to_json(findings):
    """Serialize findings as a schema-tagged JSON object.

    The payload is ``{"schema": 1, "findings": [...]}`` so consumers can
    detect shape changes instead of silently misparsing them.
    """
    entries = []
    for finding in findings:
        entry = {"path": finding.path, "line": finding.lineno,
                 "col": finding.col, "rule": finding.rule_id,
                 "message": finding.message}
        # Extra keys only when a pass attached them — the base shape
        # stays exactly five keys for existing consumers.
        properties = getattr(finding, "properties", None)
        if properties:
            entry.update(properties)
        entries.append(entry)
    return json.dumps(
        {"schema": JSON_SCHEMA_VERSION, "findings": entries},
        indent=2)


#: SARIF version emitted by ``--format sarif`` (shared by repro.lint
#: and repro.staticcheck); the minimal subset GitHub code scanning
#: ingests for inline annotations.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def findings_to_sarif(findings, tool_name, rules=None):
    """Serialize findings as a SARIF 2.1.0 log (one run).

    ``rules`` maps rule ids to one-line summaries for the tool's rule
    catalogue; ids seen only in findings are added with no summary.
    Columns are 0-based internally but SARIF is 1-based, hence the +1.
    """
    catalogue = dict(rules or {})
    for finding in findings:
        catalogue.setdefault(finding.rule_id, "")
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace(os.sep, "/"),
                    },
                    "region": {
                        "startLine": finding.lineno,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        properties = getattr(finding, "properties", None)
        if properties:
            result["properties"] = dict(properties)
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "rules": [
                    {"id": rule_id,
                     "shortDescription": {"text": summary or rule_id}}
                    for rule_id, summary in sorted(catalogue.items())
                ],
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)


def render_findings(findings, fmt, tool_name, rules=None):
    """One findings payload in ``fmt``: "text", "json", or "sarif"."""
    if fmt == "json":
        return findings_to_json(findings)
    if fmt == "sarif":
        return findings_to_sarif(findings, tool_name, rules=rules)
    if fmt != "text":
        raise LintError("unknown output format %r" % (fmt,))
    return "\n".join(finding.render() for finding in findings)


def lint_source(path, source, selected=None):
    """Lint one source string; returns a list of :class:`LintFinding`.

    ``selected`` restricts the run to an iterable of rule ids (all
    registered rules when None). Unknown ids raise
    :class:`~repro.errors.LintError`. Syntax errors are reported as a
    finding under the pseudo-rule ``parse-error`` rather than raised, so
    one broken file cannot hide the rest of the tree's findings.
    """
    rules = _select(selected)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 1, exc.offset or 0,
                            "parse-error", str(exc.msg))]
    ctx = LintContext(path, source, tree)
    suppressions = SuppressionIndex(ctx.lines, tree)
    findings = []
    for rule_obj in rules:
        for lineno, col, message in rule_obj.check(ctx):
            if suppressions.suppressed(lineno, rule_obj.rule_id):
                continue
            findings.append(
                LintFinding(path, lineno, col, rule_obj.rule_id, message))
    findings.sort(key=lambda f: (f.lineno, f.col, f.rule_id))
    return findings


def _select(selected):
    if selected is None:
        return list(_RULES.values())
    chosen = []
    for rule_id in selected:
        if rule_id not in _RULES:
            raise LintError("unknown lint rule %r (have %s)"
                            % (rule_id, ", ".join(sorted(_RULES))))
        chosen.append(_RULES[rule_id])
    return chosen


def iter_python_files(paths):
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            raise LintError("no such file or directory: %r" % (path,))


def run_paths(paths, selected=None):
    """Lint every Python file under ``paths``; returns all findings."""
    findings = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(filename, source, selected=selected))
    return findings


def main(argv=None):
    """CLI entry point; exit code 0 clean, 1 findings, 2 usage error."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static persistency/project lint over Python sources.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", action="append", metavar="RULE",
                        help="run only this rule id (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a schema-tagged JSON object "
                             "on stdout (same as --format json)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None,
                        help="output format (default text; sarif suits "
                             "CI annotation upload)")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, rule_obj in sorted(all_rules().items()):
            print("%-18s %s" % (rule_id, rule_obj.summary))
        return 0
    fmt = args.format or ("json" if args.json else "text")
    try:
        findings = run_paths(args.paths or ["src"], selected=args.select)
    except LintError as exc:
        print("lint: error: %s" % exc, file=sys.stderr)
        return 2
    rendered = render_findings(
        findings, fmt, "repro.lint",
        rules={rid: r.summary for rid, r in all_rules().items()})
    if rendered or fmt != "text":
        print(rendered)
    if findings:
        print("lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0
