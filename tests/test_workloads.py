"""Workload generators: key sequences, traces, YCSB mixes."""

import pytest

from repro.errors import ConfigError
from repro.workloads.keys import KeySequence, KeySpace
from repro.workloads.trace import (
    Op,
    apply_trace,
    expected_state,
    interleave_persists,
)
from repro.workloads.ycsb import MIXES, YcsbWorkload


class TestKeySpace:
    def test_keys_distinct(self):
        space = KeySpace(1000)
        keys = space.all_keys()
        assert len(set(keys)) == 1000

    def test_scramble_separates_neighbours(self):
        space = KeySpace(10)
        assert abs(space.key(1) - space.key(0)) > 1000

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            KeySpace(0)


class TestKeySequence:
    def test_sequential_cycles(self):
        seq = KeySequence(3, "sequential")
        space = KeySpace(3)
        assert seq.take(6) == [space.key(0), space.key(1), space.key(2)] * 2

    def test_uniform_stays_in_space(self):
        seq = KeySequence(100, "uniform", seed=1)
        valid = set(KeySpace(100).all_keys())
        assert all(key in valid for key in seq.take(500))

    def test_zipfian_skews(self):
        from collections import Counter
        seq = KeySequence(1000, "zipfian", seed=2)
        counts = Counter(seq.take(5000))
        assert counts.most_common(1)[0][1] > 5000 / 1000 * 5

    def test_deterministic(self):
        assert KeySequence(50, "uniform", seed=9).take(20) == \
            KeySequence(50, "uniform", seed=9).take(20)

    def test_unknown_distribution(self):
        with pytest.raises(ConfigError):
            KeySequence(10, "pareto")


class TestTrace:
    def test_op_validation(self):
        with pytest.raises(ConfigError):
            Op("scan", 1)

    def test_expected_state(self):
        trace = [Op("put", 1, 10), Op("put", 2, 20), Op("remove", 1),
                 Op("get", 2), Op("persist")]
        assert expected_state(trace) == {2: 20}

    def test_interleave_persists(self):
        trace = [Op("put", key, key) for key in range(5)]
        out = interleave_persists(trace, group_size=2)
        kinds = [op.kind for op in out]
        assert kinds == ["put", "put", "persist", "put", "put", "persist",
                         "put", "persist"]

    def test_interleave_ignores_reads(self):
        trace = [Op("get", 1), Op("get", 2), Op("put", 1, 1)]
        out = interleave_persists(trace, group_size=1)
        assert [op.kind for op in out] == ["get", "get", "put", "persist"]

    def test_interleave_bad_group(self):
        with pytest.raises(ConfigError):
            interleave_persists([], 0)

    def test_apply_trace(self):
        class Recorder:
            def __init__(self):
                self.calls = []

            def put(self, key, value):
                self.calls.append(("put", key))

            def get(self, key):
                self.calls.append(("get", key))

            def remove(self, key):
                self.calls.append(("remove", key))

            def persist(self):
                self.calls.append(("persist", None))

        recorder = Recorder()
        count = apply_trace(recorder, [Op("put", 1, 1), Op("get", 1),
                                       Op("remove", 1), Op("persist")])
        assert count == 4
        assert [c[0] for c in recorder.calls] == ["put", "get", "remove",
                                                  "persist"]


class TestTraceFiles:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.workloads.trace import load_trace, save_trace
        trace = [Op("put", 1, 10), Op("get", 1), Op("remove", 1),
                 Op("persist")]
        path = str(tmp_path / "t.jsonl")
        assert save_trace(trace, path) == 4
        assert load_trace(path) == trace

    def test_load_skips_blank_lines(self, tmp_path):
        from repro.workloads.trace import load_trace
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "put", "key": 1, "value": 2}\n\n')
        assert load_trace(path) == [Op("put", 1, 2)]

    def test_load_rejects_garbage(self, tmp_path):
        from repro.workloads.trace import load_trace
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write("not json\n")
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_saved_trace_replays_identically(self, tmp_path):
        from repro.workloads.trace import load_trace, save_trace
        workload = YcsbWorkload(mix="A", record_count=30, op_count=60,
                                seed=4)
        trace = workload.run_trace()
        path = str(tmp_path / "ycsb.jsonl")
        save_trace(trace, path)
        assert expected_state(load_trace(path)) == expected_state(trace)


class TestYcsb:
    def test_all_mixes_generate(self):
        for mix in MIXES:
            workload = YcsbWorkload(mix=mix, record_count=50, op_count=100,
                                    seed=3)
            load = workload.load_trace()
            run = workload.run_trace()
            assert len(load) == 50
            assert len(run) >= 100

    def test_mix_c_is_read_only(self):
        workload = YcsbWorkload(mix="C", record_count=50, op_count=200)
        assert all(op.kind == "get" for op in workload.run_trace())

    def test_mix_w_is_write_only(self):
        workload = YcsbWorkload(mix="W", record_count=50, op_count=200)
        assert all(op.kind == "put" for op in workload.run_trace())

    def test_mix_a_roughly_half_writes(self):
        workload = YcsbWorkload(mix="A", record_count=50, op_count=1000)
        ops = workload.run_trace()
        writes = sum(1 for op in ops if op.kind == "put")
        assert 0.35 < writes / len(ops) < 0.65

    def test_fractions_sum_to_one(self):
        for mix, fractions in MIXES.items():
            assert sum(fractions) == pytest.approx(1.0), mix

    def test_unknown_mix(self):
        with pytest.raises(ConfigError):
            YcsbWorkload(mix="Z")

    def test_deterministic(self):
        a = YcsbWorkload(mix="A", record_count=20, op_count=50, seed=7)
        b = YcsbWorkload(mix="A", record_count=20, op_count=50, seed=7)
        assert a.run_trace() == b.run_trace()
