"""The staticcheck CLI: the 0/1/2 exit-code contract it shares with
repro.lint, --json output, the baseline workflow, and — the acceptance
criterion — that the real tree is clean against the committed baseline."""

import json
import os

from repro.lint import main as lint_main
from repro.staticcheck import main, path_key

import repro

SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "staticcheck-baseline.txt")

UNGATED = (
    "class S:\n"
    "    def put(self, k, v):\n"
    "        self._mem.write_u64(k, v)\n"
)


def dirty_file(tmp_path):
    """An ungated store in a ``structures/`` package (in checker scope)."""
    pkg = tmp_path / "structures"
    pkg.mkdir(exist_ok=True)
    target = pkg / "bad.py"
    target.write_text(UNGATED)
    return target


def clean_file(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("def f(x):\n    return x\n")
    return target


# -- exit codes -------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    clean = clean_file(tmp_path)
    dirty = dirty_file(tmp_path)

    assert main(["--no-baseline", str(clean)]) == 0
    assert main(["--no-baseline", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:3:" in out and "persist-order" in out
    assert main(["--select", "no-such-checker", str(clean)]) == 2
    assert main(["--no-baseline", str(tmp_path / "missing.py")]) == 2


def test_exit_code_contract_is_shared_with_lint(tmp_path, capsys):
    """Both tools: 0 clean, 1 findings, 2 usage error."""
    static_clean = clean_file(tmp_path)
    static_dirty = dirty_file(tmp_path)
    lint_dirty = tmp_path / "lint_dirty.py"
    lint_dirty.write_text("def f():\n    raise ValueError('x')\n")

    for tool, clean, dirty, bad_flag in (
            (lint_main, static_clean, lint_dirty,
             ["--select", "no-such-rule"]),
            (lambda argv: main(["--no-baseline"] + argv),
             static_clean, static_dirty,
             ["--select", "no-such-checker"])):
        assert tool([str(clean)]) == 0
        assert tool([str(dirty)]) == 1
        assert tool(bad_flag + [str(clean)]) == 2
    capsys.readouterr()


def test_cli_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    assert "persist-order" in out
    assert "det-taint" in out
    assert "pm-escape" in out


# -- JSON output ------------------------------------------------------------

def test_cli_json_findings(tmp_path, capsys):
    dirty = dirty_file(tmp_path)
    assert main(["--json", "--no-baseline", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    assert len(payload["findings"]) == 1
    entry = payload["findings"][0]
    assert sorted(entry) == ["col", "line", "message", "path", "rule"]
    assert entry["rule"] == "persist-order"
    assert entry["line"] == 3


def test_cli_json_empty_findings_when_clean(tmp_path, capsys):
    clean = clean_file(tmp_path)
    assert main(["--json", "--no-baseline", str(clean)]) == 0
    assert json.loads(capsys.readouterr().out) == {"schema": 1,
                                                   "findings": []}


# -- baseline workflow ------------------------------------------------------

def test_baseline_roundtrip_accepts_then_catches_regressions(tmp_path,
                                                             capsys):
    dirty = dirty_file(tmp_path)
    baseline = tmp_path / "baseline.txt"

    assert main(["--write-baseline", "--baseline", str(baseline),
                 str(dirty)]) == 0
    assert "TODO" in baseline.read_text()  # unjustified entries are marked

    assert main(["--baseline", str(baseline), str(dirty)]) == 0
    assert "baseline-accepted" in capsys.readouterr().err

    # A second violation goes beyond the accepted count: CI must fail.
    dirty.write_text(UNGATED + (
        "    def stamp(self, k):\n"
        "        self._mem.write_u64(0, k)\n"
    ))
    assert main(["--baseline", str(baseline), str(dirty)]) == 1
    capsys.readouterr()


def test_baseline_stale_entries_are_reported(tmp_path, capsys):
    dirty = dirty_file(tmp_path)
    baseline = tmp_path / "baseline.txt"
    key = path_key(str(dirty))
    baseline.write_text("# shrunk since\n%s persist-order 5\n" % key)
    assert main(["--baseline", str(baseline), str(dirty)]) == 0
    assert "unused slot" in capsys.readouterr().err


def test_no_baseline_flag_reports_everything(tmp_path, capsys):
    dirty = dirty_file(tmp_path)
    baseline = tmp_path / "baseline.txt"
    assert main(["--write-baseline", "--baseline", str(baseline),
                 str(dirty)]) == 0
    assert main(["--no-baseline", "--baseline", str(baseline),
                 str(dirty)]) == 1
    capsys.readouterr()


# -- the tree itself --------------------------------------------------------

def test_real_tree_is_clean_against_committed_baseline(capsys):
    # The committed baseline records the *interprocedural* findings: the
    # backend entries the per-function checker needed are discharged by
    # callee summaries, so per-function runs use --no-baseline instead.
    assert main([SRC_REPRO, "--interprocedural", "--no-cache",
                 "--baseline", BASELINE]) == 0
    capsys.readouterr()


def test_committed_baseline_is_fully_justified():
    with open(BASELINE, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert "TODO" not in text
    # Every entry line has a justification comment directly above it.
    lines = text.splitlines()
    for index, line in enumerate(lines):
        if line and not line.startswith("#"):
            assert index > 0 and lines[index - 1].startswith("#"), line
