"""The coherence directory: exclusivity invariants."""

import pytest

from repro.cache.coherence import Directory
from repro.cache.line import MesiState
from repro.errors import ProtocolError


class TestStates:
    def test_untracked_is_invalid(self):
        directory = Directory()
        assert directory.state(0x40, 0) == MesiState.INVALID

    def test_shared_by_many(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.SHARED)
        directory.set_state(0x40, 1, MesiState.SHARED)
        assert sorted(directory.sharers(0x40)) == [0, 1]
        assert directory.owner(0x40) is None

    def test_modified_excludes_others(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.SHARED)
        with pytest.raises(ProtocolError):
            directory.set_state(0x40, 1, MesiState.MODIFIED)

    def test_shared_grant_blocked_while_owned(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.MODIFIED)
        with pytest.raises(ProtocolError):
            directory.set_state(0x40, 1, MesiState.SHARED)

    def test_owner_can_downgrade_itself(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.MODIFIED)
        directory.set_state(0x40, 0, MesiState.SHARED)
        assert directory.owner(0x40) is None

    def test_owner_detects_exclusive_too(self):
        directory = Directory()
        directory.set_state(0x40, 2, MesiState.EXCLUSIVE)
        assert directory.owner(0x40) == 2

    def test_upgrade_in_place(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.EXCLUSIVE)
        directory.set_state(0x40, 0, MesiState.MODIFIED)
        assert directory.state(0x40, 0) == MesiState.MODIFIED


class TestDrop:
    def test_drop_removes_sharer(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.SHARED)
        directory.set_state(0x40, 1, MesiState.SHARED)
        directory.drop(0x40, 0)
        assert directory.sharers(0x40) == [1]

    def test_last_drop_removes_entry(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.SHARED)
        directory.drop(0x40, 0)
        assert len(directory) == 0
        assert directory.entry(0x40) is None

    def test_set_invalid_is_drop(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.SHARED)
        directory.set_state(0x40, 0, MesiState.INVALID)
        assert directory.state(0x40, 0) == MesiState.INVALID

    def test_drop_unknown_is_noop(self):
        Directory().drop(0x40, 0)

    def test_clear(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.SHARED)
        directory.clear()
        assert len(directory) == 0

    def test_lines_held(self):
        directory = Directory()
        directory.set_state(0x40, 0, MesiState.SHARED)
        directory.set_state(0x80, 1, MesiState.MODIFIED)
        assert sorted(directory.lines_held()) == [0x40, 0x80]
