"""Every backend: functional interface, scheme-specific behaviours."""

import pytest

from repro.baselines import make_backend
from repro.errors import ConfigError
from tests.conftest import small_cache_kwargs

ALL_BACKENDS = ["dram", "pm_direct", "pmdk", "redo", "compiler",
                "mprotect", "pax"]
CONSISTENT = ["pmdk", "redo", "compiler", "mprotect", "pax"]


def build(name, **kwargs):
    defaults = dict(heap_size=4 * 1024 * 1024, capacity=64)
    defaults.update(small_cache_kwargs())
    if name == "pax":
        defaults = dict(pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                        capacity=64)
        defaults.update(small_cache_kwargs())
    defaults.update(kwargs)
    return make_backend(name, **defaults)


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestFunctional:
    def test_put_get_remove(self, name):
        backend = build(name)
        backend.put(1, 10)
        backend.put(2, 20)
        assert backend.get(1) == 10
        assert backend.remove(1)
        assert backend.get(1) is None
        assert len(backend) == 1

    def test_many_ops(self, name):
        backend = build(name)
        for key in range(150):
            backend.put(key, key * 2)
        backend.persist()
        assert backend.to_dict() == {key: key * 2 for key in range(150)}

    def test_time_advances(self, name):
        backend = build(name)
        before = backend.now_ns
        backend.put(1, 1)
        assert backend.now_ns > before


class TestRelativeCosts:
    """The cost orderings the paper's Figure 2 is built on."""

    def run_workload(self, name, ops=150):
        backend = build(name)
        start = backend.now_ns
        for key in range(ops):
            backend.put(key, key)
        backend.persist()
        return backend.now_ns - start

    def test_dram_fastest(self):
        dram = self.run_workload("dram")
        for other in ("pm_direct", "pmdk", "compiler"):
            assert dram < self.run_workload(other)

    def test_pm_direct_beats_pmdk(self):
        # Paper §5: PM Direct ~2x PMDK (no logging, no fences).
        assert self.run_workload("pm_direct") < self.run_workload("pmdk")

    def test_pmdk_beats_compiler_pass(self):
        # Paper §2: per-store fencing costs more than batched commits.
        assert self.run_workload("pmdk") < self.run_workload("compiler")

    def test_pax_beats_pmdk(self):
        # The paper's optimism: async logging + group commit beats
        # synchronous per-op WAL.
        assert self.run_workload("pax") < self.run_workload("pmdk")


class TestSchemeSpecific:
    def test_pmdk_counts_fences(self):
        backend = build("pmdk")
        backend.put(1, 1)
        assert backend.sfence_count > 0
        assert backend.wal_bytes > 0

    def test_compiler_fences_more_than_pmdk(self):
        pmdk = build("pmdk")
        comp = build("compiler")
        for key in range(50):
            pmdk.put(key, key)
            comp.put(key, key)
        assert comp.sfence_count > pmdk.sfence_count

    def test_mprotect_faults_once_per_page_per_epoch(self):
        backend = build("mprotect")
        backend.put(1, 1)
        faults_after_first = backend.fault_count
        assert faults_after_first > 0
        backend.put(1, 2)          # same pages: no new faults
        assert backend.fault_count == faults_after_first
        backend.persist()          # re-protects
        backend.put(1, 3)
        assert backend.fault_count > faults_after_first

    def test_mprotect_page_log_amplification(self):
        backend = build("mprotect")
        backend.put(1, 1)
        # One touched page costs > 4 KiB of log.
        assert backend.log_bytes >= 4096

    def test_pax_persist_resets_log(self):
        backend = build("pax")
        backend.put(1, 1)
        backend.persist()
        assert backend.pool.undo_log_entries == 0
        assert backend.committed_epoch >= 1

    def test_pax_device_sees_first_store_only(self):
        backend = build("pax")
        backend.put(1, 1)
        device = backend.machine.device
        logged_once = device.stats.get("lines_logged")
        backend.put(1, 2)           # same lines, still same epoch
        assert device.stats.get("lines_logged") == logged_once

    def test_dram_restart_loses_all(self):
        backend = build("dram")
        backend.put(1, 1)
        backend.crash()
        backend.restart()
        assert len(backend) == 0

    def test_make_backend_unknown(self):
        with pytest.raises(ConfigError):
            make_backend("optane")

    def test_redo_reads_own_writes_in_tx(self):
        # The overlay must serve the transaction's own uncommitted data;
        # a resize inside put() depends on it.
        backend = build("redo")
        for key in range(200):        # forces several resizes
            backend.put(key, key)
        assert backend.to_dict() == {key: key for key in range(200)}
