"""Whole-program interprocedural staticcheck: function summaries over
the call graph (SCC fixpoints), discharge of per-function findings that
callees/callers prove safe, the incremental summary cache, the baseline
orphan rule, and trace-grounded witnesses."""

import json
import os
import textwrap

import pytest

from repro.errors import LintError
from repro.lint.engine import LintFinding, findings_to_json, findings_to_sarif
from repro.replay.format import (
    PERSIST,
    RAW_WRITE,
    STORE,
    WAL_APPEND,
    WAL_RESET,
    Trace,
)
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.callgraph import ProjectIndex, module_key
from repro.staticcheck.engine import run_interproc, run_paths
from repro.staticcheck.witness import apply_witnesses, unsafe_store_count


def write_tree(tmp_path, files):
    """Materialize ``{relpath: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return str(tmp_path)


def interproc_run(tmp_path, files, **kwargs):
    """Write the tree and run the interprocedural pipeline over it."""
    root = write_tree(tmp_path, files)
    kwargs.setdefault("use_cache", False)
    return run_interproc([root], **kwargs)


def keys_of(findings):
    return sorted((module_key(f.path), f.lineno, f.rule_id)
                  for f in findings)


def build_index(tmp_path, files):
    root = write_tree(tmp_path, files)
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as handle:
                    sources.append((path, handle.read()))
    return ProjectIndex.build(sources)


# -- callgraph regressions: aliases and partial ------------------------------

def test_aliased_from_import_resolves_to_original_name(tmp_path):
    index = build_index(tmp_path, {
        "repro/structures/helpers.py": """
            def gate_all(x):
                return x
        """,
        "repro/structures/user.py": """
            from repro.structures.helpers import gate_all as g

            def run():
                return g(1)
        """,
    })
    user = index.modules["repro.structures.user"]
    (descriptor,) = user.functions["run"].calls
    assert descriptor == ("import", "repro.structures.helpers", "gate_all")
    resolved = index.resolve(user, descriptor)
    assert resolved is not None
    assert resolved.qualname == "gate_all"


def test_module_alias_attribute_call_resolves(tmp_path):
    index = build_index(tmp_path, {
        "repro/structures/gates.py": """
            def open_tx():
                return 1
        """,
        "repro/structures/user.py": """
            import repro.structures.gates as gz

            def run():
                return gz.open_tx()
        """,
    })
    user = index.modules["repro.structures.user"]
    (descriptor,) = user.functions["run"].calls
    assert descriptor == ("import", "repro.structures.gates", "open_tx")
    assert index.resolve(user, descriptor).qualname == "open_tx"


def test_functools_partial_name_alias_routes_to_wrapped(tmp_path):
    index = build_index(tmp_path, {
        "repro/structures/user.py": """
            from functools import partial

            def base(x, y):
                return x + y

            bound = partial(base, 1)

            def run():
                return bound(2)
        """,
    })
    user = index.modules["repro.structures.user"]
    (descriptor,) = user.functions["run"].calls
    assert descriptor == ("local", "base")
    assert index.resolve(user, descriptor).qualname == "base"


def test_functools_partial_self_attr_routes_to_method(tmp_path):
    index = build_index(tmp_path, {
        "repro/structures/user.py": """
            import functools

            class S:
                def __init__(self):
                    self._hook = functools.partial(self._impl, 1)

                def _impl(self, n, k):
                    return n + k

                def run(self, k):
                    return self._hook(k)
        """,
    })
    user = index.modules["repro.structures.user"]
    calls = user.functions["S.run"].calls
    assert ("attr", "_impl", "self") in calls


# -- SCC / fixpoint edge cases ----------------------------------------------

def test_mutual_recursion_converges_without_fabricated_gates(tmp_path):
    findings, _names, _stats = interproc_run(tmp_path, {
        "repro/structures/rec.py": """
            class S:
                def alpha(self, n):
                    if n:
                        self.beta(n - 1)
                    self._mem.write_u64(n, n)

                def beta(self, n):
                    if n:
                        self.alpha(n - 1)
                    self._mem.write_u64(n, n)
        """,
    })
    # Neither accessor opens a gate; the cycle must not talk itself
    # into one. Both stores stay findings.
    assert len(findings) == 2


def test_summary_gains_gate_across_scc_iterations(tmp_path):
    # alpha's store is only provably gated once beta's must-open summary
    # exists — and alpha/beta sit in one SCC, so the first iteration
    # (alphabetical order) summarizes alpha before beta. Only the
    # fixpoint re-run discharges the store.
    findings, _names, stats = interproc_run(tmp_path, {
        "repro/structures/cycle.py": """
            class S:
                def alpha(self, n):
                    self.beta(n)
                    self._mem.write_u64(n, n)

                def beta(self, n):
                    self.wal.begin()
                    if n > 100:
                        self.alpha(n - 1)
        """,
    })
    assert findings == []


def test_recursive_cycle_through_except_edge_terminates(tmp_path):
    findings, _names, _stats = interproc_run(tmp_path, {
        "repro/structures/exc.py": """
            class S:
                def flaky(self, n):
                    self.wal.begin()
                    try:
                        self._mem.write_u64(n, n)
                    except ValueError:
                        self.flaky(n - 1)
        """,
    })
    # The store is dominated by begin(); the handler's recursive call
    # runs with gates cleared but stores nothing. No findings, and the
    # except-edge cycle must not loop the fixpoint forever.
    assert findings == []


# -- discharge rules ---------------------------------------------------------

def test_store_verb_call_defers_to_checked_callee_body(tmp_path):
    files = {
        "repro/structures/defer.py": """
            class S:
                def put(self, k, v):
                    self._write(k, v)

                def _write(self, k, v):
                    self.wal.begin()
                    self._mem.write_u64(k, v)
        """,
    }
    per_function = run_paths([write_tree(tmp_path, files)])
    assert len(per_function) == 1          # the self._write(...) call
    findings, _names, _stats = run_interproc([str(tmp_path)],
                                             use_cache=False)
    assert findings == []                  # analyzed in the callee body


def test_callee_must_open_gate_covers_caller_store(tmp_path):
    files = {
        "repro/structures/opener.py": """
            class S:
                def put(self, k, v):
                    self._enter()
                    self._mem.write_u64(k, v)

                def _enter(self):
                    self.wal.begin()
        """,
    }
    per_function = run_paths([write_tree(tmp_path, files)])
    assert len(per_function) == 1
    findings, _names, _stats = run_interproc([str(tmp_path)],
                                             use_cache=False)
    assert findings == []


def test_mechanism_class_discharge(tmp_path):
    findings, _names, stats = interproc_run(tmp_path, {
        "repro/structures/mech.py": """
            class TxLog:
                def begin(self):
                    self._open = True

                def commit(self):
                    self._open = False

                def apply(self, k, v):
                    self._mem.write_u64(k, v)
        """,
    })
    assert findings == []
    assert stats["discharged"] == 1


def test_lifecycle_discharge_is_limited_to_baselines(tmp_path):
    lifecycle = """
        class MyBackend(KvBackend):
            def restart(self):
                self._mem.write_u64(0, 0)
    """
    # In baselines/, restart() owns the medium during recovery.
    findings, _names, _stats = interproc_run(tmp_path, {
        "repro/baselines/b.py": lifecycle,
    })
    assert findings == []
    # The identical code in structures/ keeps its finding: the
    # lifecycle argument is a backend-recovery property.
    findings2, _names2, _stats2 = interproc_run(tmp_path / "other", {
        "repro/structures/b.py": lifecycle,
    })
    assert len(findings2) == 1


def test_gated_context_discharges_helper_stores(tmp_path):
    files = {
        "repro/structures/ctx.py": """
            class S:
                def put(self, k, v):
                    self.wal.begin()
                    self._update(k, v)

                def insert(self, k, v):
                    self.wal.begin()
                    self._update(k, v)

                def _update(self, k, v):
                    self._mem.write_u64(k, v)
        """,
    }
    per_function = run_paths([write_tree(tmp_path, files)])
    assert len(per_function) == 1          # _update's bare store
    findings, _names, _stats = run_interproc([str(tmp_path)],
                                             use_cache=False)
    assert findings == []


def test_unprotected_caller_keeps_helper_finding_with_call_path(tmp_path):
    findings, _names, _stats = interproc_run(tmp_path, {
        "repro/structures/open_door.py": """
            class S:
                def put(self, k, v):
                    self._update(k, v)

                def _update(self, k, v):
                    self._mem.write_u64(k, v)
        """,
    })
    assert len(findings) == 1
    assert "[call path:" in findings[0].message
    assert "S.put" in findings[0].message


def test_interproc_findings_are_subset_of_per_function(tmp_path):
    files = {
        "repro/structures/mix.py": """
            class S:
                def good(self, k, v):
                    self._enter()
                    self._mem.write_u64(k, v)

                def bad(self, k, v):
                    self._mem.write_u64(k, v)

                def _enter(self):
                    self.wal.begin()
        """,
    }
    per_function = run_paths([write_tree(tmp_path, files)])
    findings, _names, _stats = run_interproc([str(tmp_path)],
                                             use_cache=False)
    assert set(keys_of(findings)) <= set(keys_of(per_function))
    assert len(findings) == 1              # only bad() survives


def test_seeded_fixtures_fire_in_both_modes():
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures", "staticcheck")
    per_function = run_paths([root])
    findings, _names, _stats = run_interproc([root], use_cache=False)
    # Zero new false negatives: whole-program mode keeps every seeded
    # violation (messages may gain call-path suffixes).
    assert keys_of(findings) == keys_of(per_function)
    assert findings


# -- the summary cache -------------------------------------------------------

CACHED_TREE = {
    "repro/structures/low.py": """
        def leaf(x):
            return x + 1
    """,
    "repro/structures/mid.py": """
        from repro.structures.low import leaf

        def relay(x):
            return leaf(x)
    """,
    "repro/structures/top.py": """
        from repro.structures.mid import relay

        class S:
            def put(self, k, v):
                relay(k)
                self._mem.write_u64(k, v)
    """,
}


def test_cache_cold_then_warm_is_identical(tmp_path):
    root = write_tree(tmp_path / "tree", CACHED_TREE)
    cache_dir = str(tmp_path / "cache")
    cold, _names, cold_stats = run_interproc([root], cache_dir=cache_dir)
    assert cold_stats["analyzed"] == cold_stats["total"] == 3
    warm, _names2, warm_stats = run_interproc([root], cache_dir=cache_dir)
    assert warm_stats["analyzed"] == 0
    assert keys_of(warm) == keys_of(cold)
    assert [f.message for f in warm] == [f.message for f in cold]


def test_cache_invalidates_importers_transitively(tmp_path):
    root = write_tree(tmp_path / "tree", CACHED_TREE)
    cache_dir = str(tmp_path / "cache")
    run_interproc([root], cache_dir=cache_dir)
    leaf = tmp_path / "tree" / "repro" / "structures" / "low.py"
    leaf.write_text(leaf.read_text() + "\n# touched\n")
    _f, _names, stats = run_interproc([root], cache_dir=cache_dir)
    # low changed; mid imports low; top imports mid: all three.
    assert stats["analyzed"] == 3
    _f2, _names2, stats2 = run_interproc([root], cache_dir=cache_dir)
    assert stats2["analyzed"] == 0


def test_cache_untouched_sibling_stays_cached(tmp_path):
    tree = dict(CACHED_TREE)
    tree["repro/structures/island.py"] = """
        def alone(x):
            return x
    """
    root = write_tree(tmp_path / "tree", tree)
    cache_dir = str(tmp_path / "cache")
    run_interproc([root], cache_dir=cache_dir)
    leaf = tmp_path / "tree" / "repro" / "structures" / "low.py"
    leaf.write_text(leaf.read_text() + "\n# touched\n")
    _f, _names, stats = run_interproc([root], cache_dir=cache_dir)
    assert stats["analyzed"] == 3          # island.py not re-analyzed
    assert stats["total"] == 4


def test_select_bypasses_the_cache(tmp_path):
    root = write_tree(tmp_path / "tree", CACHED_TREE)
    cache_dir = str(tmp_path / "cache")
    run_interproc([root], cache_dir=cache_dir,
                  selected=["persist-order"])
    assert not os.path.isdir(cache_dir)


# -- baseline orphan rule ----------------------------------------------------

def _load_baseline(tmp_path, text):
    target = tmp_path / "baseline.txt"
    target.write_text(textwrap.dedent(text))
    return Baseline.load(str(target))


def test_baseline_header_comments_are_legal(tmp_path):
    baseline = _load_baseline(tmp_path, """
        # File header explaining the format.
        # Second header line.

        # justification
        repro/structures/a.py persist-order 2
    """)
    assert baseline.entries == {("repro/structures/a.py",
                                 "persist-order"): 2}


def test_baseline_orphaned_comment_mid_file_fails(tmp_path):
    with pytest.raises(LintError, match="orphaned justification"):
        _load_baseline(tmp_path, """
            # justification
            repro/structures/a.py persist-order 2

            # this excused an entry that was deleted

            # justification two
            repro/structures/b.py persist-order 1
        """)


def test_baseline_orphaned_comment_at_eof_fails(tmp_path):
    with pytest.raises(LintError, match="orphaned justification"):
        _load_baseline(tmp_path, """
            # justification
            repro/structures/a.py persist-order 2

            # trailing prose whose entry is gone
        """)


# -- witnesses ---------------------------------------------------------------

def make_trace(kinds, backend="paxish"):
    sizes = [0] * len(kinds)
    payload = b""
    return Trace(list(kinds), [0] * len(kinds), [0] * len(kinds),
                 sizes, payload, {"backend": backend})


def test_unsafe_store_count_semantics():
    # Persist retires everything pending.
    assert unsafe_store_count(make_trace([STORE, STORE, PERSIST])) == 0
    # Stores after the last persist are exposed.
    assert unsafe_store_count(
        make_trace([STORE, PERSIST, STORE, RAW_WRITE])) == 2
    # An open WAL window protects at issue time; reset closes it.
    assert unsafe_store_count(
        make_trace([WAL_APPEND, STORE, WAL_RESET, STORE])) == 1
    assert unsafe_store_count(make_trace([])) == 0


def test_coverage_report_matches_witness_walk():
    from repro.replay.coverage import coverage
    trace = make_trace([STORE, PERSIST, WAL_APPEND, STORE, WAL_RESET,
                        STORE])
    report = coverage(trace)
    assert report.stores == 3
    assert report.persist_retired == 1
    assert report.wal_protected == 1
    assert report.exposed == 1
    assert not report.safe
    assert unsafe_store_count(trace) == report.exposed


WITNESS_TREE = {
    "repro/baselines/paxish.py": """
        from repro.structures.maps import HashMapIsh

        class PaxishBackend:
            name = "paxish"
    """,
    "repro/structures/maps.py": """
        class HashMapIsh:
            def put(self, k, v):
                self._mem.write_u64(k, v)
    """,
    "repro/structures/orphan.py": """
        class Orphan:
            def put(self, k, v):
                self._mem.write_u64(k, v)
    """,
}


def test_witness_confirms_import_reachable_findings(tmp_path):
    root = write_tree(tmp_path, WITNESS_TREE)
    findings, _names, _stats = run_interproc([root], use_cache=False)
    assert len(findings) == 2
    trace_path = str(tmp_path / "unsafe.trace")
    make_trace([STORE, STORE]).save(trace_path)
    confirmed, static_only = apply_witnesses(findings, [trace_path],
                                             source_roots=[root])
    assert (confirmed, static_only) == (1, 1)
    verdicts = {module_key(f.path): f.properties["witness"]
                for f in findings}
    assert verdicts["repro.structures.maps"] == "confirmed"
    assert verdicts["repro.structures.orphan"] == "static-only"


def test_safe_trace_confirms_nothing(tmp_path):
    root = write_tree(tmp_path, WITNESS_TREE)
    findings, _names, _stats = run_interproc([root], use_cache=False)
    trace_path = str(tmp_path / "safe.trace")
    make_trace([STORE, STORE, PERSIST]).save(trace_path)
    confirmed, static_only = apply_witnesses(findings, [trace_path],
                                             source_roots=[root])
    assert confirmed == 0
    assert static_only == len(findings)


def test_malformed_witness_trace_is_a_lint_error(tmp_path):
    bogus = tmp_path / "bogus.trace"
    bogus.write_bytes(b"not a trace")
    finding = LintFinding("repro/structures/x.py", 1, 0,
                         "persist-order", "msg")
    with pytest.raises(LintError, match="witness trace"):
        apply_witnesses([finding], [str(bogus)],
                        source_roots=[str(tmp_path)])


def test_fuzz_witness_out_records_unsafe_pax_trace(tmp_path):
    from repro.crashtest.fuzz import record_witness_trace
    from repro.replay.format import load_trace
    target = str(tmp_path / "witness.trace")
    record_witness_trace(target, seed=7, ops=12)
    trace = load_trace(target)
    assert trace.footer["backend"] == "pax"
    assert unsafe_store_count(trace) > 0


# -- verdicts in output formats ----------------------------------------------

def test_witness_verdict_lands_in_sarif_properties():
    finding = LintFinding("repro/structures/x.py", 3, 0, "persist-order",
                          "msg", properties={"witness": "confirmed"})
    plain = LintFinding("repro/structures/y.py", 4, 0, "persist-order",
                        "msg")
    log = json.loads(findings_to_sarif([finding, plain], "repro.staticcheck"))
    results = log["runs"][0]["results"]
    assert results[0]["properties"] == {"witness": "confirmed"}
    assert "properties" not in results[1]
    # Minimal SARIF 2.1.0 shape invariants.
    assert log["version"] == "2.1.0"
    for result in results:
        assert result["locations"][0]["physicalLocation"]["region"][
            "startLine"] > 0


def test_witness_verdict_lands_in_json_only_when_present():
    finding = LintFinding("repro/structures/x.py", 3, 0, "persist-order",
                          "msg", properties={"witness": "static-only"})
    plain = LintFinding("repro/structures/y.py", 4, 0, "persist-order",
                        "msg")
    payload = json.loads(findings_to_json([finding, plain]))
    tagged, bare = payload["findings"]
    assert tagged["witness"] == "static-only"
    assert sorted(bare) == ["col", "line", "message", "path", "rule"]
