"""Command-line chaos drills: ``python -m repro.serve``.

Runs one configured serving drill — live YCSB-derived traffic with
group-commit batching and admission control, optionally under scheduled
crashes and link storms — and reports the SLO summary plus a verdict.

Exit codes: 0 the drill's contract held (zero lost acknowledged writes,
zero sanitizer findings, zero recovery-deadline breaches); 1 it did
not; 2 the configuration was rejected.

Examples::

    python -m repro.serve --clients 4 --ops 200 --crashes 3 --sanitize
    python -m repro.serve --shards 2 --storms 1 --metrics serve.prom
"""

import argparse
import json
import sys

from repro.errors import ConfigError, FaultPlanError
from repro.serve.harness import ServeConfig, ServeHarness


def build_parser():
    """The drill CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Chaos-hardened serving drill: group commit, "
                    "admission control, crash/recover under live traffic.")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--ops", type=int, default=200,
                        help="YCSB ops per client (default 200)")
    parser.add_argument("--records", type=int, default=64,
                        help="key-space size per client script")
    parser.add_argument("--mix", default="A", help="YCSB mix (default A)")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--shards", type=int, default=1,
                        help="PAX pools sharing one clock (key %% shards)")
    parser.add_argument("--crashes", type=int, default=0,
                        help="scheduled mid-traffic crash/recover cycles")
    parser.add_argument("--storms", type=int, default=0,
                        help="scheduled link-storm windows")
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--timeout-ns", type=float, default=2_000_000.0,
                        help="admission deadline in sim-ns")
    parser.add_argument("--batch-max", type=int, default=16)
    parser.add_argument("--batch-delay-ns", type=float, default=150_000.0)
    parser.add_argument("--deadline-ns", type=float, default=None,
                        help="recovery-time SLO in sim-ns (breaches fail "
                             "the drill)")
    parser.add_argument("--sanitize", action="store_true",
                        help="shadow every shard with PaxSan; findings "
                             "fail the drill")
    parser.add_argument("--mechanisms", default=None,
                        help="miss-path mechanism spec for every shard's "
                             "host hierarchy, e.g. victim:32 or "
                             "stream:4x4+nextline:16 (default: none)")
    parser.add_argument("--mech-policy", default="lru",
                        help="replacement policy inside mechanisms that "
                             "have one (default %(default)s)")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the drill's repro.obs events as JSONL")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write the final Prometheus text exposition")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write a machine-readable drill record")
    return parser


def _drill_record(report, config):
    p50, p99, p999 = report.slo.latency_percentiles()
    return {
        "seed": config.seed,
        "clients": config.clients,
        "shards": config.shards,
        "sim_ns": report.sim_ns,
        "requests_served": report.ticks,
        "admitted": report.slo.admitted.value,
        "completed": report.slo.completed.value,
        "gave_up": report.slo.gave_up.value,
        "error_budget_spent": report.slo.error_budget_spent,
        "latency_p50_ns": p50,
        "latency_p99_ns": p99,
        "latency_p999_ns": p999,
        "batches": report.slo.batches.value,
        "batched_persists": report.slo.batched_persists.value,
        "crashes": report.slo.crashes.value,
        "recoveries": report.slo.recoveries.value,
        "recovery_deadline_breaches":
            report.slo.recovery_deadline_breaches.value,
        "lost_acked_writes": report.slo.lost_acked_writes.value,
        "sanitizer_findings": report.sanitizer_findings,
        "ok": report.ok,
    }


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    tracer = None
    if args.trace:
        from repro.obs import ObsTracer
        tracer = ObsTracer()
    try:
        config = ServeConfig(
            clients=args.clients, ops_per_client=args.ops,
            record_count=args.records, mix=args.mix, seed=args.seed,
            shards=args.shards, queue_depth=args.queue_depth,
            timeout_ns=args.timeout_ns, batch_max=args.batch_max,
            batch_delay_ns=args.batch_delay_ns, crashes=args.crashes,
            storms=args.storms, recovery_deadline_ns=args.deadline_ns,
            sanitize=args.sanitize, mechanisms=args.mechanisms,
            mech_policy=args.mech_policy)
        harness = ServeHarness(config, tracer=tracer)
    except (ConfigError, FaultPlanError) as exc:
        print("serve: bad configuration: %s" % exc, file=sys.stderr)
        return 2
    report = harness.run()
    if args.metrics:
        with open(args.metrics, "w") as handle:
            handle.write(report.to_prometheus())
        print("wrote %s" % args.metrics)
    if tracer is not None:
        from repro.obs.export import write_jsonl
        write_jsonl(tracer.events(), args.trace)
        print("wrote %s (%d events, %d dropped)"
              % (args.trace, len(tracer.ring), tracer.ring.dropped))
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(_drill_record(report, config), handle, indent=2)
            handle.write("\n")
        print("wrote %s" % args.json_path)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
