"""Set-associative cache arrays: geometry, lookup, eviction."""

import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.line import CacheLine
from repro.errors import ConfigError, ProtocolError
from repro.util.constants import CACHE_LINE_SIZE


def tiny_cache(ways=2, sets=4):
    config = CacheConfig(size_bytes=sets * ways * CACHE_LINE_SIZE, ways=ways)
    return SetAssociativeCache("t", config)


def line(addr, fill=0):
    return CacheLine(addr, bytes([fill]) * CACHE_LINE_SIZE)


class TestConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=32 * 1024, ways=8)
        assert config.num_sets == 64

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=3 * 64 * 8, ways=8).validate("x")

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=3).validate("x")


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.lookup(0x1000) is None
        cache.insert(line(0x1000))
        assert cache.lookup(0x1000) is not None
        assert cache.stats.get("hits") == 1
        assert cache.stats.get("misses") == 1

    def test_peek_does_not_touch_stats(self):
        cache = tiny_cache()
        cache.insert(line(0x1000))
        cache.peek(0x1000)
        cache.peek(0x9999999)
        assert cache.stats.get("hits") == 0
        assert cache.stats.get("misses") == 0

    def test_set_conflict_eviction(self):
        cache = tiny_cache(ways=2, sets=4)
        # Addresses 0x0, 0x100, 0x200 all map to set 0 (stride 4*64=0x100).
        cache.insert(line(0x000))
        cache.insert(line(0x100))
        victim = cache.insert(line(0x200))
        assert victim is not None
        assert victim.addr == 0x000       # LRU
        assert cache.stats.get("evictions") == 1

    def test_lru_refresh_changes_victim(self):
        cache = tiny_cache(ways=2, sets=4)
        cache.insert(line(0x000))
        cache.insert(line(0x100))
        cache.lookup(0x000)               # refresh
        victim = cache.insert(line(0x200))
        assert victim.addr == 0x100

    def test_reinsert_same_addr_replaces_in_place(self):
        cache = tiny_cache(ways=2)
        cache.insert(line(0x40, fill=1))
        victim = cache.insert(line(0x40, fill=2))
        assert victim is None
        assert cache.peek(0x40).data[0] == 2
        assert len(cache) == 1

    def test_different_sets_do_not_conflict(self):
        cache = tiny_cache(ways=1, sets=4)
        cache.insert(line(0x00))
        assert cache.insert(line(0x40)) is None

    def test_remove(self):
        cache = tiny_cache()
        cache.insert(line(0x40))
        removed = cache.remove(0x40)
        assert removed is not None
        assert cache.remove(0x40) is None
        assert 0x40 not in cache

    def test_clear(self):
        cache = tiny_cache()
        cache.insert(line(0x00))
        cache.insert(line(0x40))
        cache.clear()
        assert len(cache) == 0

    def test_lines_iteration(self):
        cache = tiny_cache()
        cache.insert(line(0x00))
        cache.insert(line(0x40))
        assert sorted(l.addr for l in cache.lines()) == [0x00, 0x40]


class TestCacheLine:
    def test_write_marks_dirty(self):
        cache_line = line(0x40)
        assert not cache_line.dirty
        cache_line.write(4, b"zz")
        assert cache_line.dirty
        assert cache_line.read(4, 2) == b"zz"

    def test_wrong_size_rejected(self):
        with pytest.raises(ProtocolError):
            CacheLine(0, b"short")

    def test_snapshot_is_immutable_copy(self):
        cache_line = line(0x40)
        snap = cache_line.snapshot()
        cache_line.write(0, b"\xff")
        assert snap[0] == 0
