"""Operation traces: generate, record, replay, persist to disk.

A trace is a list of :class:`Op` — enough to replay an identical workload
against every backend, which is what makes cross-backend comparisons
apples-to-apples. Traces serialize to JSON-lines files so a workload can
be generated once and replayed across runs and machines.
"""

import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class Op:
    """One key-value operation."""

    kind: str                  # "put" | "get" | "remove" | "persist"
    key: Optional[int] = None
    value: Optional[int] = None

    KINDS = ("put", "get", "remove", "persist")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ConfigError("unknown op kind %r" % (self.kind,))


def apply_trace(backend, trace):
    """Replay ``trace`` against ``backend``; returns ops applied."""
    applied = 0
    for op in trace:
        if op.kind == "put":
            backend.put(op.key, op.value)
        elif op.kind == "get":
            backend.get(op.key)
        elif op.kind == "remove":
            backend.remove(op.key)
        else:
            backend.persist()
        applied += 1
    return applied


def interleave_persists(trace, group_size):
    """Insert a persist op after every ``group_size`` mutating ops.

    This is the group-commit knob (paper §3.2): PAX amortizes its epoch
    cost over the group; per-op-durable schemes ignore persist ops.
    """
    if group_size <= 0:
        raise ConfigError("group size must be positive")
    out = []
    mutations = 0
    for op in trace:
        out.append(op)
        if op.kind in ("put", "remove"):
            mutations += 1
            if mutations % group_size == 0:
                out.append(Op("persist"))
    if out and out[-1].kind != "persist":
        out.append(Op("persist"))
    return out


def save_trace(trace, path):
    """Write a trace as JSON lines; returns the op count."""
    with open(path, "w") as handle:
        for op in trace:
            record = {"kind": op.kind}
            if op.key is not None:
                record["key"] = op.key
            if op.value is not None:
                record["value"] = op.value
            handle.write(json.dumps(record))
            handle.write("\n")
    return len(trace)


def load_trace(path):
    """Read a JSON-lines trace written by :func:`save_trace`."""
    trace = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                trace.append(Op(record["kind"], record.get("key"),
                                record.get("value")))
            except (ValueError, KeyError) as exc:
                raise ConfigError("bad trace line %d in %s: %s"
                                  % (line_number, path, exc)) from exc
    return trace


def expected_state(trace):
    """The dict a correct backend must contain after replaying ``trace``."""
    state = {}
    for op in trace:
        if op.kind == "put":
            state[op.key] = op.value
        elif op.kind == "remove":
            state.pop(op.key, None)
    return state
