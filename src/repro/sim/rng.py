"""Deterministic random number generation for workloads and policies.

All randomness flows through :class:`DeterministicRng` seeded explicitly,
so every benchmark and every hypothesis counter-example replays exactly.
The zipfian generator reproduces the YCSB ``ScrambledZipfian`` behaviour
used by key-value benchmarks like the paper's.
"""

import hashlib
import random

from repro.errors import ConfigError


class DeterministicRng:
    """A seeded wrapper around :class:`random.Random` with domain helpers."""

    def __init__(self, seed=42):
        self.seed = seed
        self._random = random.Random(seed)

    def randint(self, lo, hi):
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._random.randint(lo, hi)

    def random(self):
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq):
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def bytes(self, n):
        """Return ``n`` pseudo-random bytes."""
        return self._random.getrandbits(8 * n).to_bytes(n, "little") if n else b""

    def fork(self, label):
        """Derive an independent child RNG keyed by ``label``.

        Used to give each simulated thread its own stream so adding a
        thread does not perturb the others' key sequences. Keyed with a
        stable hash, NOT the builtin ``hash()``: string hashing is
        salted per process, which would make fork-derived streams (and
        any fuzz counter-example built on them) unreplayable across
        runs.
        """
        digest = hashlib.blake2b(repr((self.seed, label)).encode("utf-8"),
                                 digest_size=8).digest()
        child_seed = (int.from_bytes(digest, "little") & 0x7FFFFFFFFFFFFFFF) \
            or 1
        return DeterministicRng(child_seed)


class ZipfianGenerator:
    """Zipf-distributed integers in ``[0, n)`` with YCSB's incremental method.

    Implements the Gray et al. "Quickly generating billion-record synthetic
    databases" algorithm that YCSB uses, with optional hashing to scatter
    the hot keys across the keyspace (``scrambled=True``).
    """

    def __init__(self, n, theta=0.99, rng=None, scrambled=True):
        if n <= 0:
            raise ConfigError("zipfian domain must be positive")
        if not (0 < theta < 1):
            raise ConfigError("zipfian theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.scrambled = scrambled
        self._rng = rng or DeterministicRng()
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1 - (2.0 / n) ** (1 - theta))
                     / (1 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n, theta):
        # Exact sum for small n; Euler-Maclaurin style approximation above a
        # threshold to keep construction O(1)-ish for large domains.
        if n <= 100000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 100001))
        # integral of x^-theta from 100000 to n
        tail = ((n ** (1 - theta)) - (100000 ** (1 - theta))) / (1 - theta)
        return head + tail

    def next(self):
        """Return the next zipf-distributed value in ``[0, n)``."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(self.n * ((self._eta * u - self._eta + 1) ** self._alpha))
            if rank >= self.n:
                rank = self.n - 1
        if not self.scrambled:
            return rank
        # FNV-1a scramble so hot keys are spread over the keyspace.
        h = 0xCBF29CE484222325
        for shift in range(0, 64, 8):
            h ^= (rank >> shift) & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h % self.n


class UniformGenerator:
    """Uniform integers in ``[0, n)`` behind the same interface."""

    def __init__(self, n, rng=None):
        if n <= 0:
            raise ConfigError("uniform domain must be positive")
        self.n = n
        self._rng = rng or DeterministicRng()

    def next(self):
        """Return the next uniform value in ``[0, n)``."""
        return self._rng.randint(0, self.n - 1)
