"""The project linter: each rule's positive/negative fixtures, the
suppression syntax, module sanctioning, the CLI, and — the point of the
whole exercise — that the real source tree lints clean."""

import json
import os

import pytest

from repro.errors import LintError
from repro.lint import all_rules, lint_source, main, run_paths

import repro

SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))


def findings_for(source, path="fixture.py", selected=None):
    """Lint a source string and return ``[(rule_id, lineno), ...]``."""
    return [(f.rule_id, f.lineno)
            for f in lint_source(path, source, selected=selected)]


# -- typed-errors -----------------------------------------------------------

def test_typed_errors_flags_banned_builtins():
    source = (
        "def f():\n"
        "    raise ValueError('nope')\n"
        "def g():\n"
        "    raise RuntimeError\n"
    )
    found = findings_for(source, selected=["typed-errors"])
    assert found == [("typed-errors", 2), ("typed-errors", 4)]


def test_typed_errors_allows_project_and_protocol_exceptions():
    source = (
        "from repro.errors import LogError\n"
        "def f():\n"
        "    raise LogError('typed')\n"
        "def g():\n"
        "    raise NotImplementedError\n"
        "def h():\n"
        "    try:\n"
        "        f()\n"
        "    except Exception:\n"
        "        raise\n"
    )
    assert findings_for(source, selected=["typed-errors"]) == []


# -- pm-direct-write --------------------------------------------------------

def test_pm_direct_write_flags_device_writes():
    source = (
        "def f(device, self):\n"
        "    device.write(0, b'x')\n"
        "    self.pm.write(64, b'y')\n"
    )
    found = findings_for(source, path="src/repro/structures/bad.py",
                         selected=["pm-direct-write"])
    assert found == [("pm-direct-write", 2), ("pm-direct-write", 3)]


def test_pm_direct_write_sanctioned_modules_are_exempt():
    source = "def f(device):\n    device.write(0, b'x')\n"
    for sanctioned in ("src/repro/pm/device.py",
                       "src/repro/core/writeback.py",
                       "src/repro/faults/device.py"):
        assert findings_for(source, path=sanctioned,
                            selected=["pm-direct-write"]) == []


def test_pm_direct_write_ignores_other_receivers():
    source = "def f(handle):\n    handle.write(b'x')\n"
    assert findings_for(source, selected=["pm-direct-write"]) == []


# -- sim-determinism --------------------------------------------------------

def test_sim_determinism_flags_nondeterministic_imports():
    source = "import random\nfrom time import sleep\n"
    found = findings_for(source, path="src/repro/structures/bad.py",
                         selected=["sim-determinism"])
    assert found == [("sim-determinism", 1), ("sim-determinism", 2)]


def test_sim_determinism_sanctions_the_wrapper_modules():
    source = "import random\n"
    assert findings_for(source, path="src/repro/sim/rng.py",
                        selected=["sim-determinism"]) == []
    assert findings_for(source, path="src/repro/sim/clock.py",
                        selected=["sim-determinism"]) == []


# -- hot-path-stat-lookup ---------------------------------------------------

def test_hot_path_stat_lookup_flags_hot_methods():
    source = (
        "class Hierarchy:\n"
        "    def load(self, addr):\n"
        "        self.stats.counter('loads').add(1)\n"
        "    def _charge(self, ns):\n"
        "        self.stats.histogram('access_ns').record(ns)\n"
    )
    found = findings_for(source, path="src/repro/cache/hierarchy.py",
                         selected=["hot-path-stat-lookup"])
    assert found == [("hot-path-stat-lookup", 3),
                     ("hot-path-stat-lookup", 5)]


def test_hot_path_stat_lookup_allows_init_and_cold_methods():
    source = (
        "class Hierarchy:\n"
        "    def __init__(self):\n"
        "        self._c_loads = self.stats.counter('loads')\n"
        "    def snapshot(self):\n"
        "        return self.stats.counter('loads').value\n"
    )
    assert findings_for(source, path="src/repro/cache/hierarchy.py",
                        selected=["hot-path-stat-lookup"]) == []


def test_hot_path_stat_lookup_scoped_to_hot_files():
    source = (
        "class Report:\n"
        "    def load(self, addr):\n"
        "        self.stats.counter('loads').add(1)\n"
    )
    assert findings_for(source, path="src/repro/report/tables.py",
                        selected=["hot-path-stat-lookup"]) == []


def test_hot_path_stat_lookup_honours_suppression():
    source = (
        "class Hierarchy:\n"
        "    def load(self, addr):\n"
        "        self.stats.counter('loads').add(1)"
        "  # lint: ignore[hot-path-stat-lookup]\n"
    )
    assert findings_for(source, path="src/repro/cache/hierarchy.py",
                        selected=["hot-path-stat-lookup"]) == []


# -- mutable-default --------------------------------------------------------

def test_mutable_default_flags_literals_and_constructors():
    source = (
        "def f(x=[]):\n"
        "    return x\n"
        "def g(*, y=dict()):\n"
        "    return y\n"
    )
    found = findings_for(source, selected=["mutable-default"])
    assert [rule_id for rule_id, _ in found] == ["mutable-default",
                                                 "mutable-default"]


def test_mutable_default_allows_none_and_immutables():
    source = "def f(x=None, y=0, z=()):\n    return x, y, z\n"
    assert findings_for(source, selected=["mutable-default"]) == []


def test_mutable_default_in_lambdas_and_nested_defs():
    source = (
        "def outer():\n"
        "    callback = lambda x=[]: x\n"
        "    def inner(y={}):\n"
        "        return y\n"
        "    return callback, inner\n"
    )
    found = findings_for(source, selected=["mutable-default"])
    assert [rule_id for rule_id, _ in found] == ["mutable-default",
                                                 "mutable-default"]


def test_mutable_default_in_decorated_methods():
    source = (
        "class C:\n"
        "    @staticmethod\n"
        "    def m(x=[]):\n"
        "        return x\n"
    )
    found = findings_for(source, selected=["mutable-default"])
    assert [rule_id for rule_id, _ in found] == ["mutable-default"]


# -- engine behaviour -------------------------------------------------------

def test_suppression_bare_and_per_rule():
    flagged = "def f():\n    raise ValueError('x')\n"
    bare = "def f():\n    raise ValueError('x')  # lint: ignore\n"
    scoped = "def f():\n    raise ValueError('x')  # lint: ignore[typed-errors]\n"
    multi = ("def f():\n"
             "    raise ValueError('x')  "
             "# lint: ignore[pm-direct-write, typed-errors]\n")
    wrong = ("def f():\n"
             "    raise ValueError('x')  # lint: ignore[mutable-default]\n")
    assert findings_for(flagged) == [("typed-errors", 2)]
    assert findings_for(bare) == []
    assert findings_for(scoped) == []
    assert findings_for(multi) == []
    assert findings_for(wrong) == [("typed-errors", 2)]


def test_suppression_on_multiline_statements():
    # The finding is reported at the statement's first line; the marker
    # may sit on the first OR the last physical line of the statement.
    on_last = (
        "def f():\n"
        "    raise ValueError(\n"
        "        'x'\n"
        "    )  # lint: ignore[typed-errors]\n"
    )
    on_first = (
        "def f():\n"
        "    raise ValueError(  # lint: ignore[typed-errors]\n"
        "        'x'\n"
        "    )\n"
    )
    in_middle = (
        "def f():\n"
        "    raise ValueError(\n"
        "        'x'  # lint: ignore[typed-errors]\n"
        "    )\n"
    )
    assert findings_for(on_last) == []
    assert findings_for(on_first) == []
    assert findings_for(in_middle) == [("typed-errors", 2)]


def test_parse_error_is_a_finding_not_an_exception():
    found = findings_for("def f(:\n")
    assert len(found) == 1
    assert found[0][0] == "parse-error"


def test_unknown_selected_rule_raises_lint_error():
    with pytest.raises(LintError):
        lint_source("x.py", "pass\n", selected=["no-such-rule"])


def test_rule_catalogue_is_registered():
    rules = all_rules()
    assert {"typed-errors", "pm-direct-write", "sim-determinism",
            "mutable-default", "hot-path-stat-lookup"} <= set(rules)
    for rule_obj in rules.values():
        assert rule_obj.summary


# -- CLI --------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f():\n    raise ValueError('x')\n")

    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "dirty.py:2:" in out and "typed-errors" in out
    assert main(["--select", "no-such-rule", str(clean)]) == 2
    assert main([str(tmp_path / "missing.py")]) == 2


def test_cli_json_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f():\n    raise ValueError('x')\n")
    assert main(["--json", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    assert len(payload["findings"]) == 1
    entry = payload["findings"][0]
    assert sorted(entry) == ["col", "line", "message", "path", "rule"]
    assert entry["rule"] == "typed-errors"
    assert entry["line"] == 2

    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert main(["--json", str(clean)]) == 0
    assert json.loads(capsys.readouterr().out) == {"schema": 1,
                                                   "findings": []}


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "typed-errors" in out and "pm-direct-write" in out


# -- the tree itself --------------------------------------------------------

def test_real_source_tree_is_clean():
    findings = run_paths([SRC_REPRO])
    assert findings == [], "\n".join(f.render() for f in findings)
