"""The asynchronous undo logger (paper §3.2).

When the host requests ownership of a line, the device captures the line's
current PM contents as an undo record — but it does **not** stall the host
while the record reaches durability. Records queue in volatile device
memory (the *pending tail*) and drain to the PM log region in the
background; a record is *durable* once written there. Durability advances
at a monotonically increasing sequence number, which is what gates
write-back of the corresponding modified line (paper §3.3).

Crash semantics: the pending tail is lost; the durable prefix survives.
That asymmetry is the whole design — and the crash tests exercise it.
"""

from collections import deque

from repro.errors import LogError
from repro.pm.log import ENTRY_SIZE
from repro.util.stats import StatGroup


class _PendingRecord:
    __slots__ = ("seq", "epoch", "pool_addr", "old_data")

    def __init__(self, seq, epoch, pool_addr, old_data):
        self.seq = seq
        self.epoch = epoch
        self.pool_addr = pool_addr
        self.old_data = old_data


class UndoLogger:
    """Volatile pending tail + durable PM log region."""

    def __init__(self, region, config, start_epoch):
        self._region = region
        self._config = config
        self.current_epoch = start_epoch
        self._pending = deque()
        self._next_seq = 1
        self._durable_seq = 0
        self._logged = {}            # pool_addr -> seq, this epoch
        self._drain_credit = 0.0     # fractional bytes of drain budget
        #: Optional tracer told about record creation and durability.
        self.tracer = None
        self.stats = StatGroup("undo_logger")
        # Per-record counters bound once (hot-path-stat-lookup rule).
        self._c_records = self.stats.counter("records")
        self._c_dedup_hits = self.stats.counter("dedup_hits")
        self._c_drained = self.stats.counter("drained")

    # -- producing records ---------------------------------------------------

    def note_modification(self, pool_addr, old_data):
        """Record that ``pool_addr`` will be modified; returns the record seq.

        With dedup enabled (default), repeated ownership requests for the
        same line within one epoch return the original record's seq —
        rollback only needs the epoch-start value, which the first record
        captured.
        """
        if self._config.dedup_log_entries and pool_addr in self._logged:
            self._c_dedup_hits.value += 1
            return self._logged[pool_addr]
        if self.pending_count + self._region.used_entries \
                >= self._region.capacity_entries:
            raise LogError(
                "undo log capacity exhausted (%d entries this epoch); the "
                "application must call persist() more often or the pool "
                "needs a larger log region" % self._region.capacity_entries)
        seq = self._next_seq
        self._next_seq += 1
        self._pending.append(
            _PendingRecord(seq, self.current_epoch, pool_addr, bytes(old_data)))
        self._logged[pool_addr] = seq
        self._c_records.add(1)
        if self.tracer is not None:
            self.tracer.on_log_record(pool_addr, seq, self.current_epoch)
        return seq

    def seq_for(self, pool_addr):
        """Seq of this epoch's record for ``pool_addr`` (None if unlogged)."""
        return self._logged.get(pool_addr)

    # -- durability ------------------------------------------------------------

    @property
    def durable_seq(self):
        """Highest sequence number whose record is durable on PM."""
        return self._durable_seq

    @property
    def pending_count(self):
        """Records still in the volatile tail."""
        return len(self._pending)

    def is_durable(self, seq):
        """True if record ``seq`` has reached the PM log region."""
        return seq <= self._durable_seq

    def drain_one(self):
        """Write the oldest pending record to PM; returns bytes written."""
        if not self._pending:
            return 0
        record = self._pending.popleft()
        self._region.append(record.epoch, record.pool_addr, record.old_data)
        self._durable_seq = record.seq
        self._c_drained.add(1)
        if self.tracer is not None:
            self.tracer.on_log_durable(record.seq)
        return ENTRY_SIZE

    def drain_budget(self, byte_budget):
        """Background drain: write records worth up to ``byte_budget`` bytes."""
        self._drain_credit += byte_budget
        written = 0
        while self._pending and self._drain_credit >= ENTRY_SIZE:
            written += self.drain_one()
            self._drain_credit -= ENTRY_SIZE
        return written

    def drain_until(self, seq):
        """Synchronously drain until record ``seq`` is durable.

        This is the "forced pump" a buffer eviction needs when no durable
        line is available (paper §3.3); returns bytes written so the caller
        can charge the stall.
        """
        written = 0
        while self._durable_seq < seq:
            if not self._pending:
                raise LogError("seq %d was never produced" % seq)
            written += self.drain_one()
        return written

    def pump(self):
        """Drain everything (persist()); returns bytes written."""
        written = 0
        while self._pending:
            written += self.drain_one()
        return written

    # -- epoch lifecycle ----------------------------------------------------------

    def touched_lines(self):
        """Pool addresses logged this epoch, in first-touch order."""
        return list(self._logged)

    def begin_epoch(self, epoch, allow_pending=False):
        """Start a new epoch.

        After a blocking commit the volatile tail is empty; the pipelined
        persist path (:mod:`repro.core.pipeline`) overlaps epochs, so its
        transition passes ``allow_pending=True`` — the tail still holds
        the snooped epoch's records, which drain (in order) before any of
        the new epoch's.
        """
        if self._pending and not allow_pending:
            raise LogError("cannot begin an epoch with undrained records")
        self.current_epoch = epoch
        self._logged.clear()

    def on_crash(self):
        """Volatile tail is lost; durable region bytes survive untouched."""
        lost = len(self._pending)
        self._pending.clear()
        self.stats.counter("records_lost_in_crash").add(lost)
        return lost
