"""Declarative experiment-matrix harness (``python -m repro.sweep``).

A sweep takes a spec file (:mod:`repro.sweep.spec`) describing a grid —
backends x workloads x miss-path mechanisms x LLC sizes x replacement
policies x device mechanisms — and produces one result cell per grid
point, using the record-once / replay-many strategy:

1. For each (workload, backend) pair the per-access engine runs **once**
   at the default perfbench configuration, recording the machine-seam
   trace (:func:`repro.perfbench.record_cell_trace`). The seam event
   stream depends on structure logic and data values, not on cache
   geometry or mechanisms, so one recording serves every variant.
2. Every cell replays that trace against a backend built with the cell's
   variant configuration (:func:`repro.replay.replay_trace`, generic
   engine for mechanized configs). The hierarchy and device below the
   seams re-simulate, so each cell's ``sim_ns`` reflects its own config.
3. ``spot_check`` cells are additionally re-run through the per-access
   engine on an identically configured backend and compared with
   :func:`repro.replay.equivalence.fingerprint` — replay must be
   indistinguishable from the executable spec, cell by cell.

Reports (schema :data:`SCHEMA`) contain only deterministic quantities —
simulated nanoseconds and stat counters, never wall-clock — so two runs
of the same spec at the same seed produce byte-identical JSON; CI's
``sweep-smoke`` job enforces exactly that with ``cmp``. This module must
therefore never import :mod:`time` (the determinism lint agrees).
"""

from repro.cache.cache import CacheConfig
from repro.errors import ConfigError
from repro.perfbench import _run_ops, build_backend, record_cell_trace
from repro.replay import replay_trace
from repro.replay.equivalence import diff, fingerprint
from repro.sim.rng import DeterministicRng
from repro.sweep.spec import (DEFAULTS, PAX_BACKENDS, SPEC_SCHEMA,
                              load_spec)

#: Report format identifier, bumped on incompatible layout changes.
SCHEMA = "repro.sweep/1"

#: Spot-check RNG domain separator: keeps cell selection independent of
#: the workload stream, which uses the bare seed.
_SPOT_SALT = 0x53D0


def expand_grid(spec):
    """The spec's cell list, in deterministic grid order.

    One dict per cell with the axis values spelled out. Two pruning
    rules keep the grid free of duplicate configurations:

    * ``device_mechanisms`` entries other than ``"none"`` apply only to
      PAX-family backends — nothing else has a device to mechanize;
    * the ``policies`` axis only multiplies cells that configure at
      least one mechanism, because the policy lives *inside* mechanism
      buffers and a mechanism-free cell is identical under every policy.
    """
    cells = []
    first_policy = spec["policies"][0]
    for workload in spec["workloads"]:
        for backend in spec["backends"]:
            for mech in spec["mechanisms"]:
                for dev_mech in spec["device_mechanisms"]:
                    if dev_mech != "none" and backend not in PAX_BACKENDS:
                        continue
                    for kib in spec["llc_sizes_kib"]:
                        for policy in spec["policies"]:
                            if (mech == "none" and dev_mech == "none"
                                    and policy != first_policy):
                                continue
                            cells.append({
                                "workload": workload,
                                "backend": backend,
                                "mechanisms": mech,
                                "device_mechanisms": dev_mech,
                                "llc_kib": kib,
                                "policy": policy,
                            })
    return cells


def variant_id(cell):
    """One string naming a cell's full variant configuration.

    Used as the ``mechanisms`` field of the perfbench-schema view
    (:func:`repro.sweep.report.perfbench_view`) so every sweep cell maps
    to a distinct perfbench cell key.
    """
    return "%s|dev=%s|llc=%dKiB|policy=%s" % (
        cell["mechanisms"], cell["device_mechanisms"], cell["llc_kib"],
        cell["policy"])


def build_cell_backend(spec, cell):
    """A fresh backend configured exactly as ``cell`` prescribes."""
    llc = CacheConfig(size_bytes=cell["llc_kib"] * 1024,
                      ways=spec["llc_ways"])
    mech = None if cell["mechanisms"] == "none" else cell["mechanisms"]
    dev = (None if cell["device_mechanisms"] == "none"
           else cell["device_mechanisms"])
    hbm = spec["hbm_lines"]
    if hbm == 0 or cell["backend"] not in PAX_BACKENDS:
        hbm = None
    return build_backend(cell["backend"], llc_config=llc, mechanisms=mech,
                         mech_policy=cell["policy"], device_mechanisms=dev,
                         hbm_lines=hbm)


def _drive_access(spec, cell, backend):
    """Run the cell's workload through the per-access path (no timing)."""
    rng = DeterministicRng(spec["seed"])
    records = spec["records"]
    for i in range(records):
        backend.put(i, i)
    _run_ops(backend, cell["workload"], spec["ops"], records - 1, rng)


def _select_spot_checks(spec, count):
    """Indices of the cells to fingerprint-verify, per ``spot_check``."""
    spot = spec["spot_check"]
    if spot == "all":
        return set(range(count))
    if spot == "none" or spot == 0 or count == 0:
        return set()
    if spot >= count:
        return set(range(count))
    rng = DeterministicRng(spec["seed"] ^ _SPOT_SALT)
    chosen = set()
    while len(chosen) < spot:
        chosen.add(rng.randint(0, count - 1))
    return chosen


def _cell_counters(backend):
    """Deterministic mechanism accounting for one finished cell."""
    machine = backend.machine
    hier = machine.hierarchy
    out = {
        "host_mech_hits": hier.stats.get("mech_hits"),
        "host_mech_prefetch_fetches": hier.stats.get("mech_prefetch_fetches"),
    }
    device = getattr(machine, "device", None)
    if device is not None:
        out["dev_mech_hits"] = device.stats.get("mech_hits")
        out["dev_mech_prefetch_reads"] = device.stats.get(
            "mech_prefetch_reads")
        out["dev_pm_line_reads"] = device.stats.get("pm_line_reads")
    return out


def run_sweep(spec, progress=None):
    """Run the whole grid; returns the report dict (schema :data:`SCHEMA`).

    ``progress``, when given, is called with each finished cell dict.
    The report is fully deterministic for a fixed spec — no wall-clock
    quantity ever enters it — and carries a ``verification`` section
    summarizing the fingerprint spot checks; ``verification["failed"]``
    must be zero for the sweep to count as reproduced.
    """
    cells = expand_grid(spec)
    ops, records, seed = spec["ops"], spec["records"], spec["seed"]
    spot_indices = _select_spot_checks(spec, len(cells))
    results = []
    failures = []
    recorded = set()
    for index, cell in enumerate(cells):
        trace, _default_sim = record_cell_trace(
            cell["workload"], cell["backend"], ops, records, seed)
        recorded.add((cell["workload"], cell["backend"]))
        backend = build_cell_backend(spec, cell)
        outcome = replay_trace(trace, backend)
        row = dict(cell)
        row["variant"] = variant_id(cell)
        row["engine"] = outcome.engine
        row["sim_ns"] = outcome.sim_ns
        row["sim_ns_timed"] = outcome.sim_ns_timed
        row["counters"] = _cell_counters(backend)
        if index in spot_indices:
            golden = build_cell_backend(spec, cell)
            _drive_access(spec, cell, golden)
            mismatches = diff(fingerprint(golden), fingerprint(backend))
            row["verified"] = not mismatches
            if mismatches:
                failures.append({
                    "workload": cell["workload"],
                    "backend": cell["backend"],
                    "variant": row["variant"],
                    "mismatches": [
                        {"key": key, "access": repr(a), "replay": repr(b)}
                        for key, a, b in mismatches[:8]],
                    "mismatch_count": len(mismatches),
                })
        else:
            row["verified"] = None
        results.append(row)
        if progress is not None:
            progress(row)
    report = {
        "schema": SCHEMA,
        "spec": {key: spec[key] for key in DEFAULTS},
        "spec_schema": spec.get("schema", SPEC_SCHEMA),
        "spec_source": spec.get("source", ""),
        "cells": results,
        "traces_recorded": len(recorded),
        "verification": {
            "checked": len(spot_indices),
            "passed": len(spot_indices) - len(failures),
            "failed": len(failures),
            "failures": failures,
        },
    }
    return report


__all__ = [
    "SCHEMA", "ConfigError", "build_cell_backend", "expand_grid",
    "load_spec", "run_sweep", "variant_id",
]
