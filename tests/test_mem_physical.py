"""Memory devices: bounds, crash semantics, accounting."""

import pytest

from repro.errors import AddressError, ConfigError
from repro.mem.physical import DramDevice, MemoryDevice


class TestMemoryDevice:
    def test_read_write_roundtrip(self):
        device = MemoryDevice("m", 1024)
        device.write(100, b"abc")
        assert device.read(100, 3) == b"abc"

    def test_zero_initialized(self):
        device = MemoryDevice("m", 64)
        assert device.read(0, 64) == bytes(64)

    def test_out_of_range_read(self):
        device = MemoryDevice("m", 64)
        with pytest.raises(AddressError):
            device.read(60, 8)

    def test_out_of_range_write(self):
        device = MemoryDevice("m", 64)
        with pytest.raises(AddressError):
            device.write(63, b"ab")

    def test_negative_offset(self):
        with pytest.raises(AddressError):
            MemoryDevice("m", 64).read(-1, 1)

    def test_negative_length(self):
        with pytest.raises(AddressError):
            MemoryDevice("m", 64).read(0, -1)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            MemoryDevice("m", 0)

    def test_fill(self):
        device = MemoryDevice("m", 64)
        device.fill(8, 4, 0xAB)
        assert device.read(8, 4) == b"\xab" * 4

    def test_stats(self):
        device = MemoryDevice("m", 64)
        device.write(0, b"xy")
        device.read(0, 2)
        assert device.stats.get("bytes_written") == 2
        assert device.stats.get("bytes_read") == 2


class TestDramCrash:
    def test_crash_wipes_dram(self):
        device = DramDevice("d", 128)
        device.write(0, b"important")
        device.on_crash()
        assert device.read(0, 9) == bytes(9)

    def test_base_device_keeps_data(self):
        device = MemoryDevice("m", 128)
        device.write(0, b"kept")
        device.on_crash()
        assert device.read(0, 4) == b"kept"
