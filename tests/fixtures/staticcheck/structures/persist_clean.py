"""Clean twin of ``persist_bad.py``.

Same shapes — branches, loops, aliased bound stores, context managers —
but every accessor store is dominated by an open gate on all paths.
The test suite asserts staticcheck reports nothing here.
"""


class BranchGate:
    """Gate opened on both branches before either store."""

    def __init__(self, mem, tx):
        self._mem = mem
        self._tx = tx

    def put(self, slot, value, wide):
        self._tx.begin(slot)
        if wide:
            self._mem.write_bytes(slot * 8, value)
        else:
            self._mem.write_u64(slot * 8, value)
        self._tx.end()


class WithGate:
    """Context-manager gate covering the whole store sequence."""

    def __init__(self, mem, tx):
        self._mem = mem
        self._tx = tx

    def put(self, slot, value):
        with self._tx.transaction():
            self._mem.write_u64(slot * 8, value)
            self._mem.write_u64(0, slot)


class WalGate:
    """Undo-log append acts as the gate (WAL-style backend)."""

    def __init__(self, mem, wal):
        self._mem = mem
        self._wal = wal

    def put(self, slot, value):
        self._wal.append(slot, value)
        self._mem.write_u64(slot * 8, value)


class LoopGate:
    """Gate opened once before the loop; stays open on the back edge."""

    def __init__(self, mem, tx):
        self._mem = mem
        self._tx = tx

    def fill(self, count):
        self._tx.begin(0)
        for index in range(count):
            self._mem.write_u64(index * 8, index)
        self._tx.end()


class AliasStore:
    """Aliased bound store, but inside an open gate."""

    def __init__(self, mem, tx):
        self._mem = mem
        self._tx = tx
        self._write_u64 = mem.write_u64

    def stamp(self, offset, value):
        write = self._write_u64
        self._tx.begin(offset)
        write(offset, value)
        self._tx.end()
