# AUTO-GENERATED -- do not edit by hand.
# Source: src/repro/structures/hashmap.py, instrumented by the
# staticcheck persist-order auto-fix pass:
#   python -m repro.staticcheck.autogen --write
# Every begin()/end() pair below was placed by the fixer
# (docs/analysis-tools.md, "Auto-fix"); CI checks this file is
# byte-identical to a fresh regeneration.
"""A chained hash map over a memory accessor — the paper's hash table.

This is the reproduction's analog of ``std::unordered_map`` /
``tbb::concurrent_hash_map`` with a custom allocator: plain *volatile*
data-structure code, written with no knowledge of persistence. The same
class runs over DRAM, PM-direct, PMDK-transactional, page-fault-tracked,
and vPM-via-PAX accessors; only the accessor differs. Keys and values are
u64 (the paper's benchmark uses 8 B keys and values).

On-memory layout (structure-space offsets, all fields u64)::

    header:  magic | capacity | count | buckets_ptr | seed
    buckets: capacity contiguous head pointers
    node:    key | value | next

The map resizes (doubling, full rehash by relinking) when the load factor
exceeds 2. Resize is deliberately a long multi-store operation — it is
precisely the kind of interrupted operation crash-consistency schemes
must cope with, and the crash tests cut it in half on purpose.
"""

from repro.errors import ReproError
from repro.mem.layout import StructLayout
from repro.util.constants import NULL_ADDR, WORD_SIZE

MAP_MAGIC = 0x5041584D41503031     # "PAXMAP01"

_HEADER = StructLayout("hashmap_header", [
    ("magic", "u64"),
    ("capacity", "u64"),
    ("count", "u64"),
    ("buckets", "u64"),
    ("seed", "u64"),
])

_NODE = StructLayout("hashmap_node", [
    ("key", "u64"),
    ("value", "u64"),
    ("next", "u64"),
])

#: Grow when count exceeds capacity * MAX_LOAD.
MAX_LOAD = 2

# Field offsets hoisted from the layouts: put/get/remove issue their
# simulated loads and stores at these addresses directly rather than
# building a StructView per node visit — same accesses, no per-visit
# allocation or field-name lookup.
_HDR_CAPACITY = _HEADER.fields["capacity"].offset
_HDR_COUNT = _HEADER.fields["count"].offset
_HDR_BUCKETS = _HEADER.fields["buckets"].offset
_HDR_SEED = _HEADER.fields["seed"].offset
_NODE_KEY = _NODE.fields["key"].offset
_NODE_VALUE = _NODE.fields["value"].offset
_NODE_NEXT = _NODE.fields["next"].offset

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix(key, seed):
    """splitmix64 finalizer — cheap, well-distributed u64 hash."""
    h = (key + seed + 0x9E3779B97F4A7C15) & _MASK64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


class HashMap:
    """u64 -> u64 chained hash map."""

    def __init__(self, mem, allocator, root):
        self._mem = mem
        self._alloc = allocator
        self.root = root
        self._hdr = _HEADER.view(mem, root)
        # Bound word accessors for the hot operations (the accessor's
        # identity is fixed for this instance's life; restart paths build
        # a fresh HashMap).
        self._read_u64 = mem.read_u64
        self._write_u64 = mem.write_u64

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, mem, allocator, capacity=1024, seed=0x5157):
        """Allocate and initialize an empty map; returns the instance."""
        if capacity < 1 or capacity & (capacity - 1):
            raise ReproError("capacity must be a power of two")
        root = allocator.alloc(_HEADER.size)
        buckets = allocator.alloc(capacity * WORD_SIZE)
        mem.begin()
        mem.memset(buckets, capacity * WORD_SIZE, 0)
        hdr = _HEADER.view(mem, root)
        hdr.set("capacity", capacity)
        hdr.set("count", 0)
        hdr.set("buckets", buckets)
        hdr.set("seed", seed)
        hdr.set("magic", MAP_MAGIC)
        mem.end()
        return cls(mem, allocator, root)

    @classmethod
    def attach(cls, mem, allocator, root):
        """Bind to an existing map at ``root``."""
        instance = cls(mem, allocator, root)
        if instance._hdr.get("magic") != MAP_MAGIC:
            raise ReproError("no hash map at offset 0x%x" % root)
        return instance

    # -- core operations --------------------------------------------------------

    def _bucket_addr(self, key, capacity=None, buckets=None):
        read = self._read_u64
        root = self.root
        if capacity is None:
            capacity = read(root + _HDR_CAPACITY)
        if buckets is None:
            buckets = read(root + _HDR_BUCKETS)
        index = _mix(key, read(root + _HDR_SEED)) & (capacity - 1)
        return buckets + index * WORD_SIZE

    def put(self, key, value):
        """Insert or update; returns True if a new key was inserted."""
        read = self._read_u64
        write = self._write_u64
        bucket = self._bucket_addr(key)
        node = read(bucket)
        self._mem.begin()
        while node != NULL_ADDR:
            if read(node + _NODE_KEY) == key:
                write(node + _NODE_VALUE, value)
                self._mem.end()
                return False
            node = read(node + _NODE_NEXT)
        head = read(bucket)
        node = self._alloc.alloc(_NODE.size)
        write(node + _NODE_KEY, key)
        write(node + _NODE_VALUE, value)
        write(node + _NODE_NEXT, head)
        write(bucket, node)
        root = self.root
        count = read(root + _HDR_COUNT) + 1
        write(root + _HDR_COUNT, count)
        self._mem.end()
        if count > read(root + _HDR_CAPACITY) * MAX_LOAD:
            self._grow()
        return True

    def get(self, key, default=None):
        """Return the value for ``key`` (or ``default``)."""
        read = self._read_u64
        node = read(self._bucket_addr(key))
        while node != NULL_ADDR:
            if read(node + _NODE_KEY) == key:
                return read(node + _NODE_VALUE)
            node = read(node + _NODE_NEXT)
        return default

    def remove(self, key):
        """Delete ``key``; returns True if it was present."""
        read = self._read_u64
        write = self._write_u64
        bucket = self._bucket_addr(key)
        prev_link = bucket
        node = read(bucket)
        while node != NULL_ADDR:
            if read(node + _NODE_KEY) == key:
                self._mem.begin()
                write(prev_link, read(node + _NODE_NEXT))
                self._alloc.free(node, _NODE.size)
                root = self.root
                write(root + _HDR_COUNT, read(root + _HDR_COUNT) - 1)
                self._mem.end()
                return True
            prev_link = node + _NODE_NEXT
            node = read(node + _NODE_NEXT)
        return False

    def __contains__(self, key):
        return self.get(key) is not None

    def __len__(self):
        return self._hdr.get("count")

    # -- resize -------------------------------------------------------------------

    def _grow(self):
        """Double the bucket array and relink every node."""
        old_capacity = self._hdr.get("capacity")
        old_buckets = self._hdr.get("buckets")
        new_capacity = old_capacity * 2
        new_buckets = self._alloc.alloc(new_capacity * WORD_SIZE)
        self._mem.begin()
        self._mem.memset(new_buckets, new_capacity * WORD_SIZE, 0)
        for index in range(old_capacity):
            node = self._mem.read_u64(old_buckets + index * WORD_SIZE)
            while node != NULL_ADDR:
                view = _NODE.view(self._mem, node)
                next_node = view.get("next")
                target = self._bucket_addr(view.get("key"),
                                           capacity=new_capacity,
                                           buckets=new_buckets)
                view.set("next", self._mem.read_u64(target))
                self._mem.write_u64(target, node)
                node = next_node
        self._hdr.set("buckets", new_buckets)
        self._hdr.set("capacity", new_capacity)
        self._mem.end()
        self._alloc.free(old_buckets, old_capacity * WORD_SIZE)

    # -- iteration ------------------------------------------------------------------

    def items(self):
        """Yield ``(key, value)`` pairs (no particular order)."""
        capacity = self._hdr.get("capacity")
        buckets = self._hdr.get("buckets")
        for index in range(capacity):
            node = self._mem.read_u64(buckets + index * WORD_SIZE)
            while node != NULL_ADDR:
                view = _NODE.view(self._mem, node)
                yield view.get("key"), view.get("value")
                node = view.get("next")

    def keys(self):
        """Yield all keys."""
        for key, _value in self.items():
            yield key

    def to_dict(self):
        """Materialize as a Python dict (verification helper)."""
        return dict(self.items())

    @property
    def capacity(self):
        """Current bucket count."""
        return self._hdr.get("capacity")

    def __repr__(self):
        return "HashMap(root=0x%x, len=%d)" % (self.root, len(self))
