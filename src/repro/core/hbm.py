"""The device-side HBM cache of PM lines.

Paper §1/§5: load misses are "often served from an on-device
high-bandwidth memory cache of PM", which is how a PAX can approach DRAM
performance despite PM media latency. This is a simple LRU line cache:
associativity games buy nothing in a functional model, and the ablation
benchmark sweeps only capacity.

Coherence discipline: the HBM may only hold lines that match PM *or* are
about to be written to PM by the device itself. Lines granted to the host
in M state are invalidated here, and every device write-back refreshes the
mirror — so a hit is always the newest device-visible value.
"""

from collections import OrderedDict

from repro.errors import ProtocolError
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup


class HbmCache:
    """LRU cache of ``capacity_lines`` PM lines (0 disables it)."""

    def __init__(self, capacity_lines):
        self.capacity_lines = capacity_lines
        self._lines = OrderedDict()
        #: Optional ``callback(pool_addr, data)`` fired for every LRU
        #: victim — the device hangs its miss-path mechanism capture
        #: here so victims can fall into a side buffer instead of
        #: vanishing (see repro.cache.mechanisms).
        self.on_evict = None
        self.stats = StatGroup("hbm")
        # Per-access counters bound once (hot-path-stat-lookup rule).
        self._c_hits = self.stats.counter("hits")
        self._c_misses = self.stats.counter("misses")
        self._c_evictions = self.stats.counter("evictions")
        self._c_invalidations = self.stats.counter("invalidations")

    @property
    def enabled(self):
        """False when configured with zero capacity (the ablation)."""
        return self.capacity_lines > 0

    def get(self, pool_addr):
        """Return cached line data or None; refreshes recency."""
        data = self._lines.get(pool_addr)
        if data is None:
            self._c_misses.add(1)
            return None
        self._lines.move_to_end(pool_addr)
        self._c_hits.add(1)
        return data

    def put(self, pool_addr, data):
        """Cache ``data`` for ``pool_addr`` (evicting LRU if full)."""
        if not self.enabled:
            return
        data = bytes(data)
        if len(data) != CACHE_LINE_SIZE:
            raise ProtocolError("HBM caches whole lines")
        self._lines[pool_addr] = data
        self._lines.move_to_end(pool_addr)
        if len(self._lines) > self.capacity_lines:
            victim_addr, victim_data = self._lines.popitem(last=False)
            self._c_evictions.add(1)
            if self.on_evict is not None:
                self.on_evict(victim_addr, victim_data)

    def peek(self, pool_addr):
        """Return cached data without touching recency or hit statistics."""
        return self._lines.get(pool_addr)

    def invalidate(self, pool_addr):
        """Drop the line (host took ownership; our copy may go stale)."""
        if self._lines.pop(pool_addr, None) is not None:
            self._c_invalidations.add(1)

    def clear(self):
        """HBM is volatile: a crash empties it."""
        self._lines.clear()

    def __len__(self):
        return len(self._lines)

    def __contains__(self, pool_addr):
        return pool_addr in self._lines
