"""Crash-consistency fuzzing: crash point x fault plan x structure.

Each iteration builds a small PAX machine on a
:class:`~repro.faults.FaultyPmDevice`, runs a random mutation/persist
workload mirrored into a :class:`SnapshotTracker`, crashes it at a random
store count under a random :class:`~repro.faults.FaultPlan` (torn
in-flight write, metadata bit flips, lossy link), and then recovers.

Exactly two outcomes are acceptable:

``exact``
    Recovery succeeds and the structure's contents equal the last
    persisted snapshot, bit for bit, with structural integrity intact.
``detected``
    Recovery raises :class:`~repro.errors.RecoveryError` carrying a
    populated :class:`~repro.core.recovery.RecoveryReport` — the fault
    was damage the undo-log scheme cannot repair (e.g. a flipped bit in
    an interior log entry) and it was *reported*, not silently absorbed.

(A third, vanishingly rare ``link_exhausted`` outcome covers a lossy
link giving up loudly after ``max_retries`` — bounded retries working as
specified.) Everything else — a content mismatch, an untyped exception,
a ``struct.error`` escaping the recovery path — is a failure, recorded
with the iteration's seed and plan so it replays exactly.

A second target (``--target autopass``) fuzzes a WAL *backend* instead
of the PAX pool: the auto-instrumented ``autopass`` backend runs a
random put/remove workload mirrored into a plain dict, is cut by a
:class:`~repro.crashtest.injector.CrashInjector` at a random store
count (including mid-``put``, mid-``remove``, and mid-resize), and must
recover to the completed-op state plus at most an atomic prefix of the
in-flight operation (:func:`~repro.crashtest.checker.
check_prefix_atomic`). Under ``--sanitize`` that target runs with
WalSan attached, so a missing-undo or fence-inversion during the
workload is a failure even if recovery happens to get lucky.

Run from the command line::

    python -m repro.crashtest.fuzz --iterations 500 --seed 1234
    python -m repro.crashtest.fuzz --target autopass --sanitize
"""

import argparse
import sys

from repro.cache.cache import CacheConfig
from repro.crashtest.checker import (
    SnapshotTracker,
    check_prefix_atomic,
    verify_map_integrity,
)
from repro.errors import LinkError, RecoveryError, ReproError, SanitizerError
from repro.faults.device import FaultyPmDevice
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.libpax.pool import PaxPool
from repro.sanitizer import PaxSanitizer
from repro.sim.rng import DeterministicRng
from repro.structures.btree import BTree
from repro.structures.hashmap import HashMap

#: Structures the fuzzer alternates between (both are ordered maps from
#: the fuzzer's point of view: put/remove/get/items).
STRUCTURES = (("hashmap", HashMap), ("btree", BTree))

#: Small pool + small caches: evictions and write-backs happen within a
#: few dozen operations, so crash points land on interesting states.
POOL_SIZE = 2 * 1024 * 1024
LOG_SIZE = 64 * 1024
KEY_SPACE = 16
MAX_STORES_UNTIL_CRASH = 300

#: Backend targets ``--target`` accepts besides the default PAX pool.
#: Tiny capacity so the workload's key space forces a mid-run resize.
BACKEND_TARGETS = ("autopass",)
BACKEND_WAL_SIZE = 128 * 1024
BACKEND_CAPACITY = 4


def _small_caches():
    return dict(
        l1_config=CacheConfig(size_bytes=4 * 1024, ways=4),
        l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
        llc_config=CacheConfig(size_bytes=64 * 1024, ways=8),
    )


class FuzzFailure(ReproError):
    """One iteration violated the crash-consistency contract."""


class FuzzStats:
    """Aggregate outcome counts plus per-failure replay info."""

    def __init__(self):
        self.iterations = 0
        self.outcomes = {"exact": 0, "detected": 0, "link_exhausted": 0}
        self.crashed_in_flight = 0     # crash fired mid-operation
        self.plans_torn = 0
        self.plans_flipped = 0
        self.plans_lossy = 0
        self.failures = []             # (iteration, seed, plan, message)

    def record_plan(self, plan):
        """Tally which fault types one iteration's plan exercises."""
        self.plans_torn += bool(plan.torn_write)
        self.plans_flipped += bool(plan.bitflips)
        self.plans_lossy += plan.link is not None

    @property
    def ok(self):
        """True if every iteration held the crash-consistency contract."""
        return not self.failures

    def summary(self):
        """Multi-line human-readable report (printed by the CLI)."""
        lines = ["fuzz: %d iterations — %d exact, %d detected, "
                 "%d link-exhausted, %d FAILED"
                 % (self.iterations, self.outcomes["exact"],
                    self.outcomes["detected"],
                    self.outcomes["link_exhausted"], len(self.failures)),
                 "      plans: %d torn-write, %d bit-flip, %d lossy-link; "
                 "%d crashes cut an operation mid-flight"
                 % (self.plans_torn, self.plans_flipped, self.plans_lossy,
                    self.crashed_in_flight)]
        for iteration, seed, plan, message in self.failures[:10]:
            lines.append("  FAIL iter=%d seed=%d [%s]: %s"
                         % (iteration, seed, plan.describe(), message))
        return "\n".join(lines)


def run_iteration(seed, allow_link=True, sanitize=False, tracer=None):
    """One fuzz iteration.

    Returns ``(outcome, crashed_in_flight)`` where outcome is ``exact``,
    ``detected``, or ``link_exhausted``; raises :class:`FuzzFailure` on a
    contract violation. With ``sanitize``, PaxSan shadows the iteration
    and any persist-order violation it reports is a failure too. With
    ``tracer`` (a ``repro.obs`` :class:`~repro.obs.tracer.ObsTracer`),
    the iteration's events accumulate into its ring; combined with
    ``sanitize`` the machine's single tracer slot is shared through a
    :class:`~repro.obs.tracer.TeeTracer`.
    """
    rng = DeterministicRng(seed)
    plan = FaultPlan.random(rng.fork("plan"), allow_link=allow_link)
    _name, structure_cls = STRUCTURES[rng.randint(0, len(STRUCTURES) - 1)]

    device = FaultyPmDevice("pm0", POOL_SIZE)
    pool = PaxPool.map_pool(pm_device=device, pool_size=POOL_SIZE,
                            log_size=LOG_SIZE, link_faults=plan.link,
                            **_small_caches())
    if sanitize:
        PaxSanitizer().attach(pool.machine)
    if tracer is not None:
        sanitizer = pool.machine.tracer        # set above when sanitizing
        tracer.attach(pool.machine)
        if sanitizer is not None:
            from repro.obs.tracer import TeeTracer
            pool.machine.attach_tracer(TeeTracer([sanitizer, tracer]))
        tracer.instant("recovery", "fuzz-iteration", {"seed": seed})
    structure = pool.persistent(structure_cls)
    tracker = SnapshotTracker()

    injector = FaultInjector(pool.machine, plan, rng=rng.fork("faults"))
    injector.arm(rng.randint(0, MAX_STORES_UNTIL_CRASH))

    op_rng = rng.fork("ops")

    def workload():
        for _ in range(op_rng.randint(10, 60)):
            roll = op_rng.random()
            key = op_rng.randint(0, KEY_SPACE - 1)
            if roll < 0.55:
                value = op_rng.randint(0, 2**32)
                structure.put(key, value)
                tracker.put(key, value)
            elif roll < 0.80:
                structure.remove(key)
                tracker.remove(key)
            else:
                # persist() issues no CPU stores, so the armed crash can
                # never cut a snapshot commit in half from the host side;
                # torn *device* writes are the FaultPlan's job.
                pool.persist()
                tracker.persist()

    try:
        crashed = injector.run(workload)
    except SanitizerError as exc:
        raise FuzzFailure("sanitizer violation during workload: %s" % exc)
    except LinkError:
        # The lossy link exhausted its retransmit budget: a loud, typed,
        # bounded failure. Astronomically rare at the drop rates
        # FaultPlan.random draws, but a legitimate outcome.
        return "link_exhausted", False
    if not crashed:
        # The workload outran the crash point; cut the power now so every
        # iteration exercises recovery.
        injector.crash()

    # A double fault can destroy every durable trace of the newest
    # commit: the tear reverts the log reset (re-arming the old epoch's
    # entries) while the bit flip kills the new epoch slot. The durable
    # bytes are then indistinguishable from "crashed before that commit",
    # and recovery lands — correctly — one snapshot back. Dual-slot
    # redundancy bounds the loss to exactly one snapshot per crash.
    acceptable = [tracker.snapshot]
    if plan.torn_write \
            and any(s.region == "epoch" for s in plan.bitflips) \
            and len(tracker.history) >= 2:
        acceptable.append(tracker.history[-2])

    try:
        pool.restart()
        recovered = pool.reattach_root(structure_cls)
        pairs = verify_map_integrity(recovered)
        if pairs not in acceptable:
            tracker.check_snapshot(pairs)   # raises with the diff
    except RecoveryError as exc:
        if exc.report is None:
            raise FuzzFailure(
                "RecoveryError without a RecoveryReport: %s" % exc)
        return "detected", crashed
    except ReproError as exc:
        raise FuzzFailure("post-recovery check failed: %s" % exc)
    except Exception as exc:   # struct.error etc. — the bugs fuzzing hunts
        raise FuzzFailure("unhandled %s escaped recovery: %s"
                          % (type(exc).__name__, exc))
    return "exact", crashed


class _BackendPlan:
    """Stand-in for :class:`FaultPlan` in backend-target records.

    Backend mode injects only crash points (no device fault plans), but
    :class:`FuzzStats` failure entries carry a ``describe()``-able plan
    for replay lines; this keeps the summary format uniform.
    """

    torn_write = None
    bitflips = ()
    link = None

    def __init__(self, name):
        self._name = name

    def describe(self):
        return "backend=%s crash-point-only" % self._name


def run_backend_iteration(seed, backend_name="autopass", sanitize=False):
    """One backend-mode fuzz iteration (``--target autopass``).

    Builds the named per-op-durable WAL backend on a small PM heap
    (capacity 4, so the 16-key workload forces at least one resize),
    runs a random put/remove workload mirrored into a plain dict, cuts
    it at a random CPU-store count, recovers, and checks per-op
    durability: the recovered contents must equal the completed-op
    state plus at most an atomic prefix of the in-flight operation.
    With ``sanitize``, WalSan shadows the run and any persist-order
    violation is a failure. Returns ``(outcome, crashed_in_flight)``
    like :func:`run_iteration`.
    """
    from repro.baselines.pax import make_backend
    from repro.crashtest.injector import CrashInjector
    from repro.sanitizer import WalSanitizer

    rng = DeterministicRng(seed)
    backend = make_backend(backend_name, heap_size=POOL_SIZE,
                           wal_size=BACKEND_WAL_SIZE,
                           capacity=BACKEND_CAPACITY, **_small_caches())
    if sanitize:
        WalSanitizer().attach(backend)
    state = backend.to_dict()
    inflight = []

    injector = CrashInjector(backend.machine)
    injector.arm(rng.randint(1, MAX_STORES_UNTIL_CRASH))
    op_rng = rng.fork("ops")

    def workload():
        for _ in range(op_rng.randint(10, 60)):
            roll = op_rng.random()
            key = op_rng.randint(0, KEY_SPACE - 1)
            # The mirror updates only after the backend op returns, so a
            # crash mid-op leaves ``state`` at the completed prefix and
            # ``inflight`` naming the cut operation.
            if roll < 0.65:
                value = op_rng.randint(0, 2**32)
                inflight.append(("put", key, value))
                backend.put(key, value)
                state[key] = value
            else:
                inflight.append(("remove", key, None))
                backend.remove(key)
                state.pop(key, None)
            del inflight[:]

    try:
        crashed = injector.run(workload)
    except SanitizerError as exc:
        raise FuzzFailure("sanitizer violation during workload: %s" % exc)
    if not crashed:
        # The workload outran the crash point; cut the power now so
        # every iteration exercises recovery.
        backend.crash()

    try:
        backend.restart()
        recovered = verify_map_integrity(backend)
        check_prefix_atomic(recovered, inflight, base_state=state)
        # Liveness: the recovered backend must still take writes.
        backend.put(0, 0xC0FFEE)
        if backend.get(0) != 0xC0FFEE:
            raise ReproError("post-recovery put() not visible")
    except ReproError as exc:
        raise FuzzFailure("post-recovery check failed: %s" % exc)
    except Exception as exc:   # struct.error etc. — the bugs fuzzing hunts
        raise FuzzFailure("unhandled %s escaped recovery: %s"
                          % (type(exc).__name__, exc))
    return "exact", crashed


def run_fuzz(iterations=500, seed=1234, allow_link=True, progress=None,
             sanitize=False, tracer=None, target="pool"):
    """Run ``iterations`` seeded iterations; returns a :class:`FuzzStats`.

    One ``tracer`` spans the whole sweep — each iteration re-attaches it
    to that iteration's fresh machine, so the ring ends up holding the
    (newest) events across iterations, delimited by ``fuzz-iteration``
    instants. ``target`` selects what gets fuzzed: ``"pool"`` (the PAX
    pool, default) or a backend name from :data:`BACKEND_TARGETS`.
    """
    if target != "pool" and target not in BACKEND_TARGETS:
        raise ReproError("unknown fuzz target %r (have pool, %s)"
                         % (target, ", ".join(BACKEND_TARGETS)))
    stats = FuzzStats()
    master = DeterministicRng(seed)
    for iteration in range(iterations):
        iter_seed = master.randint(0, 2**62)
        if target == "pool":
            plan_preview = FaultPlan.random(
                DeterministicRng(iter_seed).fork("plan"),
                allow_link=allow_link)
            stats.record_plan(plan_preview)
        else:
            plan_preview = _BackendPlan(target)
        try:
            if target == "pool":
                outcome, in_flight = run_iteration(iter_seed,
                                                   allow_link=allow_link,
                                                   sanitize=sanitize,
                                                   tracer=tracer)
            else:
                outcome, in_flight = run_backend_iteration(
                    iter_seed, backend_name=target, sanitize=sanitize)
            stats.outcomes[outcome] += 1
            stats.crashed_in_flight += in_flight
        except FuzzFailure as exc:
            stats.failures.append((iteration, iter_seed, plan_preview,
                                   str(exc)))
        stats.iterations += 1
        if progress and (iteration + 1) % progress == 0:
            print("  ... %d/%d (%d exact, %d detected, %d failed)"
                  % (iteration + 1, iterations, stats.outcomes["exact"],
                     stats.outcomes["detected"], len(stats.failures)),
                  flush=True)
    return stats


def record_witness_trace(path, seed=1234, ops=48):
    """Record a witness trace for the staticcheck witness pass.

    Runs a seeded put/remove workload on a fresh ``pax`` backend and
    deliberately stops *without* a final ``persist()``, so the trace
    ends with unprotected PM stores — exactly the crash window the
    static persist-order findings warn about. Feeding the written file
    to ``python -m repro.staticcheck --interprocedural --witness-trace``
    upgrades the findings it reaches to ``confirmed``.
    """
    from repro.baselines.pax import make_backend
    from repro.replay.recorder import record

    rng = DeterministicRng(seed)
    backend = make_backend("pax", pool_size=POOL_SIZE, log_size=LOG_SIZE,
                           capacity=BACKEND_CAPACITY, **_small_caches())

    def drive(live, _recorder):
        for index in range(ops):
            key = rng.randint(0, KEY_SPACE - 1)
            if rng.random() < 0.75:
                live.put(key, index)
            else:
                live.remove(key)
        # No trailing persist: the final stores stay unprotected.

    trace = record(backend, drive, meta={"seed": seed, "ops": ops,
                                         "witness": True})
    trace.save(path)
    return trace


def main(argv=None):
    """CLI entry point; returns the process exit code (1 on failures)."""
    parser = argparse.ArgumentParser(
        description="Crash-consistency fuzzer: random crash points x "
                    "fault plans x structures.")
    parser.add_argument("--iterations", type=int, default=500)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--no-link-faults", action="store_true",
                        help="disable lossy-link plans (faster)")
    parser.add_argument("--progress", type=int, default=100, metavar="N",
                        help="print a progress line every N iterations "
                             "(0 = quiet)")
    parser.add_argument("--sanitize", action="store_true",
                        help="attach PaxSan (pool) / WalSan (backend "
                             "targets) to every iteration; a persist-"
                             "order violation fails the run")
    parser.add_argument("--target", choices=("pool",) + BACKEND_TARGETS,
                        default="pool",
                        help="what to fuzz: the PAX pool (default) or a "
                             "per-op-durable backend by name")
    parser.add_argument("--trace", metavar="PATH",
                        help="trace every iteration into one repro.obs "
                             "ring and write it as a JSONL trace "
                             "(pool target only)")
    parser.add_argument("--witness-out", metavar="PATH",
                        help="record a seeded pax workload ending in "
                             "unprotected stores as a replay trace at "
                             "PATH (for staticcheck --witness-trace) "
                             "and exit")
    args = parser.parse_args(argv)
    if args.witness_out:
        trace = record_witness_trace(args.witness_out, seed=args.seed)
        print("wrote %s (%d events, backend %s)"
              % (args.witness_out, len(trace),
                 trace.footer.get("backend")))
        return 0
    if args.trace and args.target != "pool":
        parser.error("--trace only supports --target pool")
    tracer = None
    if args.trace:
        from repro.obs import ObsTracer
        tracer = ObsTracer()
    stats = run_fuzz(iterations=args.iterations, seed=args.seed,
                     allow_link=not args.no_link_faults,
                     progress=args.progress or None,
                     sanitize=args.sanitize, tracer=tracer,
                     target=args.target)
    if tracer is not None:
        from repro.obs.export import write_jsonl
        write_jsonl(tracer.events(), args.trace)
        print("wrote %s (%d events, %d dropped)"
              % (args.trace, len(tracer.ring), tracer.ring.dropped))
    print(stats.summary())
    return 0 if stats.ok else 1


if __name__ == "__main__":
    sys.exit(main())
