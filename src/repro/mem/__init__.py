"""Memory substrate: devices, address map, accessors, layouts, page table."""

from repro.mem.accessor import (
    CountingAccessor,
    MemoryAccessor,
    OffsetAccessor,
    RawAccessor,
)
from repro.mem.address_space import AddressSpace, Mapping
from repro.mem.layout import Field, StructLayout, StructView
from repro.mem.page_table import FaultingAccessor, PagePermission, PageTable
from repro.mem.physical import DramDevice, MemoryDevice

__all__ = [
    "AddressSpace",
    "CountingAccessor",
    "DramDevice",
    "FaultingAccessor",
    "Field",
    "Mapping",
    "MemoryAccessor",
    "MemoryDevice",
    "OffsetAccessor",
    "PagePermission",
    "PageTable",
    "RawAccessor",
    "StructLayout",
    "StructView",
]
