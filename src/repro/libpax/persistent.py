"""``Persistent[T]`` — the paper's typed handle around a pool root.

A thin, explicit wrapper for applications that prefer the Listing-1 shape
(`Persistent<HashMap>::new(&allocator)`) over calling
:meth:`~repro.libpax.pool.PaxPool.persistent` directly. It delegates
attribute access to the underlying structure and adds ``persist()`` so a
handle is all an application needs to hold.
"""


class Persistent:
    """A handle to a pool's root structure.

    >>> pool = map_pool()                                   # doctest: +SKIP
    >>> ht = Persistent(pool, HashMap)                      # doctest: +SKIP
    >>> ht.put(1, 100); ht.persist()                        # doctest: +SKIP
    """

    def __init__(self, pool, structure_cls, **kwargs):
        self._pool = pool
        self._structure_cls = structure_cls
        self._value = pool.persistent(structure_cls, **kwargs)

    @property
    def value(self):
        """The underlying structure instance."""
        return self._value

    def persist(self):
        """Commit a crash-consistent snapshot of the whole pool."""
        return self._pool.persist()

    def reattach(self):
        """Re-bind after a pool restart (crash recovery)."""
        self._value = self._pool.reattach_root(self._structure_cls)
        return self._value

    def __getattr__(self, name):
        # Only called when normal lookup fails: delegate to the structure.
        return getattr(self._value, name)

    def __len__(self):
        return len(self._value)

    def __repr__(self):
        return "Persistent(%r)" % (self._value,)
