"""CLI for the wall-clock regression harness.

Examples::

    python -m repro.perfbench                          # full matrix -> BENCH_PR3.json
    python -m repro.perfbench --ops 4000 --out smoke.json
    python -m repro.perfbench --compare BENCH_PR3.json # measure, then grade
    python -m repro.perfbench --engine replay          # trace-replay engine
    python -m repro.perfbench --trace trace.jsonl      # + structured trace

``--compare`` prints a human verdict and also writes the full per-cell
comparison (wall-clock deltas, throughput ratios, sim_ns checks) as JSON
next to the report, for dashboards and CI artifacts.

Exit status: 0 on success, 1 on a comparison failure — wired for CI.
"""

import argparse
import json
import sys

from repro.perfbench import (BACKENDS, DEFAULT_OPS, DEFAULT_RECORDS,
                             DEFAULT_SEED, WORKLOADS, compare_report,
                             load_report, run_matrix, write_report)


def main(argv=None):
    """Run the benchmark matrix; return a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfbench",
        description="Measure simulator wall-clock throughput over a fixed "
                    "workload x backend matrix.")
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS,
                        help="timed operations per cell (default %(default)s)")
    parser.add_argument("--records", type=int, default=DEFAULT_RECORDS,
                        help="records preloaded before timing (default %(default)s)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload RNG seed (default %(default)s)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per cell; best wall-clock wins (default %(default)s)")
    parser.add_argument("--workloads", default=",".join(WORKLOADS),
                        help="comma-separated workload list (default %(default)s)")
    parser.add_argument("--backends", default=",".join(BACKENDS),
                        help="comma-separated backend list (default %(default)s)")
    parser.add_argument("--engine", default="access",
                        help="comma-separated engine list: access, replay "
                             "(default %(default)s)")
    parser.add_argument("--mechanisms", default=None,
                        help="miss-path mechanism spec applied to every "
                             "cell's host hierarchy, e.g. victim:32 or "
                             "stream:4x4+nextline:16 (default: none)")
    parser.add_argument("--mech-policy", default="lru",
                        help="replacement policy inside mechanisms that "
                             "have one (default %(default)s)")
    parser.add_argument("--out", default="BENCH_PR3.json",
                        help="report path (default %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="grade this run against a baseline report; "
                             "exit 1 on regression")
    parser.add_argument("--compare-out", metavar="PATH", default=None,
                        help="where to write the machine-readable per-cell "
                             "comparison JSON (default: <out> with a "
                             ".compare.json suffix)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional wall-clock drop vs the "
                             "baseline (default %(default)s)")
    parser.add_argument("--trace", metavar="PATH",
                        help="attach a repro.obs tracer to every cell and "
                             "write the events as a JSONL trace")
    parser.add_argument("--metrics", metavar="PATH",
                        help="dump every cell's stat counters/histograms "
                             "in Prometheus text format")
    args = parser.parse_args(argv)

    def progress(cell):
        print("%-12s %-10s %-7s %8.0f ops/s  (%.3fs wall, %d sim-ns)"
              % (cell["workload"], cell["backend"],
                 cell.get("engine", "access"), cell["ops_per_sec"],
                 cell["wall_s"], cell["sim_ns"]))

    tracer_factory = None
    cell_hook = None
    trace_handle = None
    registry = None
    if args.trace or args.metrics:
        # Imported lazily: an untraced perfbench run never touches obs.
        from repro.obs import MetricsRegistry, ObsTracer
        from repro.obs.export import write_jsonl
        if args.trace:
            trace_handle = open(args.trace, "w")
            write_jsonl((), trace_handle)        # header line only
            tracer_factory = ObsTracer
        if args.metrics:
            registry = MetricsRegistry()

        def cell_hook(cell, backend, tracer):
            label = "%s/%s" % (cell["workload"], cell["backend"])
            if trace_handle is not None:
                write_jsonl(tracer.events(), trace_handle,
                            extra={"cell": label}, header=False)
            if registry is not None:
                registry.register_machine(backend, cell=label)

    try:
        report = run_matrix(workloads=args.workloads.split(","),
                            backends=args.backends.split(","),
                            ops=args.ops, records=args.records,
                            seed=args.seed, repeats=args.repeats,
                            progress=progress,
                            tracer_factory=tracer_factory,
                            cell_hook=cell_hook,
                            engines=args.engine.split(","),
                            mechanisms=args.mechanisms,
                            mech_policy=args.mech_policy)
    finally:
        if trace_handle is not None:
            trace_handle.close()
    write_report(report, args.out)
    print("wrote %s" % args.out)
    if args.trace:
        print("wrote %s" % args.trace)
    if registry is not None:
        with open(args.metrics, "w") as handle:
            handle.write(registry.to_prometheus())
        print("wrote %s" % args.metrics)

    if args.compare:
        grade = compare_report(report, load_report(args.compare),
                               tolerance=args.tolerance)
        compare_out = args.compare_out
        if compare_out is None:
            base = args.out
            if base.endswith(".json"):
                base = base[:-len(".json")]
            compare_out = base + ".compare.json"
        with open(compare_out, "w") as handle:
            json.dump(grade, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % compare_out)
        if grade["problems"]:
            for problem in grade["problems"]:
                print("REGRESSION: %s" % problem, file=sys.stderr)
            return 1
        print("no regression vs %s (tolerance %d%%)"
              % (args.compare, round(args.tolerance * 100)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
