"""Epoch replication to remote memory (paper §6).

"Different applications can use our techniques e.g., to enable efficient
transactions within a cluster of machines by connecting FPGAs over a
high-speed network or providing fault tolerance via remote memory."

This module implements the fault-tolerance half: every committed epoch's
modified lines are shipped to a *replica pool* — another PM device,
reachable over a network link — which applies them and advances its own
epoch cell. Fail over by opening the replica: it holds exactly the last
replicated snapshot.

Modes:

* ``sync`` — ``persist()`` returns only after the replica acknowledges;
  the committed snapshot is durable on two machines, at the price of a
  network round trip plus line transfer per epoch.
* ``async`` — epochs queue at the primary's device and drain in the
  background at link speed; failover may lose the trailing epochs (the
  replication lag), never a torn one.

Simulation scope (documented substitution): the replica applies an epoch
batch atomically — a production remote agent would stage the batch and
flip its epoch cell last, exactly like the local commit protocol; the
network agent and its staging buffer are abstracted into
:meth:`ReplicaTarget.apply`.
"""

from collections import deque

from repro.errors import ConfigError, ProtocolError
from repro.sim.bandwidth import BandwidthLimiter
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup

#: Datacenter-network defaults: ~2 us RTT, 25 Gb/s effective.
DEFAULT_RTT_NS = 2000.0
DEFAULT_BW_BPS = 3.125e9


class NetworkLink:
    """Round-trip latency + bandwidth between primary and replica."""

    def __init__(self, clock, rtt_ns=DEFAULT_RTT_NS,
                 bytes_per_second=DEFAULT_BW_BPS):
        if rtt_ns < 0:
            raise ConfigError("RTT cannot be negative")
        self.rtt_ns = rtt_ns
        self._limiter = BandwidthLimiter("replication", clock,
                                         bytes_per_second)
        self.stats = StatGroup("network_link")

    def ship(self, payload_bytes):
        """Cost (ns) of shipping ``payload_bytes`` and getting an ack."""
        delay = self._limiter.submit(payload_bytes)
        transfer = self._limiter.service_time_ns(payload_bytes)
        self.stats.counter("messages").add(1)
        self.stats.counter("bytes").add(payload_bytes)
        return self.rtt_ns + delay + transfer

    def transfer_ns(self, payload_bytes):
        """Pure wire time for ``payload_bytes`` (async pacing, no queue)."""
        return self.rtt_ns + self._limiter.service_time_ns(payload_bytes)


class ReplicaTarget:
    """The remote pool that receives epoch batches."""

    def __init__(self, pool):
        self.pool = pool
        self.stats = StatGroup("replica")

    def apply(self, epoch, lines, root_ptr=None, root_kind=None):
        """Apply one epoch batch: ``{pool_addr: line_bytes}``, then commit.

        Epochs must arrive in order; gaps mean the wire protocol broke.
        ``root_ptr``/``root_kind`` mirror the primary's superblock cells
        so a failover can find the structure.
        """
        expected = self.pool.committed_epoch + 1
        if epoch != expected:
            raise ProtocolError(
                "replica expected epoch %d, got %d" % (expected, epoch))
        for pool_addr, data in lines.items():
            self.pool.device.write(pool_addr, data)
        if root_ptr is not None:
            self.pool.root_ptr = root_ptr
        if root_kind is not None:
            self.pool.root_kind = root_kind
        self.pool.commit_epoch(epoch)
        self.stats.counter("epochs_applied").add(1)
        self.stats.counter("lines_applied").add(len(lines))

    @property
    def replicated_epoch(self):
        """Epoch of the newest snapshot the replica holds."""
        return self.pool.committed_epoch


class Replicator:
    """Ships committed epochs from a primary machine to a replica."""

    MODES = ("sync", "async")

    def __init__(self, machine, replica, link=None, mode="sync"):
        if mode not in self.MODES:
            raise ConfigError("replication mode must be sync or async")
        if replica.pool.data_base != machine.pool.data_base \
                or replica.pool.data_size != machine.pool.data_size:
            raise ConfigError(
                "replica pool layout differs from the primary's; format "
                "both with identical sizes")
        self.machine = machine
        self.replica = replica
        self.link = link or NetworkLink(machine.clock)
        self.mode = mode
        self._queue = deque()        # (epoch, {pool_addr: bytes})
        self._wrapped_persist = machine.persist
        machine.persist = self._persist_and_replicate
        machine.clock.on_advance(self._background_ship)
        self._net_busy_until_ns = 0.0
        self.stats = StatGroup("replicator")

    # -- capture -------------------------------------------------------------

    def _persist_and_replicate(self):
        # The touched set must be captured before persist clears it; the
        # line *values* must be read after persist has flushed them to PM.
        touched = list(self.machine.device.undo.touched_lines())
        latency = self._wrapped_persist()
        pool = self.machine.pool
        lines = {addr: pool.device.read(addr, CACHE_LINE_SIZE)
                 for addr in touched}
        batch = (pool.committed_epoch, lines, pool.root_ptr, pool.root_kind)
        if self.mode == "sync":
            ship_ns = self._ship(batch)
            self.machine.clock.advance(ship_ns)
            latency += ship_ns
        else:
            self._queue.append(batch + (self.machine.clock.now_ns,))
            self.stats.counter("epochs_queued").add(1)
        return latency

    # -- shipping ---------------------------------------------------------------

    def _payload_bytes(self, lines):
        return 64 + len(lines) * (8 + CACHE_LINE_SIZE)

    def _ship(self, batch):
        epoch, lines, root_ptr, root_kind = batch
        ship_ns = self.link.ship(self._payload_bytes(lines))
        self.replica.apply(epoch, lines, root_ptr, root_kind)
        self.stats.counter("epochs_shipped").add(1)
        return ship_ns

    def _background_ship(self, _prev_ns, now_ns):
        """Async mode: drain queued epochs at network speed.

        A batch completes only when the wire has had ``transfer_ns`` of
        simulated time for it; the network is a serial resource, so
        batches pipeline back to back.
        """
        while self._queue:
            epoch, lines, root_ptr, root_kind, enqueued_ns = self._queue[0]
            cost = self.link.transfer_ns(self._payload_bytes(lines))
            start = max(self._net_busy_until_ns, enqueued_ns)
            if start + cost > now_ns:
                return               # still in flight
            self._queue.popleft()
            self.replica.apply(epoch, lines, root_ptr, root_kind)
            self._net_busy_until_ns = start + cost
            self.stats.counter("epochs_shipped").add(1)

    # -- introspection ---------------------------------------------------------------

    @property
    def lag_epochs(self):
        """Epochs committed locally but not yet on the replica."""
        return (self.machine.pool.committed_epoch
                - self.replica.replicated_epoch)

    def failover(self, **machine_kwargs):
        """Bring the replica online as a new primary.

        Returns a fresh :class:`~repro.libpax.pool.PaxPool` over the
        replica's PM device, holding exactly the last replicated
        snapshot. (The old primary is presumed dead; its machine is left
        untouched.)
        """
        from repro.libpax.machine import PaxMachine
        from repro.libpax.pool import PaxPool
        machine = PaxMachine(pm_device=self.replica.pool.device,
                             **machine_kwargs)
        self.stats.counter("failovers").add(1)
        return PaxPool(machine)

    def flush(self):
        """Ship everything queued (async barrier); returns epochs shipped."""
        shipped = 0
        while self._queue:
            batch = self._queue.popleft()
            ship_ns = self._ship(batch[:4])
            self.machine.clock.advance(ship_ns)
            shipped += 1
        return shipped
