"""abl-cxlmode: CXL.cache vs CXL.mem PAX (paper §6).

"CXL.mem can support basic functionality, but it does not have as much
visibility into coherence as CXL.cache" — quantified. Same workload, two
protocol modes; the mem-mode device cannot snoop, so the host pays
serialized CLWB sweeps at persist(), and logging slides from ownership
time to write-back time (less background-drain headroom).
"""

from benchmarks.conftest import BENCH_CACHES
from repro.analysis.report import Table
from repro.libpax.pool import PaxPool
from repro.structures.hashmap import HashMap
from repro.workloads.keys import KeySequence

RECORDS = 8000
OPS = 3000
GROUP = 64
HEAP = 32 * 1024 * 1024


def run_mode(protocol):
    pool = PaxPool.map_pool(pool_size=HEAP, log_size=8 * 1024 * 1024,
                            protocol=protocol, **BENCH_CACHES)
    table = pool.persistent(HashMap, capacity=1 << 13)
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        table.put(load.next(), index)
    pool.persist()
    keys = KeySequence(RECORDS, "uniform", seed=2)
    start = pool.machine.now_ns
    persist_ns = []
    for index in range(OPS):
        table.put(keys.next(), index)
        if (index + 1) % GROUP == 0:
            persist_ns.append(pool.persist())
    elapsed = pool.machine.now_ns - start
    device = pool.machine.device
    return {
        "ns_per_op": elapsed / OPS,
        "mean_persist_ns": sum(persist_ns) / len(persist_ns),
        "log_records": device.undo.stats.get("records"),
        "device_messages": (device.stats.get("rd_shared")
                            + device.stats.get("rd_own")
                            + device.stats.get("dirty_evicts")
                            + device.stats.get("mem_rd")
                            + device.stats.get("mem_wr")),
    }


def run():
    return {protocol: run_mode(protocol)
            for protocol in ("cxl.cache", "cxl.mem")}


def test_cxl_modes(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-cxlmode: protocol visibility comparison",
                  ["protocol", "ns/op", "mean persist (ns)",
                   "undo records", "device messages"])
    for protocol, row in results.items():
        table.add_row(protocol, row["ns_per_op"], row["mean_persist_ns"],
                      row["log_records"], row["device_messages"])
    table.show()
    cache_mode = results["cxl.cache"]
    mem_mode = results["cxl.mem"]
    # The visibility gap shows up as a costlier commit path.
    assert mem_mode["mean_persist_ns"] > cache_mode["mean_persist_ns"]
    # Both modes keep logging line-granular (records of the same order).
    assert mem_mode["log_records"] < cache_mode["log_records"] * 3
