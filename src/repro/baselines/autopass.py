"""The auto-instrumented undo-WAL backend (staticcheck ``--fix`` output).

Where :mod:`repro.baselines.pmdk` hand-instruments the hash table with
per-operation transactions, this backend binds the *generated* module
:mod:`repro.baselines._autopass_gen`: the volatile structure source
with ``begin()``/``end()`` gates inserted by the staticcheck
persist-order auto-fix pass (``python -m repro.staticcheck.autogen``).
No hand-written gate site exists on the data path — the structure code
carries the fixer's gates, and this accessor gives them undo-logging
semantics identical to the PMDK baseline: first touch of a line logs
its old value (TX_ADD), commit CLWBs every dirtied line, fences,
publishes the transaction id with one store, and fences again.

Two departures from the hand-written baseline, both consequences of
auto-placement rather than choices:

* Gates nest. A gated region in ``put`` calls the allocator, whose own
  metadata stores arrive while the gate is open; the accessor keeps a
  depth counter and commits only when the outermost gate closes, so
  allocator state rolls back with the operation that allocated.
* Stores *between* gated regions (the fixer only gates regions its
  must-analysis found uncovered inside one function — e.g. the
  trailing ``free`` after ``_grow``) hit the accessor at depth zero.
  Each such store runs as its own minimal transaction, so it is
  individually atomic and recovery stays sound; the worst a crash
  between two mini-transactions can do is leak a free block.
"""

import contextlib

from repro.baselines.base import StructureBackend
from repro.baselines.wal import DurableCells, Wal, WalLayout
from repro.baselines._autopass_gen import HashMap as AutoHashMap
from repro.errors import LogError
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HEAP_PHYS_BASE, HostMachine
from repro.mem.accessor import MemoryAccessor
from repro.pm.flush import FlushModel
from repro.util.bitops import split_lines
from repro.util.constants import CACHE_LINE_SIZE


class AutopassAccessor(MemoryAccessor):
    """Undo logging driven by fixer-inserted ``begin()``/``end()`` gates.

    The structure code calls the gates; the accessor owns transaction
    ids, the undo log, and the commit sequence. Depth-zero stores are
    wrapped in a one-store mini-transaction as a safety net.
    """

    def __init__(self, inner, wal, space, flush, machine, cells):
        self._inner = inner
        self._wal = wal
        self._space = space
        self._flush = flush
        self._machine = machine
        self._cells = cells
        self._depth = 0
        self._tx_id = None
        self._next_tx = cells.committed_tx + 1
        self._logged = set()
        self._dirty = set()
        #: Committed gate transactions (perfbench's gate-count column).
        self.gate_commits = 0
        #: Optional tracer told about transaction boundaries.
        self.tracer = None

    # -- gate protocol -----------------------------------------------------

    def begin(self):
        """Open a gate; the outermost open starts a transaction."""
        if self._depth == 0:
            self._tx_id = self._next_tx
            self._logged.clear()
            self._dirty.clear()
            if self.tracer is not None:
                self.tracer.on_tx_begin(self._tx_id)
        self._depth += 1

    def end(self):
        """Close a gate; the outermost close commits the transaction."""
        if self._depth == 0:
            raise LogError("gate underflow: end() without begin()")
        self._depth -= 1
        if self._depth == 0:
            self._commit()

    @contextlib.contextmanager
    def transaction(self):
        """``with``-style gate (the fixer's ``with`` idiom)."""
        self.begin()
        try:
            yield self
        finally:
            self.end()

    @property
    def in_tx(self):
        """True while any gate is open."""
        return self._depth > 0

    def reset(self, next_tx):
        """Drop open-gate state after a crash (recovery rolled it back)."""
        self._depth = 0
        self._tx_id = None
        self._next_tx = next_tx
        self._logged.clear()
        self._dirty.clear()

    def _commit(self):
        """PMDK-ordered publish: CLWB dirty lines, SFENCE, id, SFENCE."""
        if self.tracer is not None:
            self.tracer.on_tx_end()
        for line in sorted(self._dirty):
            phys = HEAP_PHYS_BASE + line
            self._flush.clwb(phys, CACHE_LINE_SIZE)
            self._machine.hierarchy.writeback_line(phys)
        self._flush.sfence()
        self._cells.committed_tx = self._tx_id
        self._flush.sfence()
        self._next_tx = self._tx_id + 1
        self._tx_id = None
        self._logged.clear()
        self._dirty.clear()
        self._wal.reset()
        self.gate_commits += 1

    # -- data path ---------------------------------------------------------

    def read(self, addr, length):
        return self._inner.read(addr, length)

    def write(self, addr, data):
        data = bytes(data)
        if self._depth == 0:
            # Ungated store (allocator metadata between gated regions):
            # run it as its own minimal transaction.
            self.begin()
            try:
                self._tx_write(addr, data)
            finally:
                self.end()
        else:
            self._tx_write(addr, data)

    def _tx_write(self, addr, data):
        for line, _off, _len in split_lines(addr, len(data)):
            if line not in self._logged:
                # TX_ADD: the durable pre-image is the pre-tx PM state,
                # so snapshot the medium, not the caches.
                old = self._space.read(HEAP_PHYS_BASE + line,
                                       CACHE_LINE_SIZE)
                self._wal.append(self._tx_id, line, old, fence=True)
                self._logged.add(line)
            self._dirty.add(line)
        self._inner.write(addr, data)


class AutopassBackend(StructureBackend):
    """Auto-instrumented undo-WAL hash table on PM."""

    name = "autopass"
    crash_consistent = True

    def __init__(self, heap_size=64 * 1024 * 1024, wal_size=None,
                 capacity=1024, **machine_kwargs):
        super().__init__()
        self._machine = HostMachine(media="pm", heap_size=heap_size,
                                    **machine_kwargs)
        if wal_size is None:
            wal_size = min(4 * 1024 * 1024, heap_size // 8)
        self._layout = WalLayout(heap_size, wal_size)
        self._flush = FlushModel(self._machine.clock, self._machine.latency)
        self._cells = DurableCells(self._machine, self._layout)
        self._wal = Wal(self._machine, self._layout, self._flush)
        self._tx = AutopassAccessor(self._machine.mem(), self._wal,
                                    self._machine.space, self._flush,
                                    self._machine, self._cells)
        self._capacity = capacity
        if self._cells.root == 0:
            self._alloc = PmAllocator.create(self._tx,
                                             self._layout.arena_limit)
            self._bind_structure(self._tx, self._alloc, capacity=capacity)
            # Every store above committed through a gate or mini-tx, so
            # the empty structure is already durable; publish its root.
            self._cells.root = self._map.root
            self._flush.sfence()
        else:
            self._alloc = PmAllocator.attach(self._tx)
            self._reattach_structure(self._tx, self._alloc, self._cells.root)

    # The generated module, not repro.structures.hashmap: same code,
    # plus the fixer's gates.

    def _bind_structure(self, mem, allocator, capacity=1024):
        self._map = AutoHashMap.create(mem, allocator, capacity=capacity)

    def _reattach_structure(self, mem, allocator, root):
        self._map = AutoHashMap.attach(mem, allocator, root)

    @property
    def machine(self):
        return self._machine

    def attach_tracer(self, tracer):
        """Wire a sanitizer/tracer into the machine, WAL, and accessor."""
        self._machine.attach_tracer(tracer)
        self._flush.tracer = tracer
        self._wal.tracer = tracer
        self._cells.tracer = tracer
        self._tx.tracer = tracer
        tracer.on_backend_attach(self, self._layout)

    def persist(self):
        """Gate commits are synchronously durable; nothing extra to do."""

    # -- crash / recovery --------------------------------------------------

    def restart(self):
        """Reboot, roll back any uncommitted transaction, re-attach."""
        self._machine.restart()
        committed = self._cells.committed_tx
        to_undo = [entry for entry in self._wal.scan()
                   if entry.epoch > committed]
        for entry in reversed(to_undo):
            data = entry.data.ljust(CACHE_LINE_SIZE, b"\x00")
            self._machine.space.write(HEAP_PHYS_BASE + entry.addr, data)
        self._wal.reset()
        self._tx.reset(committed + 1)
        self._alloc = PmAllocator.attach(self._tx)
        self._reattach_structure(self._tx, self._alloc, self._cells.root)
        return len(to_undo)

    @property
    def gate_count(self):
        """Committed gate transactions (auto-placed-gate accounting)."""
        return self._tx.gate_commits

    @property
    def sfence_count(self):
        """Ordering stalls so far."""
        return self._flush.sfence_count

    @property
    def wal_bytes(self):
        """Bytes of undo log written (write-amplification accounting)."""
        return self._wal.stats.get("bytes")
