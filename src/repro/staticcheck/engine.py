"""The staticcheck engine: checker registry, context, baseline, CLI.

Mirrors :mod:`repro.lint.engine` deliberately — same finding type, same
``# lint: ignore[...]`` suppressions (one vocabulary for both tools),
same exit-code contract (0 clean / 1 findings / 2 usage-or-crash) — but
a checker gets a :class:`CheckContext` with *flow* machinery on top of
the parsed AST: per-function CFGs (built lazily, cached), the module's
import map, and the whole run's :class:`~repro.staticcheck.callgraph.
ProjectIndex` for cross-function questions.
"""

import argparse
import ast
import os
import re
import sys

from repro.errors import LintError
from repro.lint.engine import (
    LintContext,
    LintFinding,
    SuppressionIndex,
    iter_python_files,
    render_findings,
)
from repro.staticcheck.baseline import (
    Baseline,
    discover_baseline,
    path_key,
    write_baseline,
)
from repro.staticcheck.callgraph import ProjectIndex
from repro.staticcheck.cfg import build_cfg

_CHECKERS = {}


class Checker:
    """One registered flow checker: id, summary, callable."""

    __slots__ = ("checker_id", "summary", "check")

    def __init__(self, checker_id, summary, check):
        self.checker_id = checker_id
        self.summary = summary
        self.check = check


def checker(checker_id, summary):
    """Decorator registering a flow checker, mirroring ``lint.rule``.

    The wrapped function takes a :class:`CheckContext` and yields
    ``(lineno, col, message)`` findings.
    """
    if not re.fullmatch(r"[a-z][a-z0-9\-]*", checker_id):
        raise LintError("checker id %r must be kebab-case" % (checker_id,))

    def decorator(func):
        if checker_id in _CHECKERS:
            raise LintError("duplicate checker id %r" % (checker_id,))
        _CHECKERS[checker_id] = Checker(checker_id, summary, func)
        return func
    return decorator


def all_checkers():
    """The registered catalogue as ``{checker_id: Checker}`` (a copy)."""
    return dict(_CHECKERS)


class CheckContext(LintContext):
    """Everything a flow checker may inspect about one file."""

    def __init__(self, path, source, tree, project=None):
        LintContext.__init__(self, path, source, tree)
        #: ProjectIndex over the whole run (None for single-file calls).
        self.project = project
        #: InterprocAnalysis when running whole-program mode (else None);
        #: checkers consult it for callee summaries and register
        #: candidate metadata on it.
        self.interproc = None
        self._cfgs = {}
        self._functions = None
        self._imports = None

    # -- path scoping -----------------------------------------------------

    def has_segment(self, *names):
        """True if any path component equals one of ``names``.

        Unlike :meth:`in_package` this matches fixture trees too
        (``tests/fixtures/staticcheck/structures/bad.py`` has a
        ``structures`` segment), which is what keeps the seeded-violation
        fixtures honest: they run through exactly the production scoping.
        """
        parts = self.norm_path.split("/")
        return any(name in parts for name in names)

    # -- module facts -----------------------------------------------------

    @property
    def imports(self):
        """Local name -> source module, from top-level imports."""
        if self._imports is None:
            imports = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        imports[local] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        imports[alias.asname or alias.name] = node.module
            self._imports = imports
        return self._imports

    def functions(self):
        """Every function in the file as ``(qualname, node)``, including
        nested functions and methods (lambdas are not CFG material)."""
        if self._functions is None:
            collected = []

            def visit(body, prefix):
                for node in body:
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qualname = prefix + node.name
                        collected.append((qualname, node))
                        visit(node.body, qualname + ".")
                    elif isinstance(node, ast.ClassDef):
                        visit(node.body, prefix + node.name + ".")
                    else:
                        # Descend into compound statements (if/for/try/
                        # with bodies) so arbitrarily nested defs are
                        # found at the same qualname prefix.
                        nested = [child for child in ast.iter_child_nodes(node)
                                  if isinstance(child, ast.stmt)]
                        if nested:
                            visit(nested, prefix)
            visit(self.tree.body, "")
            self._functions = collected
        return self._functions

    def cfg(self, func):
        """The (cached) CFG for one function node."""
        if func not in self._cfgs:
            self._cfgs[func] = build_cfg(func)
        return self._cfgs[func]


def _select(selected):
    if selected is None:
        return list(_CHECKERS.values())
    chosen = []
    for checker_id in selected:
        if checker_id not in _CHECKERS:
            raise LintError("unknown checker %r (have %s)"
                            % (checker_id, ", ".join(sorted(_CHECKERS))))
        chosen.append(_CHECKERS[checker_id])
    return chosen


def check_source(path, source, project=None, selected=None, interproc=None):
    """Check one source string; returns a list of LintFinding.

    Same contract as ``lint_source``: syntax errors become a
    ``parse-error`` finding, suppressions are honoured per line (with
    multi-line statement awareness). ``interproc`` switches the
    checkers into whole-program mode (callee summaries resolve gates,
    candidates register their function metadata for the discharge
    filter).
    """
    checkers = _select(selected)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 1, exc.offset or 0,
                            "parse-error", str(exc.msg))]
    ctx = CheckContext(path, source, tree, project=project)
    ctx.interproc = interproc
    suppressions = SuppressionIndex(ctx.lines, tree)
    findings = []
    for checker_obj in checkers:
        for lineno, col, message in checker_obj.check(ctx):
            if suppressions.suppressed(lineno, checker_obj.checker_id):
                continue
            findings.append(LintFinding(path, lineno, col,
                                        checker_obj.checker_id, message))
    findings.sort(key=lambda f: (f.lineno, f.col, f.rule_id))
    return findings


def run_paths_details(paths, selected=None):
    """Check every Python file under ``paths``.

    Reads everything first to build the project index (the call graph
    spans the whole run), then checks file by file. Returns
    ``(findings, filenames)`` — the filenames scope baseline staleness
    checks to what this run actually looked at.
    """
    sources = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            sources.append((filename, handle.read()))
    project = ProjectIndex.build(sources)
    findings = []
    for filename, source in sources:
        findings.extend(check_source(filename, source, project=project,
                                     selected=selected))
    return findings, [filename for filename, _source in sources]


def run_paths(paths, selected=None):
    """:func:`run_paths_details` without the filename list."""
    return run_paths_details(paths, selected=selected)[0]


def run_interproc(paths, selected=None, cache_dir=None, use_cache=True):
    """Whole-program interprocedural run over ``paths``.

    Builds the project index and the
    :class:`~repro.staticcheck.interproc.InterprocAnalysis`, computes
    (or loads from the per-module summary cache) function summaries and
    raw findings, then applies the caller-direction discharge filter.
    Returns ``(findings, filenames, stats)`` where ``stats`` carries
    ``analyzed``/``total`` module counts and the discharge count.

    The cache is bypassed when a checker selection is active — entries
    always describe full-catalogue runs.
    """
    # Imported lazily: interproc pulls in the checkers, which import
    # this module at load time.
    from repro.staticcheck.cache import (
        CACHE_FORMAT,
        DEFAULT_CACHE_DIR,
        SALT,
        SummaryCache,
        content_hash,
        env_hashes,
    )
    from repro.staticcheck.interproc import InterprocAnalysis
    from repro.staticcheck.callgraph import module_key

    sources = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            sources.append((filename, handle.read()))
    project = ProjectIndex.build(sources)
    interproc = InterprocAnalysis(project)

    cache = None
    if use_cache and selected is None:
        cache = SummaryCache(cache_dir or DEFAULT_CACHE_DIR)
    contents = {}
    for filename, source in sources:
        contents[module_key(filename)] = content_hash(source)
    env = env_hashes(project, contents) if cache is not None else {}

    hits = {}
    if cache is not None:
        for filename, _source in sources:
            key = module_key(filename)
            if key not in project.modules:
                continue            # unparseable: always analyzed fresh
            entry = cache.load(key, filename, env.get(key))
            if entry is not None:
                hits[key] = entry

    for entry in hits.values():
        interproc.load_summaries(entry["summaries"])
    misses = [module_key(f) for f, _s in sources
              if module_key(f) not in hits]
    interproc.compute_summaries(misses)

    findings = []
    for filename, source in sources:
        key = module_key(filename)
        entry = hits.get(key)
        if entry is not None:
            for lineno, col, rule, message in entry["findings"]:
                findings.append(LintFinding(filename, lineno, col,
                                            rule, message))
            for lineno, col, qualname, entry_dep in entry["candidates"]:
                interproc.register_store(filename, lineno, col,
                                         qualname, entry_dep)
            continue
        file_findings = check_source(filename, source, project=project,
                                     selected=selected,
                                     interproc=interproc)
        findings.extend(file_findings)
        if cache is not None and key in project.modules:
            cache.store(key, {
                "format": CACHE_FORMAT,
                "salt": SALT,
                "path": filename,
                "module": key,
                "content_hash": contents[key],
                "env_hash": env.get(key),
                "summaries": interproc.summary_dicts(key),
                "findings": [[f.lineno, f.col, f.rule_id, f.message]
                             for f in file_findings],
                "candidates": interproc.candidates_for(filename),
            })

    findings = interproc.filter_findings(findings)
    stats = {
        "analyzed": len(sources) - len(hits),
        "total": len(sources),
        "discharged": len(interproc.discharged),
    }
    return findings, [filename for filename, _source in sources], stats


def main(argv=None):
    """CLI entry point; exit code 0 clean, 1 findings, 2 usage error."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Flow-aware static analysis (CFG/dataflow) over the "
                    "repro sources; see docs/analysis-tools.md.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check (default: src)")
    parser.add_argument("--select", action="append", metavar="CHECKER",
                        help="run only this checker id (repeatable)")
    parser.add_argument("--list-checkers", action="store_true",
                        help="print the checker catalogue and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout "
                             "(same as --format json)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None,
                        help="output format (default text; sarif suits "
                             "CI annotation upload)")
    parser.add_argument("--fix", action="store_true",
                        help="auto-insert persist gates for fixable "
                             "persist-order findings (rewrites files)")
    parser.add_argument("--fix-diff", action="store_true",
                        help="like --fix but print a unified diff on "
                             "stdout instead of writing files")
    parser.add_argument("--fix-style",
                        choices=("auto", "tx", "with", "wal"),
                        default="auto",
                        help="gate idiom for --fix/--fix-diff (default: "
                             "auto — pick per receiver)")
    parser.add_argument("--interprocedural", action="store_true",
                        help="whole-program mode: compute per-function "
                             "persistency summaries over the call graph, "
                             "discharge findings guaranteed by callees/"
                             "callers, annotate survivors with call paths")
    parser.add_argument("--witness-trace", action="append", metavar="FILE",
                        help="replay trace (repro.replay format) used to "
                             "ground surviving findings as 'confirmed' or "
                             "'static-only' (repeatable; implies "
                             "--interprocedural)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="summary cache directory for "
                             "--interprocedural (default: "
                             ".staticcheck-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the interprocedural summary cache")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="accepted-findings baseline (default: "
                             "discover staticcheck-baseline.txt)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline; report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current findings into the --baseline "
                             "file (default staticcheck-baseline.txt) and "
                             "exit 0")
    args = parser.parse_args(argv)

    if args.list_checkers:
        for checker_id, checker_obj in sorted(all_checkers().items()):
            print("%-18s %s" % (checker_id, checker_obj.summary))
        return 0

    paths = args.paths or ["src"]

    if args.fix or args.fix_diff:
        # Imported lazily: the fixer pulls in the checker internals,
        # and checkers import this module at load time.
        from repro.staticcheck.fixer import fix_paths
        fix_baseline = None
        if not args.no_baseline:
            baseline_path = args.baseline or discover_baseline(paths)
            if baseline_path is not None:
                try:
                    fix_baseline = Baseline.load(baseline_path)
                except (LintError, OSError) as exc:
                    print("staticcheck: error: %s" % exc, file=sys.stderr)
                    return 2
        try:
            return fix_paths(paths, style=args.fix_style,
                             diff_only=args.fix_diff,
                             baseline=fix_baseline)
        except LintError as exc:
            print("staticcheck: error: %s" % exc, file=sys.stderr)
            return 2

    if args.witness_trace:
        args.interprocedural = True

    try:
        if args.interprocedural:
            findings, checked_files, stats = run_interproc(
                paths, selected=args.select,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache)
            print("staticcheck: re-analyzed %d/%d module(s)"
                  % (stats["analyzed"], stats["total"]), file=sys.stderr)
            if stats["discharged"]:
                print("staticcheck: interprocedural summaries discharged "
                      "%d finding(s)" % stats["discharged"],
                      file=sys.stderr)
            if args.witness_trace:
                from repro.staticcheck.witness import apply_witnesses
                confirmed, static_only = apply_witnesses(
                    findings, args.witness_trace)
                print("staticcheck: witness: %d confirmed, "
                      "%d static-only" % (confirmed, static_only),
                      file=sys.stderr)
        else:
            findings, checked_files = run_paths_details(
                paths, selected=args.select)
    except LintError as exc:
        print("staticcheck: error: %s" % exc, file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or "staticcheck-baseline.txt"
        existing_notes = {}
        if os.path.isfile(target):
            existing_notes = Baseline.load(target).notes
        write_baseline(findings, target, notes=existing_notes)
        print("staticcheck: wrote %d finding(s) to %s"
              % (len(findings), target), file=sys.stderr)
        return 0

    accepted = []
    dead = []
    if not args.no_baseline:
        baseline_path = args.baseline or discover_baseline(paths)
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (LintError, OSError) as exc:
                print("staticcheck: error: %s" % exc, file=sys.stderr)
                return 2
            findings, accepted = baseline.apply(findings)
            checked_keys = {path_key(name) for name in checked_files}
            dead = baseline.dead_entries(accepted + findings, checked_keys)
            for dead_path, dead_rule in dead:
                print("staticcheck: error: baseline entry %s %s is dead "
                      "(that file/rule produces no finding any more); "
                      "remove it from %s"
                      % (dead_path, dead_rule, baseline_path),
                      file=sys.stderr)
            for stale_path, stale_rule, unused in \
                    baseline.stale_entries(accepted + findings):
                if (stale_path, stale_rule) in dead:
                    continue
                print("staticcheck: note: baseline entry %s %s has %d "
                      "unused slot(s)" % (stale_path, stale_rule, unused),
                      file=sys.stderr)

    fmt = args.format or ("json" if args.json else "text")
    rendered = render_findings(
        findings, fmt, "repro.staticcheck",
        rules={cid: c.summary for cid, c in all_checkers().items()})
    if rendered or fmt != "text":
        print(rendered)
    if dead and not findings:
        print("staticcheck: %d dead baseline entr%s" %
              (len(dead), "y" if len(dead) == 1 else "ies"),
              file=sys.stderr)
        return 1
    if findings:
        print("staticcheck: %d new finding(s)%s"
              % (len(findings),
                 " (%d baseline-accepted)" % len(accepted) if accepted
                 else ""),
              file=sys.stderr)
        return 1
    if accepted:
        print("staticcheck: clean (%d baseline-accepted finding(s))"
              % len(accepted), file=sys.stderr)
    return 0
