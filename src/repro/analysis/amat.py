"""Average memory access time estimation — Figure 2a.

Methodology mirrors the paper's §5 exactly:

1. Measure L1/L2/LLC miss rates by running a standard hash-table ``get()``
   benchmark (8 B keys and values, uniform random keys, single thread) on
   the cache simulator. (The paper measured on a Cloudlab c6420; the miss
   rates are a property of the access pattern and cache geometry, not of
   the memory medium, so one run serves every bar.)
2. Combine those miss rates with per-medium service latencies — measured
   DRAM, published Optane numbers [FAST'20], expected CXL latency, and
   Enzian coherence latency — via the standard AMAT recurrence::

       AMAT = L1 + m1*(L2 + m2*(LLC + m3*service))

The four bars: DRAM and PM are *not* crash consistent; PM-via-CXL and
PM-via-Enzian are PAX configurations and *are* crash consistent. The
paper's headline: the CXL PAX adds ~25% to AMAT over raw PM.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.cache.cache import CacheConfig
from repro.cache.stats import MissRates
from repro.errors import ConfigError
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HostMachine
from repro.sim.latency import default_model
from repro.structures.hashmap import HashMap
from repro.workloads.keys import KeySequence

#: The four configurations of Figure 2a, in presentation order.
CONFIGS = ("dram", "pm", "pm_cxl", "pm_enzian")


def measure_miss_rates(record_count=20000, op_count=40000,
                       distribution="uniform", seed=42, num_cores=1,
                       l1_config=None, l2_config=None, llc_config=None):
    """Run the §5 get() microbenchmark; return its :class:`MissRates`.

    The default working set (20k records * ~40 B of nodes+buckets) is
    several times the default 2 MiB LLC, matching the paper's setup where
    last-level misses dominate AMAT.
    """
    if llc_config is None:
        # A table several times the LLC: the paper's workload has a
        # working set far beyond cache, so LLC misses dominate AMAT. We
        # scale the LLC down instead of the table up to keep runs fast;
        # the miss *rates* are what matter.
        llc_config = CacheConfig(size_bytes=512 * 1024, ways=16)
    machine = HostMachine(media="dram", heap_size=64 * 1024 * 1024,
                          num_cores=num_cores, share_bandwidth=False,
                          l1_config=l1_config, l2_config=l2_config,
                          llc_config=llc_config)
    mem = machine.mem()
    alloc = PmAllocator.create(mem, machine.heap_size)
    table = HashMap.create(mem, alloc, capacity=1 << 14)
    load_keys = KeySequence(record_count, "sequential", seed=seed)
    for index in range(record_count):
        table.put(load_keys.next(), index)
    # Only the run phase counts, as in the paper.
    machine.hierarchy.stats.reset()
    run_keys = KeySequence(record_count, distribution, seed=seed + 1)
    for _ in range(op_count):
        table.get(run_keys.next())
    return MissRates.from_hierarchy(machine.hierarchy)


@dataclass
class AmatModel:
    """Combines miss rates with media/link latencies into AMAT figures."""

    miss_rates: MissRates
    latency: object = field(default_factory=default_model)
    #: Fraction of PAX misses served by the device HBM cache instead of
    #: PM. 0 is the conservative bound used for the headline numbers.
    hbm_hit_rate: float = 0.0
    #: Device pipeline cost per request (PaxConfig default).
    device_processing_ns: float = 15.0

    def service_ns(self, config):
        """Latency of servicing one LLC miss under ``config``."""
        media = self.latency.media
        if config == "dram":
            return media.dram_ns
        if config == "pm":
            return media.pm_read_ns
        if config in ("pm_cxl", "pm_enzian"):
            link = "cxl" if config == "pm_cxl" else "enzian"
            round_trip = self.latency.device_round_trip_ns(link)
            device = (self.hbm_hit_rate * media.hbm_ns
                      + (1.0 - self.hbm_hit_rate) * media.pm_read_ns)
            return round_trip + self.device_processing_ns + device
        raise ConfigError("unknown AMAT config %r" % (config,))

    def amat_ns(self, config):
        """Average memory access time under ``config``."""
        rates = self.miss_rates
        cache = self.latency.cache
        miss_path = (cache.llc_ns
                     + rates.llc_miss_rate * self.service_ns(config))
        l2_path = cache.l2_ns + rates.l2_miss_rate * miss_path
        return cache.l1_ns + rates.l1_miss_rate * l2_path

    def estimate_all(self) -> Dict[str, float]:
        """AMAT for every Figure 2a configuration."""
        return {config: self.amat_ns(config) for config in CONFIGS}

    # -- the paper's two headline ratios ------------------------------------

    def cxl_overhead_over_pm(self):
        """Fractional AMAT increase of the CXL PAX over raw PM (~0.25)."""
        pm = self.amat_ns("pm")
        return (self.amat_ns("pm_cxl") - pm) / pm

    def enzian_overhead_ratio(self):
        """Enzian PAX overhead (vs PM) divided by CXL PAX overhead (~2)."""
        pm = self.amat_ns("pm")
        cxl_overhead = self.amat_ns("pm_cxl") - pm
        enzian_overhead = self.amat_ns("pm_enzian") - pm
        if cxl_overhead <= 0:
            raise ConfigError("CXL overhead is non-positive; model broken")
        return enzian_overhead / cxl_overhead


def figure_2a(record_count=20000, op_count=40000, hbm_hit_rate=0.0,
              latency=None, llc_config=None):
    """One-call reproduction of Figure 2a; returns (model, estimates)."""
    rates = measure_miss_rates(record_count=record_count, op_count=op_count,
                               llc_config=llc_config)
    model = AmatModel(rates, latency=latency or default_model(),
                      hbm_hit_rate=hbm_hit_rate)
    return model, model.estimate_all()
