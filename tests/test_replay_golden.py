"""Golden equivalence: replay must be indistinguishable from the
per-access path (the PR3 pattern, applied machine-wide).

Each case records a seeded workload through a live backend, replays the
trace onto a freshly built backend, and diffs the two machine-wide
fingerprints — simulated clock, every stat counter and histogram, every
memory device's bytes, the machine-shape scalars. An empty diff is the
acceptance criterion; anything else names exactly which quantity moved.
"""

import pytest

from repro.errors import TraceUnsupportedError
from repro.perfbench import BACKENDS, build_backend
from repro.replay import fast_eligible, load_trace_bytes, record, \
    replay_trace
from repro.replay import format as fmt
from repro.replay.equivalence import diff, fingerprint
from repro.sim.rng import DeterministicRng


def _drive(live, recorder=None, ops=300, records=32, seed=11):
    """A small mixed workload with an explicit mid-trace persist."""
    rng = DeterministicRng(seed)
    for i in range(records):
        live.put(i, i * 7)
    if recorder is not None:
        recorder.mark(fmt.MARK_TIMED)
    for i in range(ops):
        key = rng.randint(0, records - 1)
        if i % 3 == 0:
            live.get(key)
        else:
            live.put(key, i)
        if i == ops // 2:
            live.persist()
    live.persist()


def _record_golden(name):
    golden = build_backend(name)
    trace = record(golden, _drive)
    return golden, trace


@pytest.mark.parametrize("name", BACKENDS)
def test_replay_matches_per_access(name):
    golden, trace = _record_golden(name)
    fresh = build_backend(name)
    result = replay_trace(trace, fresh)
    assert diff(fingerprint(golden), fingerprint(fresh)) == []
    assert result.events == len(trace)
    assert result.sim_ns == golden.machine.clock.now_ns


@pytest.mark.parametrize("name", BACKENDS)
def test_generic_engine_matches_per_access(name):
    golden, trace = _record_golden(name)
    fresh = build_backend(name)
    result = replay_trace(trace, fresh, engine="generic")
    assert result.engine == "generic"
    assert diff(fingerprint(golden), fingerprint(fresh)) == []


def test_fast_engine_used_for_pax():
    golden, trace = _record_golden("pax")
    assert fast_eligible(build_backend("pax"))
    fresh = build_backend("pax")
    result = replay_trace(trace, fresh, engine="fast")
    assert result.engine == "fast"
    assert diff(fingerprint(golden), fingerprint(fresh)) == []


def test_fast_and_generic_agree_with_each_other():
    _golden, trace = _record_golden("pax")
    a, b = build_backend("pax"), build_backend("pax")
    replay_trace(trace, a, engine="fast")
    replay_trace(trace, b, engine="generic")
    assert diff(fingerprint(a), fingerprint(b)) == []


def test_replay_from_serialized_bytes_matches():
    # The equivalence must survive a disk round trip, not just the
    # in-memory Trace object.
    golden, trace = _record_golden("pax")
    reloaded = load_trace_bytes(trace.to_bytes())
    fresh = build_backend("pax")
    replay_trace(reloaded, fresh)
    assert diff(fingerprint(golden), fingerprint(fresh)) == []


def test_replay_is_repeatable():
    _golden, trace = _record_golden("pax")
    a, b = build_backend("pax"), build_backend("pax")
    replay_trace(trace, a)
    replay_trace(trace, b)
    assert diff(fingerprint(a), fingerprint(b)) == []


def test_marks_reported():
    _golden, trace = _record_golden("pax")
    fresh = build_backend("pax")
    result = replay_trace(trace, fresh)
    assert fmt.MARK_TIMED in result.marks
    assert result.sim_ns_timed <= result.sim_ns


def test_footer_records_final_sim_ns():
    golden, trace = _record_golden("dram")
    assert trace.footer["sim_ns_end"] == golden.machine.clock.now_ns


def test_crash_cannot_be_recorded():
    backend = build_backend("pax")

    def drive(live, _recorder):
        live.put(0, 1)
        live.crash()

    with pytest.raises(TraceUnsupportedError):
        record(backend, drive)
