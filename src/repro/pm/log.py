"""The on-PM undo log region.

Fixed-size entries laid out back to back in the pool's log region. Each
entry records the **old** contents of one cache line plus the epoch that
overwrote it; recovery rolls entries back newest-first for every epoch
newer than the committed snapshot (paper §3.3-3.4).

Entry layout (96 bytes, 1.5 lines — keeps the 64-byte payload aligned):

========  ====  =========================================================
offset    size  field
``0``     4     magic (``0x554E444F``, "UNDO")
``4``     2     payload length (1..64)
``6``     2     reserved
``8``     8     epoch number
``16``    8     pool-relative address of the target line (line-aligned)
``24``    64    old line contents
``88``    4     CRC-32C over bytes [0, 88)
``92``    4     reserved
========  ====  =========================================================

Durability model: the log region lives on the PM device, so an entry is
durable the instant :meth:`append` writes it. The *asynchronous* part of
PAX logging — entries buffered in device SRAM before being written here —
is modelled by :class:`repro.core.undo.UndoLogger`, which owns the
volatile tail and calls :meth:`append` as the background drain happens.

The write offset advances monotonically within an epoch (paper §3.3: "the
undo log becomes durable at a monotonically increasing offset"). After a
successful epoch commit every entry is dead, so :meth:`reset` rewinds to
offset zero and poisons the first header so stale entries cannot be
mistaken for live ones.
"""

import struct

from repro.errors import LogError
from repro.util.bitops import is_aligned
from repro.util.checksum import crc32c
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup

ENTRY_MAGIC = 0x554E444F
ENTRY_SIZE = 96

_PREFIX = struct.Struct("<IHHQQ")      # magic, len, pad, epoch, addr
_CRC = struct.Struct("<I")
_CRC_OFFSET = _PREFIX.size + CACHE_LINE_SIZE


class UndoEntry:
    """A decoded undo-log entry."""

    __slots__ = ("epoch", "addr", "data", "offset")

    def __init__(self, epoch, addr, data, offset):
        self.epoch = epoch
        self.addr = addr
        self.data = data
        self.offset = offset

    def __repr__(self):
        return "UndoEntry(epoch=%d, addr=0x%x, off=%d)" % (
            self.epoch, self.addr, self.offset)


def encode_entry(epoch, addr, data):
    """Serialize one entry; ``data`` is the old line contents (<= 64 B)."""
    data = bytes(data)
    if not 1 <= len(data) <= CACHE_LINE_SIZE:
        raise LogError("undo payload must be 1..64 bytes, got %d" % len(data))
    if not is_aligned(addr, CACHE_LINE_SIZE):
        raise LogError("undo entries target line-aligned addresses")
    payload = data.ljust(CACHE_LINE_SIZE, b"\x00")
    prefix = _PREFIX.pack(ENTRY_MAGIC, len(data), 0, epoch, addr)
    body = prefix + payload
    return body + _CRC.pack(crc32c(body)) + b"\x00" * (ENTRY_SIZE - _CRC_OFFSET - 4)


#: Per-slot verdicts from :func:`classify_entry`.
SLOT_VALID = "valid"      # magic, length, and CRC all check out
SLOT_HOLE = "hole"        # zero magic: a poisoned/never-written header
SLOT_INVALID = "invalid"  # nonzero junk: a torn write or flipped bits


def classify_entry(blob, offset=0):
    """Classify one entry slot; returns ``(verdict, entry_or_None)``.

    A *hole* (zero magic) is the deliberate tail poison an append or
    reset writes — the normal end of the log. An *invalid* slot holds
    nonzero bytes that fail magic/length/CRC validation: either the tail
    entry whose append was torn by a crash, or a once-valid entry whose
    media bits flipped. Which of the two it is cannot be told from the
    slot alone; recovery decides from context (see
    :meth:`UndoLogRegion.scan_report`).
    """
    if len(blob) < ENTRY_SIZE:
        return SLOT_HOLE, None
    magic, length, _pad, epoch, addr = _PREFIX.unpack_from(blob, 0)
    if magic == 0:
        return SLOT_HOLE, None
    if magic != ENTRY_MAGIC or not 1 <= length <= CACHE_LINE_SIZE:
        return SLOT_INVALID, None
    (stored_crc,) = _CRC.unpack_from(blob, _CRC_OFFSET)
    if stored_crc != crc32c(blob[:_CRC_OFFSET]):
        return SLOT_INVALID, None
    data = bytes(blob[_PREFIX.size:_PREFIX.size + length])
    return SLOT_VALID, UndoEntry(epoch, addr, data, offset)


def decode_entry(blob, offset=0):
    """Decode one entry; return :class:`UndoEntry` or None if invalid."""
    return classify_entry(blob, offset)[1]


#: Tail verdicts from :meth:`UndoLogRegion.scan_report`.
TAIL_CLEAN = "clean"        # hole (or region end) after the valid prefix
TAIL_TORN = "torn"          # invalid tail slot: the append never completed
TAIL_CORRUPT = "corrupt"    # invalid slot with durable entries after it
TAIL_DISORDER = "disorder"  # live entries out of epoch order


class LogScanResult:
    """Everything a durable-bytes-only scan of the log region found."""

    __slots__ = ("entries", "tail", "tail_offset")

    def __init__(self, entries, tail, tail_offset):
        self.entries = entries          # valid prefix, in append order
        self.tail = tail                # one of the TAIL_* verdicts
        self.tail_offset = tail_offset  # region offset where the scan stopped

    def __repr__(self):
        return "LogScanResult(%d entries, tail=%s @%d)" % (
            len(self.entries), self.tail, self.tail_offset)


class UndoLogRegion:
    """Append-only undo log in the pool's log region."""

    def __init__(self, device, base, size):
        if size < ENTRY_SIZE:
            raise LogError("log region too small for a single entry")
        self.device = device
        self.base = base
        self.size = size
        self.write_offset = 0
        self.stats = StatGroup("undo_log")
        # Per-append counters bound once (hot-path-stat-lookup rule).
        self._c_appends = self.stats.counter("appends")
        self._c_bytes = self.stats.counter("bytes")

    @property
    def capacity_entries(self):
        """Maximum number of entries the region can hold."""
        return self.size // ENTRY_SIZE

    @property
    def used_entries(self):
        """Entries appended since the last reset."""
        return self.write_offset // ENTRY_SIZE

    @property
    def is_full(self):
        """True if no further entry fits."""
        return self.write_offset + ENTRY_SIZE > self.size

    def append(self, epoch, addr, data):
        """Durably append one entry; returns its region-relative offset."""
        if self.is_full:
            raise LogError(
                "undo log full (%d entries); call persist() more often or "
                "grow the log region" % self.used_entries)
        blob = encode_entry(epoch, addr, data)
        offset = self.write_offset
        self.device.write(self.base + offset, blob)
        self.write_offset = offset + ENTRY_SIZE
        # Poison the next entry's header so a recovery scan terminates at
        # the true tail instead of resurrecting stale pre-reset entries.
        if self.write_offset + ENTRY_SIZE <= self.size:
            self.device.write(self.base + self.write_offset,
                              bytes(_PREFIX.size))
        self._c_appends.add(1)
        self._c_bytes.add(ENTRY_SIZE)
        return offset

    def reset(self):
        """Discard all entries after a successful epoch commit."""
        # Poison the first header so a recovery scan of the rewound log
        # terminates immediately; old entry bodies beyond it are unreachable
        # because scanning stops at the first invalid header.
        self.device.write(self.base, bytes(_PREFIX.size))
        self.write_offset = 0
        self.stats.counter("resets").add(1)

    def scan(self):
        """Yield valid entries in append order, stopping at the first hole.

        Used by recovery, which must rely only on durable bytes: the scan
        re-reads the device rather than trusting ``write_offset`` (which is
        volatile state lost in a crash). Thin wrapper over
        :meth:`scan_report`, which also grades the tail.
        """
        return iter(self.scan_report().entries)

    def scan_report(self, committed_epoch=None):
        """Scan durable bytes and grade what ended the valid prefix.

        Returns a :class:`LogScanResult` and surfaces per-entry validation
        verdicts in this region's :class:`StatGroup` counters
        (``entries_valid``, ``entries_torn``, ``entries_corrupt``).

        The interesting case is an *invalid* slot (nonzero bytes failing
        CRC). Two faults produce one:

        * a crash tore the tail append — the entry never became durable,
          so (by the write-back gate) its target line never reached PM
          either, and rolling back just the valid prefix is exactly
          right (``TAIL_TORN``);
        * media corruption flipped bits in a once-durable entry — its
          pre-image is unrecoverable and rollback would silently miss a
          line (``TAIL_CORRUPT``).

        They are distinguished by what follows: appends are strictly
        sequential within the region, so any *later* valid entry from an
        uncommitted epoch (``epoch > committed_epoch``) proves the
        invalid slot was once a durable entry — corruption, not a tear.
        Without ``committed_epoch`` the look-ahead treats any valid entry
        as proof (recovery always passes the committed epoch so stale
        pre-reset remnants are not miscounted).
        """
        entries = []
        previous_epoch = 0
        offset = 0
        tail = TAIL_CLEAN
        while offset + ENTRY_SIZE <= self.size:
            blob = self.device.read(self.base + offset, ENTRY_SIZE)
            verdict, entry = classify_entry(blob, offset)
            if verdict == SLOT_HOLE:
                break
            if verdict == SLOT_VALID:
                if entry.epoch < previous_epoch:
                    if committed_epoch is not None \
                            and entry.epoch <= committed_epoch:
                        # A stale pre-reset remnant exposed by a torn
                        # tail-poison write: the true tail is here.
                        break
                    tail = TAIL_DISORDER
                    break
                previous_epoch = entry.epoch
                entries.append(entry)
                offset += ENTRY_SIZE
                continue
            # Invalid slot: torn tail append, or corruption mid-log.
            if self._durable_entry_follows(offset + ENTRY_SIZE,
                                           committed_epoch):
                tail = TAIL_CORRUPT
            else:
                tail = TAIL_TORN
            break
        self.stats.counter("entries_valid").add(len(entries))
        if tail == TAIL_TORN:
            self.stats.counter("entries_torn").add(1)
        elif tail == TAIL_CORRUPT:
            self.stats.counter("entries_corrupt").add(1)
        return LogScanResult(entries, tail, offset)

    def _durable_entry_follows(self, offset, committed_epoch):
        """True if any slot at/after ``offset`` holds a live valid entry.

        Stops at the first hole: appends are sequential and poison the
        next header, so a live entry can never sit past a hole — only
        stale pre-reset remnants can, and those prove nothing.
        """
        while offset + ENTRY_SIZE <= self.size:
            blob = self.device.read(self.base + offset, ENTRY_SIZE)
            verdict, entry = classify_entry(blob, offset)
            if verdict == SLOT_HOLE:
                return False
            if verdict == SLOT_VALID and (committed_epoch is None
                                          or entry.epoch > committed_epoch):
                return True
            offset += ENTRY_SIZE
        return False

    def __repr__(self):
        return "UndoLogRegion(%d/%d entries)" % (
            self.used_entries, self.capacity_entries)
