"""Deterministic interleaved execution for concurrency testing (§3.5)."""

from repro.concurrency.interleave import (
    InterleavedRunner,
    InterleavingAccessor,
)

__all__ = ["InterleavedRunner", "InterleavingAccessor"]
