"""Latency and bandwidth constants for every medium and interconnect.

The numbers reproduce the sources the paper cites for its Figure 2a AMAT
analysis:

* CPU cache levels — typical Skylake-SP (Cloudlab c6420) latencies.
* Optane DC PMEM — Yang et al., "An Empirical Guide to the Behavior and
  Use of Scalable Persistent Memory" (FAST '20): ~305 ns random read,
  ~94 ns sequential read-ish, write ~ADR buffered; read BW ~40 GB/s/socket,
  write BW ~14 GB/s (paper §5.1 quotes exactly these).
* CXL — expected round-trip add-on for a CXL.cache device (~70 ns each
  direction over PCIe 5 PHY; the paper's 25%-AMAT-overhead estimate implies
  a device hop in the low hundreds of ns).
* Enzian — measured ECI coherence latency is several times higher than the
  CXL projection; the paper estimates an Enzian PAX at ~2x the CXL PAX.

Absolute fidelity is impossible without the testbed; these defaults are
chosen from the public numbers so the *ratios* in Fig 2a reproduce. All of
them are plain dataclass fields, so ablation benchmarks can sweep them.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class CacheLatency:
    """Load-to-use latencies for the CPU cache hierarchy (nanoseconds)."""

    l1_ns: float = 1.2        # ~4 cycles @ 3.3 GHz
    l2_ns: float = 4.2        # ~14 cycles
    llc_ns: float = 19.5      # ~64 cycles, Skylake-SP mesh
    cross_core_ns: float = 42.0  # dirty-line transfer between cores

    def validate(self):
        """Raise :class:`ConfigError` on invalid cache latencies."""
        if not (0 < self.l1_ns <= self.l2_ns <= self.llc_ns):
            raise ConfigError("cache latencies must be positive and ordered")
        if self.cross_core_ns < 0:
            raise ConfigError("cross-core latency cannot be negative")


@dataclass
class MediaLatency:
    """Latencies of the memory media behind the LLC (nanoseconds)."""

    dram_ns: float = 81.0          # local DDR4 on c6420
    pm_read_ns: float = 305.0      # Optane random read (FAST '20)
    pm_write_ns: float = 94.0      # store reaching ADR write-pending queue
    hbm_ns: float = 106.0          # on-device HBM access

    def validate(self):
        """Raise :class:`ConfigError` on invalid media latencies."""
        if min(self.dram_ns, self.pm_read_ns, self.pm_write_ns, self.hbm_ns) <= 0:
            raise ConfigError("media latencies must be positive")


@dataclass
class LinkLatency:
    """One-way interconnect hop latencies (nanoseconds)."""

    cxl_ns: float = 35.0          # one-way CXL.cache hop (70 ns round trip)
    enzian_ns: float = 80.0       # one-way ECI hop; sized so the Enzian
                                  # PAX's AMAT overhead is ~2x the CXL
                                  # PAX's, the paper's own §5 estimate
    smp_ns: float = 0.0           # host-local access, no device hop

    def validate(self):
        """Raise :class:`ConfigError` on invalid link latencies."""
        if self.cxl_ns < 0 or self.enzian_ns < 0 or self.smp_ns < 0:
            raise ConfigError("link latencies cannot be negative")


@dataclass
class Bandwidth:
    """Peak sustainable bandwidths in bytes per second."""

    dram_bps: float = 100e9          # ~100 GB/s per socket DDR4
    pm_read_bps: float = 40e9        # Optane socket read peak (paper §5.1)
    pm_write_bps: float = 14e9       # Optane socket write peak (paper §5.1)
    cxl_bps: float = 63e9            # CXL/PCIe5 x16 full duplex (paper §5.1)
    enzian_bps: float = 30e9         # 24 x 10 Gb/s lanes

    def validate(self):
        """Raise :class:`ConfigError` on invalid bandwidths."""
        values = (self.dram_bps, self.pm_read_bps, self.pm_write_bps,
                  self.cxl_bps, self.enzian_bps)
        if min(values) <= 0:
            raise ConfigError("bandwidths must be positive")


@dataclass
class SoftwareCosts:
    """Costs of software events the baselines model (nanoseconds)."""

    page_fault_ns: float = 1200.0   # write-protect trap (paper: >1 us)
    sfence_ns: float = 35.0         # drain store buffer / ordering stall
    clwb_ns: float = 25.0           # issue cost of one CLWB
    log_append_cpu_ns: float = 18.0  # CPU instructions to build a WAL entry
    syscall_ns: float = 500.0       # kernel boundary crossing

    def validate(self):
        """Raise :class:`ConfigError` on invalid software costs."""
        if min(self.page_fault_ns, self.sfence_ns, self.clwb_ns,
               self.log_append_cpu_ns, self.syscall_ns) < 0:
            raise ConfigError("software costs cannot be negative")


@dataclass
class LatencyModel:
    """The full latency/bandwidth configuration for one simulated machine."""

    cache: CacheLatency = field(default_factory=CacheLatency)
    media: MediaLatency = field(default_factory=MediaLatency)
    link: LinkLatency = field(default_factory=LinkLatency)
    bandwidth: Bandwidth = field(default_factory=Bandwidth)
    software: SoftwareCosts = field(default_factory=SoftwareCosts)

    def validate(self):
        """Raise :class:`ConfigError` if any sub-model is inconsistent."""
        self.cache.validate()
        self.media.validate()
        self.link.validate()
        self.bandwidth.validate()
        self.software.validate()
        return self

    def device_round_trip_ns(self, link_name):
        """Round-trip host<->device latency for ``link_name``.

        ``link_name`` is one of ``"cxl"``, ``"enzian"``, ``"smp"``.
        """
        one_way = self.link_one_way_ns(link_name)
        return 2.0 * one_way

    def link_one_way_ns(self, link_name):
        """One-way hop latency for a named interconnect."""
        try:
            return {
                "cxl": self.link.cxl_ns,
                "enzian": self.link.enzian_ns,
                "smp": self.link.smp_ns,
            }[link_name]
        except KeyError:
            raise ConfigError("unknown link %r" % (link_name,)) from None


def default_model():
    """Return a validated :class:`LatencyModel` with the paper's defaults."""
    return LatencyModel().validate()
