"""Crash recovery (paper §3.4), hardened against imperfect durability.

After a crash, the pool's durable bytes are: the PM data region (possibly
containing partially-applied epoch N+1 writes), the durable prefix of the
undo log, and the committed epoch number N. Recovery rolls back every
durable undo record tagged with an epoch newer than N, newest first, which
restores the data region to exactly the epoch-N snapshot. Records that
never became durable correspond to modifications that never reached PM
(the write-back gate guarantees it), so nothing is missed.

The paper assumes the commit write and the log itself are perfectly
reliable; this module does not:

* **Torn epoch commit** — the commit write lands in one of two CRC-
  protected slots (:mod:`repro.pm.pool`); a tear invalidates at most the
  slot being written, and recovery proceeds from the surviving slot, the
  previous committed epoch.
* **Torn log tail** — the entry whose append was cut by the crash fails
  its CRC. That entry was never durable, so (by the write-back gate) its
  target line never reached PM: recovery rolls back the valid prefix and
  reports the tear (``log_entries_torn``).
* **Mid-log corruption** — an entry that *was* durable (valid entries
  from the same uncommitted epoch follow it) fails its CRC. Its
  pre-image is gone and no consistent rollback exists, so recovery
  raises :class:`RecoveryError` carrying the partial
  :class:`RecoveryReport` rather than silently missing a line.
* **Epoch record destroyed** — both slots invalid: also a typed
  :class:`RecoveryError`.

Recovery is performed by ``libpax`` on ``map_pool`` — the application
cannot tell a recovered pool from a cleanly closed one.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import PoolError, RecoveryError, RecoveryTimeout
from repro.pm.log import TAIL_CORRUPT, TAIL_DISORDER, UndoLogRegion
from repro.util.constants import CACHE_LINE_SIZE


@dataclass
class RecoveryReport:
    """What recovery did (or had done when it failed), for logging/tests."""

    committed_epoch: int
    records_scanned: int = 0
    records_rolled_back: int = 0
    lines_restored: List[int] = field(default_factory=list)
    #: Per-entry log validation verdicts (mirrors the region's counters).
    log_entries_valid: int = 0
    log_entries_torn: int = 0
    log_entries_corrupt: int = 0
    #: Region offset where the log scan stopped, and why ("clean",
    #: "torn", "corrupt", "disorder").
    log_tail: str = "clean"
    log_tail_offset: int = 0
    #: Which epoch slot supplied the committed epoch, and the per-slot
    #: CRC verdicts. ``(-1, (False, False))`` when the record was gone.
    epoch_slot_used: int = 0
    epoch_slots_valid: Tuple[bool, ...] = (True, True)
    #: Simulated time recovery consumed (scan + rollback writes), in ns.
    #: Populated — and charged to the machine's clock — when
    #: :func:`recover_pool` is given a clock; callers no longer re-derive
    #: it from clock deltas. Zero for clock-less (untimed) recovery.
    started_ns: float = 0.0
    elapsed_ns: float = 0.0

    @property
    def was_dirty(self):
        """True if the crash interrupted an uncommitted epoch."""
        return self.records_rolled_back > 0

    @property
    def survived_faults(self):
        """True if recovery tolerated a torn tail or a torn epoch slot."""
        return self.log_entries_torn > 0 or not all(self.epoch_slots_valid)


def _trace_outcome(pool, name, report):
    """Emit a "recovery" span on the pool's tracer, if one is attached.

    Read-only by contract: recovery must behave identically traced and
    untraced, so only fields already computed in ``report`` are emitted.
    """
    tracer = getattr(pool, "tracer", None)
    if tracer is not None:
        tracer.on_span("recovery", name, None, 0, {
            "committed_epoch": report.committed_epoch,
            "records_rolled_back": report.records_rolled_back,
            "log_entries_torn": report.log_entries_torn,
            "log_tail": report.log_tail,
        })


def recover_pool(pool, clock=None, scan_ns=0.0, write_ns=0.0,
                 deadline_ns=None):
    """Roll the pool's data region back to its last committed snapshot.

    Returns a :class:`RecoveryReport`. Idempotent: running it twice (e.g.
    a crash during recovery, which only re-writes old values) is safe
    because undo records are only discarded after the rollback completes.

    With ``clock``, recovery charges simulated time — ``scan_ns`` per
    durable record scanned plus ``write_ns`` per line rolled back — and
    stamps ``started_ns``/``elapsed_ns`` into the report, so callers
    (the serving harness's recovery-time SLO, tests) read the cost off
    the report instead of re-deriving it from clock deltas. On a clean
    pool the charge is zero, so opening an already-consistent pool never
    moves time.

    ``deadline_ns`` bounds that elapsed time: recovery still runs to
    completion (aborting mid-rollback would tear the snapshot), but if
    the charged time exceeded the deadline a typed
    :class:`~repro.errors.RecoveryTimeout` is raised *after* the pool is
    consistent, carrying the finished report.

    Raises :class:`RecoveryError` (with the partial report attached) when
    the durable bytes admit no consistent snapshot: mid-log corruption,
    live records out of epoch order, a record targeting bytes outside the
    data region, or a destroyed epoch record.
    """
    started_ns = clock.now_ns if clock is not None else 0.0
    try:
        committed, slot_used, slots_valid = pool.epoch_record()
    except PoolError as exc:
        report = RecoveryReport(committed_epoch=-1, epoch_slot_used=-1,
                                epoch_slots_valid=(False, False))
        _trace_outcome(pool, "recover-failed", report)
        raise RecoveryError(str(exc), report=report)
    region = UndoLogRegion(pool.device, pool.log_base, pool.log_size)
    report = RecoveryReport(committed_epoch=committed,
                            epoch_slot_used=slot_used,
                            epoch_slots_valid=slots_valid,
                            started_ns=started_ns)
    scan = region.scan_report(committed)
    report.log_entries_valid = len(scan.entries)
    report.log_entries_torn = region.stats.get("entries_torn")
    report.log_entries_corrupt = region.stats.get("entries_corrupt")
    report.log_tail = scan.tail
    report.log_tail_offset = scan.tail_offset
    if scan.tail == TAIL_CORRUPT:
        _trace_outcome(pool, "recover-failed", report)
        raise RecoveryError(
            "undo log corrupt at region offset %d: a durable record's "
            "pre-image is unreadable, so no consistent rollback exists"
            % scan.tail_offset, report=report)
    if scan.tail == TAIL_DISORDER:
        _trace_outcome(pool, "recover-failed", report)
        raise RecoveryError(
            "undo records out of epoch order at region offset %d; the "
            "log is append-only per epoch" % scan.tail_offset,
            report=report)
    to_undo = []
    for entry in scan.entries:
        report.records_scanned += 1
        if entry.epoch <= committed:
            # Stale record from an epoch that committed before the crash
            # (possible because the log region is rewound lazily — only
            # at a quiescent point, or at a blocking commit). Dead.
            continue
        # With pipelined persists (core.pipeline) several uncommitted
        # epochs may be present; all of them roll back, newest first.
        if not pool.contains_data(entry.addr, CACHE_LINE_SIZE):
            _trace_outcome(pool, "recover-failed", report)
            raise RecoveryError(
                "undo record targets 0x%x outside the data region"
                % entry.addr, report=report)
        to_undo.append(entry)
    # Newest-first rollback: the oldest record for a line holds the
    # epoch-start value and must win.
    for entry in reversed(to_undo):
        data = entry.data.ljust(CACHE_LINE_SIZE, b"\x00")
        pool.device.write(entry.addr, data)
        report.records_rolled_back += 1
        report.lines_restored.append(entry.addr)
    report.elapsed_ns = (scan_ns * report.records_scanned
                         + write_ns * report.records_rolled_back)
    if clock is not None and report.elapsed_ns:
        clock.advance(report.elapsed_ns)
    # Only now is it safe to discard the log.
    region.reset()
    _trace_outcome(pool, "recover-pool", report)
    if deadline_ns is not None and report.elapsed_ns > deadline_ns:
        raise RecoveryTimeout(
            "recovery took %.0f ns (%d records rolled back), past the "
            "%.0f ns deadline" % (report.elapsed_ns,
                                  report.records_rolled_back, deadline_ns),
            report=report)
    return report
