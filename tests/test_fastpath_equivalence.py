"""Golden equivalence for the hot-path optimizations.

The cache hierarchy and the PM device carry single-line fast paths that
bypass the generic ``split_lines``/``lines_covering`` walk, plus bound
counters and inlined accounting (docs/performance.md). Setting
``REPRO_SLOW_PATH=1`` before construction forces the generic code.  These
tests run the *same* mixed workload — loads, stores, persists, a crash,
recovery — under both settings and require byte-identical observable
behaviour: every stat snapshot, the simulated clock, the wear profile,
and the recovered pool contents.  Any divergence means an optimization
changed simulated behaviour, not just wall-clock speed.
"""

from repro.baselines.pax import PaxBackend
from repro.libpax.machine import HostMachine
from repro.pm.device import PmDevice
from repro.util.fastpath import SLOW_PATH_ENV, fast_path_enabled
from repro.util.stats import StatGroup

from tests.conftest import small_cache_kwargs


def _collect_stat_groups(root):
    """Every StatGroup reachable from ``root`` via instance attributes."""
    seen = set()
    groups = []
    stack = [root]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, StatGroup):
            groups.append(obj)
            continue
        values = []
        attrs = getattr(obj, "__dict__", None)
        if attrs:
            values.extend(attrs.values())
        if isinstance(obj, (list, tuple, set, frozenset)):
            values.extend(obj)
        elif isinstance(obj, dict):
            values.extend(obj.values())
        for value in values:
            if isinstance(value, (str, bytes, bytearray, int, float,
                                  bool, type(None))):
                continue
            stack.append(value)
    return groups


def _stats_fingerprint(root):
    """Sorted, hashable image of every stat group under ``root``."""
    return sorted(
        (group.owner, tuple(sorted(group.snapshot().items())))
        for group in _collect_stat_groups(root))


def _drive_pax(backend):
    """Mixed load/store/persist/crash/recover workload."""
    for i in range(80):
        backend.put(i, i * 2 + 1)
        if i % 7 == 0:
            backend.get(i)
    backend.persist()
    for i in range(0, 40, 3):
        backend.remove(i)
    for i in range(80, 120):
        backend.put(i, i ^ 0x5A)
    backend.persist()
    # Uncommitted tail, then power loss: recovery must roll it back.
    for i in range(120, 128):
        backend.put(i, i)
    backend.crash()
    rolled_back = backend.restart()
    for i in range(128, 140):
        backend.put(i, i + 7)
    backend.persist()
    return rolled_back


def _pax_fingerprint():
    backend = PaxBackend(pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                         capacity=256, **small_cache_kwargs())
    rolled_back = _drive_pax(backend)
    return {
        "rolled_back": rolled_back,
        "clock_ns": backend.machine.clock.now_ns,
        "contents": backend.to_dict(),
        "wear": backend.machine.pm.wear_profile(),
        "stats": _stats_fingerprint(backend),
    }


def test_pax_fast_and_slow_paths_are_byte_identical(monkeypatch):
    monkeypatch.setenv(SLOW_PATH_ENV, "0")
    assert fast_path_enabled()
    fast = _pax_fingerprint()

    monkeypatch.setenv(SLOW_PATH_ENV, "1")
    assert not fast_path_enabled()
    slow = _pax_fingerprint()

    assert fast["rolled_back"] == slow["rolled_back"]
    assert fast["clock_ns"] == slow["clock_ns"]
    assert fast["contents"] == slow["contents"]
    assert fast["wear"] == slow["wear"]
    assert fast["stats"] == slow["stats"]


def _host_fingerprint(media):
    machine = HostMachine(media=media, heap_size=1 * 1024 * 1024,
                          **small_cache_kwargs())
    mem = machine.mem()
    # Aligned words, unaligned spans, and line-crossing writes: the
    # single-line fast path and the generic walk must split identically.
    for i in range(64):
        mem.write_u64(i * 8, i * 3 + 1)
    for i in range(16):
        mem.write(4000 + i * 61, bytes([i]) * 61)
    total = 0
    for i in range(64):
        total += mem.read_u64(i * 8)
    blob = mem.read(4000, 16 * 61)
    return {
        "clock_ns": machine.clock.now_ns,
        "sum": total,
        "blob": blob,
        "stats": _stats_fingerprint(machine),
    }


def test_host_machine_fast_and_slow_paths_match(monkeypatch):
    for media in ("dram", "pm"):
        monkeypatch.setenv(SLOW_PATH_ENV, "0")
        fast = _host_fingerprint(media)
        monkeypatch.setenv(SLOW_PATH_ENV, "1")
        slow = _host_fingerprint(media)
        assert fast == slow, "fast/slow divergence on %s machine" % media


def _pm_device_fingerprint():
    device = PmDevice("pm", 64 * 1024)
    # One-line, exact-line, straddling, and long multi-line writes.
    device.write(0, b"a" * 8)
    device.write(64, b"b" * 64)
    device.write(60, b"c" * 8)
    device.write(130, b"d" * 700)
    device.write(63, b"e")
    return {
        "wear": dict(device.line_wear),
        "profile": device.wear_profile(),
        "lines_written": device.stats.get("lines_written"),
        "contents": device.read(0, 1024),
    }


def test_pm_device_fast_and_slow_paths_match(monkeypatch):
    monkeypatch.setenv(SLOW_PATH_ENV, "0")
    fast = _pm_device_fingerprint()
    monkeypatch.setenv(SLOW_PATH_ENV, "1")
    slow = _pm_device_fingerprint()
    assert fast == slow
