"""Benchmark package: one module per paper figure/table/claim."""
