"""The miss-path mechanism zoo (ROADMAP: device-cache mechanism zoo).

The paper ships one fixed device cache design; the interesting question
— which miss-path mechanism wins at which size under which workload —
is an experiment matrix, not a point. This module makes the miss path
pluggable at *both* caching sites:

* the host hierarchy's LLC miss path (:mod:`repro.cache.hierarchy`),
  where a mechanism hit spares a home round trip (for vPM lines, a full
  CXL transaction);
* the PAX device's HBM miss path (:mod:`repro.core.device`), where a
  hit spares a PM media read.

Four classic mechanisms (Jouppi-style victim and miss caches, stream
buffers, next-line prefetch) share one small interface and compose into
a :class:`MechanismStack`; each is parameterized by a spec string (see
:func:`make_mechanisms`) and composes with the existing replacement
policies (:mod:`repro.cache.replacement`).

Correctness discipline — mechanisms are a *performance overlay only*:

* A mechanism may hold only **clean** data that matches the home's
  current (device-visible) value. They capture clean evictions, demand
  fills, and guarded prefetches; dirty write-backs still travel to the
  home exactly as before.
* Only demand **loads** are served from a mechanism. Exclusive acquires
  (stores, upgrades) always reach the home, so the device still
  observes the first store to every line and undo logging is never
  skipped — the crash-consistency argument is untouched.
* Every exclusive acquire invalidates the line's mechanism entries, so
  a stale copy can never be served after a modification.
* Mechanisms are volatile (SRAM next to the cache they assist): a crash
  clears them.

Prefetch fills are modelled as fully overlapped background fetches: the
data transfer happens (home/PM counters and bandwidth backlogs move),
but no latency is charged to the demand access that triggered it. The
cost of a bad prefetch therefore shows up as pollution — wasted home
reads and useful entries evicted early — which is exactly what the
``prefetch pollution`` experiments measure.

With no mechanisms configured (the default everywhere) the miss path
executes the exact pre-zoo arithmetic; the golden tests pin this.
"""

from collections import OrderedDict, deque

from repro.cache.replacement import make_policy
from repro.errors import ConfigError
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup


class Mechanism:
    """Interface implemented by every miss-path mechanism.

    ``fetch`` arguments are site-provided callables
    ``fetch(line_addr) -> bytes | None`` that return the home's current
    data for a line (or None when the line must not be prefetched); the
    transfer is accounted by the site, the latency is hidden (overlapped
    background fill).
    """

    #: Registry key and spec-string name.
    kind = "abstract"

    def __init__(self, label):
        self.stats = StatGroup(label)
        # Per-miss counters bound once (hot-path-stat-lookup rule).
        stats = self.stats
        self._c_hits = stats.counter("hits")
        self._c_misses = stats.counter("misses")
        self._c_fills = stats.counter("fills")
        self._c_evictions = stats.counter("evictions")
        self._c_invalidations = stats.counter("invalidations")
        self._c_prefetches = stats.counter("prefetches")

    def probe(self, line_addr):
        """Return clean line data on a hit, else None (demand loads only)."""
        raise NotImplementedError

    def on_demand_fill(self, line_addr, data, fetch):
        """A demand miss was served by the home with ``data``."""

    def on_evict(self, line_addr, data):
        """A clean (or just-written-back) line left the cache above."""

    def invalidate(self, line_addr):
        """Drop any entry for ``line_addr`` (it is about to be modified)."""

    def clear(self):
        """Volatile state: a crash empties the mechanism."""

    def __len__(self):
        return 0


class VictimCache(Mechanism):
    """A small fully-associative buffer of clean evicted lines (Jouppi).

    Filled from evictions out of the cache above; a probe hit removes
    the entry (the line moves back up). The victim-selection order
    within the buffer is a pluggable replacement policy.
    """

    kind = "victim"

    def __init__(self, capacity=32, policy="lru", label="mech.victim"):
        super().__init__(label)
        if capacity < 1:
            raise ConfigError("victim cache needs at least one line")
        self.capacity = capacity
        self._lines = {}
        self._policy = make_policy(policy)
        self._policy_name = policy

    def probe(self, line_addr):
        data = self._lines.pop(line_addr, None)
        if data is None:
            self._c_misses.value += 1
            return None
        self._policy.on_remove(line_addr)
        self._c_hits.value += 1
        return data

    def on_evict(self, line_addr, data):
        if line_addr in self._lines:
            self._lines[line_addr] = data
            self._policy.on_access(line_addr)
            return
        if len(self._lines) >= self.capacity:
            victim = self._policy.victim()
            del self._lines[victim]
            self._policy.on_remove(victim)
            self._c_evictions.value += 1
        self._lines[line_addr] = data
        self._policy.on_insert(line_addr)
        self._c_fills.value += 1

    def invalidate(self, line_addr):
        if self._lines.pop(line_addr, None) is not None:
            self._policy.on_remove(line_addr)
            self._c_invalidations.value += 1

    def clear(self):
        self._lines.clear()
        self._policy = make_policy(self._policy_name)

    def __len__(self):
        return len(self._lines)


class MissCache(Mechanism):
    """A small fully-associative mirror of recently missed lines (Jouppi).

    Filled with the demand-missed line itself on every home fetch; a hit
    keeps the entry (refreshing recency) — the classic conflict-miss
    absorber for caches with low associativity.
    """

    kind = "miss"

    def __init__(self, capacity=16, policy="lru", label="mech.miss"):
        super().__init__(label)
        if capacity < 1:
            raise ConfigError("miss cache needs at least one line")
        self.capacity = capacity
        self._lines = {}
        self._policy = make_policy(policy)
        self._policy_name = policy

    def probe(self, line_addr):
        data = self._lines.get(line_addr)
        if data is None:
            self._c_misses.value += 1
            return None
        self._policy.on_access(line_addr)
        self._c_hits.value += 1
        return data

    def on_demand_fill(self, line_addr, data, fetch):
        if line_addr in self._lines:
            self._lines[line_addr] = data
            self._policy.on_access(line_addr)
            return
        if len(self._lines) >= self.capacity:
            victim = self._policy.victim()
            del self._lines[victim]
            self._policy.on_remove(victim)
            self._c_evictions.value += 1
        self._lines[line_addr] = data
        self._policy.on_insert(line_addr)
        self._c_fills.value += 1

    def invalidate(self, line_addr):
        if self._lines.pop(line_addr, None) is not None:
            self._policy.on_remove(line_addr)
            self._c_invalidations.value += 1

    def clear(self):
        self._lines.clear()
        self._policy = make_policy(self._policy_name)

    def __len__(self):
        return len(self._lines)


class StreamBuffers(Mechanism):
    """``buffers`` FIFO queues of ``depth`` sequentially prefetched lines.

    A demand miss that also misses every buffer allocates one (replacing
    the least recently allocated/hit) and fills it with the next
    ``depth`` lines. A probe only matches a buffer *head* (the classic
    design); a head hit pops it and extends the tail by one line, so a
    sequential walk streams at buffer speed after the first miss.
    """

    kind = "stream"

    def __init__(self, buffers=4, depth=4, label="mech.stream"):
        super().__init__(label)
        if buffers < 1 or depth < 1:
            raise ConfigError("stream buffers need buffers >= 1, depth >= 1")
        self.buffers = buffers
        self.depth = depth
        #: buffer id -> deque of (line_addr, data); allocation recency
        #: tracked by OrderedDict order (oldest first).
        self._streams = OrderedDict()
        self._next_id = 0
        self._c_allocations = self.stats.counter("allocations")
        self._c_head_pops = self.stats.counter("head_pops")

    def probe(self, line_addr):
        for stream_id, queue in self._streams.items():
            if queue and queue[0][0] == line_addr:
                _addr, data = queue.popleft()
                self._c_head_pops.value += 1
                self._c_hits.value += 1
                self._streams.move_to_end(stream_id)
                return data
        self._c_misses.value += 1
        return None

    def extend(self, fetch):
        """Refill the most recently hit stream's tail by one line."""
        if not self._streams:
            return
        stream_id, queue = next(reversed(self._streams.items()))
        tail = queue[-1][0] if queue else None
        if tail is None:
            del self._streams[stream_id]
            return
        nxt = tail + CACHE_LINE_SIZE
        data = fetch(nxt)
        if data is not None:
            queue.append((nxt, data))
            self._c_prefetches.value += 1
            self._c_fills.value += 1

    def on_demand_fill(self, line_addr, data, fetch):
        if len(self._streams) >= self.buffers:
            self._streams.popitem(last=False)
            self._c_evictions.value += 1
        queue = deque()
        addr = line_addr
        for _step in range(self.depth):
            addr += CACHE_LINE_SIZE
            fetched = fetch(addr)
            if fetched is None:
                break
            queue.append((addr, fetched))
            self._c_prefetches.value += 1
            self._c_fills.value += 1
        self._streams[self._next_id] = queue
        self._next_id += 1
        self._c_allocations.value += 1

    def invalidate(self, line_addr):
        # Conservative: flush any stream holding the line (its remaining
        # entries were fetched around data that is going stale).
        stale = [sid for sid, queue in self._streams.items()
                 if any(addr == line_addr for addr, _data in queue)]
        for stream_id in stale:
            del self._streams[stream_id]
            self._c_invalidations.value += 1

    def clear(self):
        self._streams.clear()

    def __len__(self):
        return sum(len(queue) for queue in self._streams.values())


class NextLinePrefetch(Mechanism):
    """One-block-lookahead: every demand fill prefetches ``addr + 64``.

    Prefetched lines wait in a small LRU buffer; a hit consumes the
    entry and prefetches the next sequential line (prefetch-on-hit keeps
    a stream going). Small capacities make pollution visible: useless
    prefetches evict useful ones before they are consumed.
    """

    kind = "nextline"

    def __init__(self, capacity=16, label="mech.nextline"):
        super().__init__(label)
        if capacity < 1:
            raise ConfigError("next-line buffer needs at least one line")
        self.capacity = capacity
        self._lines = OrderedDict()

    def _prefetch(self, line_addr, fetch):
        nxt = line_addr + CACHE_LINE_SIZE
        if nxt in self._lines:
            return
        data = fetch(nxt)
        if data is None:
            return
        self._lines[nxt] = data
        self._lines.move_to_end(nxt)
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
            self._c_evictions.value += 1
        self._c_prefetches.value += 1
        self._c_fills.value += 1

    def probe(self, line_addr):
        data = self._lines.pop(line_addr, None)
        if data is None:
            self._c_misses.value += 1
            return None
        self._c_hits.value += 1
        return data

    def probe_and_extend(self, line_addr, fetch):
        """Probe, and on a hit keep the stream going (site helper)."""
        data = self.probe(line_addr)
        if data is not None:
            self._prefetch(line_addr, fetch)
        return data

    def on_demand_fill(self, line_addr, data, fetch):
        self._prefetch(line_addr, fetch)

    def invalidate(self, line_addr):
        if self._lines.pop(line_addr, None) is not None:
            self._c_invalidations.value += 1

    def clear(self):
        self._lines.clear()

    def __len__(self):
        return len(self._lines)


class MechanismStack:
    """An ordered composition of mechanisms behind one probe.

    ``probe`` asks each mechanism in spec order and returns the first
    hit (also extending prefetch streams on a hit); fill/evict/
    invalidate/clear broadcast to every member. The stack itself keeps
    no line state, so composing mechanisms never changes any one
    mechanism's behaviour — only which of them answers first.
    """

    def __init__(self, mechanisms, spec):
        self.mechanisms = list(mechanisms)
        self.spec = spec

    def probe(self, line_addr, fetch):
        """First hit in spec order (extending prefetch streams on it)."""
        for mech in self.mechanisms:
            if type(mech) is NextLinePrefetch:
                data = mech.probe_and_extend(line_addr, fetch)
            else:
                data = mech.probe(line_addr)
                if data is not None and type(mech) is StreamBuffers:
                    mech.extend(fetch)
            if data is not None:
                return data
        return None

    def on_demand_fill(self, line_addr, data, fetch):
        """Broadcast a demand fill to every member."""
        for mech in self.mechanisms:
            mech.on_demand_fill(line_addr, data, fetch)

    def on_evict(self, line_addr, data):
        """Broadcast a clean eviction to every member."""
        for mech in self.mechanisms:
            mech.on_evict(line_addr, data)

    def invalidate(self, line_addr):
        """Drop the line from every member (it is going stale)."""
        for mech in self.mechanisms:
            mech.invalidate(line_addr)

    def clear(self):
        """Crash: every member loses its volatile contents."""
        for mech in self.mechanisms:
            mech.clear()

    def __len__(self):
        return sum(len(mech) for mech in self.mechanisms)

    def __repr__(self):
        return "MechanismStack(%s)" % self.spec


def _parse_int(text, what):
    try:
        value = int(text)
    except ValueError:
        raise ConfigError("%s: %r is not an integer" % (what, text)) \
            from None
    return value


def _make_victim(arg, policy, label):
    capacity = _parse_int(arg, "victim capacity") if arg else 32
    return VictimCache(capacity=capacity, policy=policy, label=label)


def _make_miss(arg, policy, label):
    capacity = _parse_int(arg, "miss-cache capacity") if arg else 16
    return MissCache(capacity=capacity, policy=policy, label=label)


def _make_stream(arg, policy, label):
    buffers, depth = 4, 4
    if arg:
        parts = arg.split("x")
        if len(parts) != 2:
            raise ConfigError(
                "stream spec wants BUFFERSxDEPTH, got %r" % (arg,))
        buffers = _parse_int(parts[0], "stream buffers")
        depth = _parse_int(parts[1], "stream depth")
    return StreamBuffers(buffers=buffers, depth=depth, label=label)


def _make_nextline(arg, policy, label):
    capacity = _parse_int(arg, "next-line capacity") if arg else 16
    return NextLinePrefetch(capacity=capacity, label=label)


#: The mechanism registry: spec name -> factory(arg, policy, label).
MECHANISMS = {
    "victim": _make_victim,
    "miss": _make_miss,
    "stream": _make_stream,
    "nextline": _make_nextline,
}


def mechanism_names():
    """Spec names of every registered mechanism, sorted."""
    return sorted(MECHANISMS)


def make_mechanisms(spec, policy="lru", label_prefix="mech"):
    """Build a :class:`MechanismStack` from a spec string.

    Grammar: ``name[:arg]`` terms joined with ``+``; e.g. ``"victim"``,
    ``"victim:64"``, ``"stream:4x8"``, ``"victim:32+nextline:16"``.
    ``None``, ``""`` and ``"none"`` mean no mechanisms and return None
    (the hierarchy/device then run the exact pre-zoo miss path).
    ``policy`` parameterizes the buffer-internal replacement of the
    mechanisms that have one (victim, miss).
    """
    if isinstance(spec, MechanismStack):
        return spec
    if spec is None or spec == "" or spec == "none":
        return None
    mechanisms = []
    for term in spec.split("+"):
        term = term.strip()
        if not term:
            raise ConfigError("empty mechanism term in spec %r" % (spec,))
        name, _sep, arg = term.partition(":")
        factory = MECHANISMS.get(name)
        if factory is None:
            raise ConfigError("unknown mechanism %r (have %s)"
                              % (name, ", ".join(mechanism_names())))
        mechanisms.append(
            factory(arg, policy, "%s.%s" % (label_prefix, name)))
    return MechanismStack(mechanisms, spec)
