"""A module-level project index and best-effort call graph.

The flow checkers are mostly intraprocedural, but two questions need
cross-function facts:

* determinism taint: "does calling ``helper()`` return a value derived
  from wall-clock/entropy?" — so a call to a *locally defined or
  imported* tainted function is itself a taint source;
* PM escape: "is this callee defined in the current module, imported
  from a sanctioned owner, or foreign?"

:class:`ProjectIndex` parses every file once, records per-module
imports (local name → source module), top-level functions and methods,
class declarations (with base-class descriptors, so the interprocedural
layer can walk accessor→pool→device hierarchies across files), and
name-resolved call edges. Resolution is intentionally name-based and
conservative — Python's dynamism makes a sound call graph impossible,
and an over-approximate edge only ever makes the checkers *more*
suspicious, never silently blind.

Call descriptors come in three shapes:

``("local", name)``
    A bare-name call to a function defined (or assumed) in this module.
``("import", module, name)``
    A call through an imported name, aliased or not (``from a import b
    as c`` records ``("import", "a", "b")`` for ``c()``), or through a
    module alias (``import x.y as z; z.f()`` records
    ``("import", "x.y", "f")``).
``("attr", attr, receiver)``
    A method-style call ``recv.attr(...)``; ``receiver`` is the simple
    name of the receiver (``"self"``, ``"_wal"``, ...) or None when the
    receiver is a complex expression.

``functools.partial`` bindings are tracked as aliases: after
``g = functools.partial(f, x)`` a call ``g()`` records the descriptor
of ``f`` itself, and ``self._g = partial(self._f, x)`` routes
``self._g()`` to ``self._f``.
"""

import ast
import os


def module_key(path):
    """A stable module key for ``path``.

    Files inside a ``repro`` package get their dotted module path
    (``repro.structures.hashmap``); anything else falls back to the
    normalized file path, which is unique enough for fixture trees.
    """
    norm = path.replace(os.sep, "/")
    marker = "/repro/"
    index = norm.rfind(marker)
    if index >= 0:
        relative = "repro/" + norm[index + len(marker):]
    elif norm.startswith("repro/"):
        relative = norm
    else:
        relative = norm
    if relative.endswith(".py"):
        relative = relative[:-3]
    if relative.endswith("/__init__"):
        relative = relative[:-len("/__init__")]
    return relative.replace("/", ".")


def _name_of(expr):
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


class FunctionInfo:
    """One function or method: its AST node and resolved call targets."""

    __slots__ = ("qualname", "node", "calls", "module")

    def __init__(self, qualname, node, module=None):
        self.qualname = qualname
        self.node = node
        #: Owning module key (set by ModuleInfo; None for ad-hoc infos).
        self.module = module
        #: Callee descriptors (see the module docstring).
        self.calls = []

    def __repr__(self):
        return "FunctionInfo(%s, %d calls)" % (self.qualname,
                                               len(self.calls))


class ClassDecl:
    """One top-level class: base descriptors and its own methods."""

    __slots__ = ("name", "node", "module", "bases", "methods")

    def __init__(self, name, node, module):
        self.name = name
        self.node = node
        self.module = module
        #: Base-class descriptors: ``("local", name)`` or
        #: ``("import", module, name)``; unresolvable bases are omitted.
        self.bases = []
        #: method name -> FunctionInfo defined directly on this class.
        self.methods = {}

    def __repr__(self):
        return "ClassDecl(%s, %d methods)" % (self.name, len(self.methods))


class ModuleInfo:
    """Per-module facts: imports, functions, classes, call edges."""

    def __init__(self, key, path, tree):
        self.key = key
        self.path = path
        self.tree = tree
        #: local name -> source module (``import x.y`` binds ``x``;
        #: ``from a.b import c as d`` binds ``d`` -> ``a.b``;
        #: ``import x.y as z`` binds ``z`` -> ``x.y``).
        self.imports = {}
        #: local name -> original name in the source module (for
        #: ``from a import b as c`` this maps ``c`` -> ``b``).
        self.import_orig = {}
        #: qualname ("f" or "Cls.f") -> FunctionInfo.
        self.functions = {}
        #: class name -> ClassDecl (top-level classes only).
        self.classes = {}
        #: functools.partial aliases: bound name -> wrapped descriptor.
        self.partial_aliases = {}
        #: same, for ``self.<attr> = partial(...)`` bindings.
        self.partial_attr_aliases = {}
        self._collect()

    def _collect(self):
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name
                    self.import_orig[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = node.module
                    self.import_orig[local] = alias.name
        self._collect_partials()
        self._walk_scope(self.tree.body, prefix="", class_decl=None)

    # -- functools.partial aliases ---------------------------------------

    def _is_partial_call(self, value):
        if not isinstance(value, ast.Call) or not value.args:
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id == "partial" \
                and self.imports.get(func.id) == "functools"
        if isinstance(func, ast.Attribute) and func.attr == "partial":
            receiver = _name_of(func.value)
            return receiver == "functools" \
                or self.imports.get(receiver) == "functools"
        return False

    def _descriptor_for(self, expr):
        """The call descriptor naming ``expr`` as a callee, or None."""
        if isinstance(expr, ast.Name):
            if expr.id in self.imports:
                return ("import", self.imports[expr.id],
                        self.import_orig.get(expr.id, expr.id))
            return ("local", expr.id)
        if isinstance(expr, ast.Attribute):
            receiver = _name_of(expr.value)
            if receiver in self.imports:
                return ("import", self.imports[receiver], expr.attr)
            return ("attr", expr.attr, receiver)
        return None

    def _collect_partials(self):
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            if not self._is_partial_call(node.value):
                continue
            wrapped = self._descriptor_for(node.value.args[0])
            if wrapped is None:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.partial_aliases[target.id] = wrapped
            elif isinstance(target, ast.Attribute) \
                    and _name_of(target.value) == "self":
                self.partial_attr_aliases[target.attr] = wrapped

    # -- functions and classes -------------------------------------------

    def _walk_scope(self, body, prefix, class_decl):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + node.name
                info = FunctionInfo(qualname, node, module=self.key)
                self._record_calls(node, info)
                self.functions[qualname] = info
                # Plain name too, so ``self.helper()``-style resolution
                # by bare name can find methods.
                self.functions.setdefault(node.name, info)
                if class_decl is not None:
                    class_decl.methods[node.name] = info
            elif isinstance(node, ast.ClassDef):
                decl = None
                if class_decl is None:   # top-level classes only
                    decl = ClassDecl(node.name, node, self.key)
                    for base in node.bases:
                        descriptor = self._descriptor_for(base)
                        if descriptor is not None \
                                and descriptor[0] != "attr":
                            decl.bases.append(descriptor)
                    self.classes[node.name] = decl
                self._walk_scope(node.body, prefix=node.name + ".",
                                 class_decl=decl)

    def call_descriptor(self, callee):
        """The descriptor for a call whose ``func`` expression is
        ``callee`` — partial aliases resolved, imports followed — or
        None for complex callees (``f()()``, subscripts, ...)."""
        if isinstance(callee, ast.Name):
            if callee.id in self.partial_aliases:
                return self.partial_aliases[callee.id]
            if callee.id in self.imports:
                return ("import", self.imports[callee.id],
                        self.import_orig.get(callee.id, callee.id))
            return ("local", callee.id)
        if isinstance(callee, ast.Attribute):
            receiver = _name_of(callee.value)
            if receiver == "self" \
                    and callee.attr in self.partial_attr_aliases:
                return self.partial_attr_aliases[callee.attr]
            if receiver in self.imports:
                # ``import x.y as z; z.f()`` — a module-alias call,
                # not a method on a local object.
                return ("import", self.imports[receiver], callee.attr)
            return ("attr", callee.attr, receiver)
        return None

    def _record_calls(self, func, info):
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            descriptor = self.call_descriptor(node.func)
            if descriptor is not None:
                info.calls.append(descriptor)


class ProjectIndex:
    """All modules of one run, keyed by :func:`module_key`."""

    def __init__(self):
        self.modules = {}

    @classmethod
    def build(cls, sources):
        """Index ``sources``: an iterable of ``(path, source)`` pairs.

        Unparseable files are skipped — the engine reports them as
        ``parse-error`` findings separately.
        """
        index = cls()
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            info = ModuleInfo(module_key(path), path, tree)
            index.modules[info.key] = info
        return index

    def module_for(self, path):
        """The ModuleInfo for ``path`` (or None)."""
        return self.modules.get(module_key(path))

    def resolve(self, module, callee):
        """Resolve a callee descriptor to a FunctionInfo, or None.

        ``("local", f)`` looks in ``module``; ``("import", mod, f)``
        follows the import to another indexed module; ``("attr", a,
        recv)`` follows a module-alias receiver into the aliased module,
        otherwise resolves by bare method name within ``module`` only
        (methods on foreign objects are opaque).
        """
        kind = callee[0]
        if kind == "local":
            return module.functions.get(callee[1])
        if kind == "import":
            target = self.modules.get(callee[1])
            if target is not None:
                return target.functions.get(callee[2])
            return None
        if len(callee) >= 3 and callee[2] in module.imports:
            # Module-alias method call: resolve in the aliased module
            # (and nowhere else — falling back to a same-named local
            # function would fabricate an edge).
            target = self.modules.get(module.imports[callee[2]])
            if target is not None:
                return target.functions.get(callee[1])
            return None
        return module.functions.get(callee[1])

    def call_edges(self):
        """Iterate ``(caller_module, caller_func, callee_func)`` over every
        resolvable edge — the module-level call graph."""
        for module in self.modules.values():
            for info in module.functions.values():
                for callee in info.calls:
                    resolved = self.resolve(module, callee)
                    if resolved is not None:
                        yield module, info, resolved
