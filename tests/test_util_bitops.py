"""Alignment and range-splitting arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.util.bitops import (
    align_down,
    align_up,
    is_aligned,
    line_base,
    line_offset,
    lines_covering,
    page_base,
    pages_covering,
    split_lines,
    split_pages,
)
from repro.util.constants import CACHE_LINE_SIZE, PAGE_SIZE


class TestAlignment:
    def test_align_down_basic(self):
        assert align_down(100, 64) == 64
        assert align_down(64, 64) == 64
        assert align_down(63, 64) == 0

    def test_align_up_basic(self):
        assert align_up(100, 64) == 128
        assert align_up(64, 64) == 64
        assert align_up(1, 64) == 64
        assert align_up(0, 64) == 0

    def test_is_aligned(self):
        assert is_aligned(128, 64)
        assert not is_aligned(129, 64)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(AddressError):
            align_down(10, 48)
        with pytest.raises(AddressError):
            align_up(10, 3)
        with pytest.raises(AddressError):
            is_aligned(10, 0)

    @given(st.integers(min_value=0, max_value=1 << 48),
           st.sampled_from([1, 2, 8, 64, 4096]))
    def test_align_roundtrip_properties(self, value, alignment):
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert is_aligned(down, alignment)
        assert is_aligned(up, alignment)
        assert up - down in (0, alignment)


class TestLineMath:
    def test_line_base_and_offset(self):
        assert line_base(0) == 0
        assert line_base(63) == 0
        assert line_base(64) == 64
        assert line_offset(100) == 36

    def test_page_base(self):
        assert page_base(4095) == 0
        assert page_base(4096) == 4096


class TestSplitting:
    def test_split_within_one_line(self):
        assert list(split_lines(10, 8)) == [(0, 10, 8)]

    def test_split_across_lines(self):
        assert list(split_lines(60, 8)) == [(0, 60, 4), (64, 0, 4)]

    def test_split_exact_lines(self):
        chunks = list(split_lines(64, 128))
        assert chunks == [(64, 0, 64), (128, 0, 64)]

    def test_split_zero_size(self):
        assert list(split_lines(100, 0)) == []

    def test_split_negative_rejected(self):
        with pytest.raises(AddressError):
            list(split_lines(0, -1))

    def test_lines_covering(self):
        assert lines_covering(60, 8) == [0, 64]
        assert lines_covering(0, 64) == [0]

    def test_pages_covering(self):
        assert pages_covering(4090, 10) == [0, 4096]

    @given(st.integers(min_value=0, max_value=1 << 30),
           st.integers(min_value=0, max_value=10000))
    def test_split_lines_covers_exactly(self, addr, size):
        total = 0
        cursor = addr
        for base, offset, length in split_lines(addr, size):
            assert base % CACHE_LINE_SIZE == 0
            assert 0 <= offset < CACHE_LINE_SIZE
            assert base + offset == cursor
            assert 0 < length <= CACHE_LINE_SIZE - offset
            cursor += length
            total += length
        assert total == size

    @given(st.integers(min_value=0, max_value=1 << 30),
           st.integers(min_value=0, max_value=100000))
    def test_split_pages_covers_exactly(self, addr, size):
        total = sum(length for _b, _o, length in split_pages(addr, size))
        assert total == size
        for base, offset, _length in split_pages(addr, size):
            assert base % PAGE_SIZE == 0
