"""CXL message vocabulary: validation and wire sizes."""

import pytest

from repro.cxl import messages as msg
from repro.errors import ProtocolError


class TestValidation:
    def test_unaligned_addr_rejected(self):
        with pytest.raises(ProtocolError):
            msg.RdShared(0x41)
        with pytest.raises(ProtocolError):
            msg.SnpData(100)

    def test_aligned_ok(self):
        assert msg.RdShared(0x40).addr == 0x40

    def test_dirty_evict_needs_full_line(self):
        with pytest.raises(ProtocolError):
            msg.DirtyEvict(0x40, b"short")
        assert msg.DirtyEvict(0x40, b"\x00" * 64).wire_bytes == msg.DATA_BYTES

    def test_data_response_state_checked(self):
        with pytest.raises(ProtocolError):
            msg.DataResponse(0x40, b"\x00" * 64, "E")
        assert msg.DataResponse(0x40, b"\x00" * 64, "S").state == "S"

    def test_snp_response_sizes(self):
        empty = msg.SnpResponse(0x40)
        full = msg.SnpResponse(0x40, b"\x00" * 64)
        assert empty.wire_bytes == msg.HEADER_BYTES
        assert full.wire_bytes == msg.DATA_BYTES
        assert not empty.was_dirty
        assert full.was_dirty

    def test_snp_response_partial_data_rejected(self):
        with pytest.raises(ProtocolError):
            msg.SnpResponse(0x40, b"half")


class TestWireSizes:
    def test_address_only_smaller_than_data(self):
        assert msg.RdShared(0x40).wire_bytes < msg.DirtyEvict(
            0x40, b"\x00" * 64).wire_bytes

    def test_rd_own_is_address_only(self):
        assert msg.RdOwn(0x40).wire_bytes == msg.HEADER_BYTES

    def test_names(self):
        assert msg.RdShared(0x40).name == "RdShared"
        assert msg.Go(0x40).name == "Go"
