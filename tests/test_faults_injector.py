"""Fault primitives: torn writes, bit flips, and plan-driven injection."""

import pytest

from repro.crashtest import CrashInjector
from repro.errors import ConfigError
from repro.faults import (
    BIT_FLIP_REGIONS,
    BitFlipSpec,
    FaultInjector,
    FaultPlan,
    FaultyPmDevice,
    LinkFaultSpec,
)
from repro.pm.device import PmDevice
from repro.pm.pool import EPOCH_SLOT_OFFSETS, Pool
from repro.sim.rng import DeterministicRng
from repro.structures import HashMap
from tests.conftest import make_pax_pool, small_cache_kwargs

POOL_SIZE = 2 * 1024 * 1024


def make_faulty_pool(**overrides):
    device = FaultyPmDevice("pm0", POOL_SIZE)
    kwargs = dict(pm_device=device, pool_size=POOL_SIZE, log_size=64 * 1024)
    kwargs.update(small_cache_kwargs())
    kwargs.update(overrides)
    return make_pax_pool(**kwargs), device


class TestFaultyPmDevice:
    def test_behaves_like_pm_until_asked(self):
        device = FaultyPmDevice("pm0", 4096)
        device.write(64, b"hello")
        assert device.read(64, 5) == b"hello"

    def test_tear_keeps_prefix_reverts_suffix(self):
        device = FaultyPmDevice("pm0", 4096)
        device.write(128, b"\xAA" * 8)
        device.write(128, b"\xBB" * 8)
        offset, keep, total = device.tear_last_write(3)
        assert (offset, keep, total) == (128, 3, 8)
        assert device.read(128, 8) == b"\xBB" * 3 + b"\xAA" * 5
        assert device.stats.counter("writes_torn").value == 1

    def test_tear_clamps_keep_bytes(self):
        device = FaultyPmDevice("pm0", 4096)
        device.write(0, b"\x11" * 4)
        device.write(0, b"\x22" * 4)
        device.tear_last_write(99)
        assert device.read(0, 4) == b"\x22" * 4      # full payload kept
        device.write(0, b"\x33" * 4)
        device.tear_last_write(-5)
        assert device.read(0, 4) == b"\x22" * 4      # fully reverted

    def test_tear_with_empty_journal_is_none(self):
        device = FaultyPmDevice("pm0", 4096)
        assert device.tear_last_write(1) is None
        device.write(0, b"x")
        device.clear_journal()
        assert device.tear_last_write(1) is None

    def test_journal_depth_bounds_history(self):
        device = FaultyPmDevice("pm0", 4096, journal_depth=2)
        for index in range(5):
            device.write(index * 64, bytes([index]))
        assert device.last_write[0] == 4 * 64
        assert len(device._journal) == 2

    def test_flip_bit_bypasses_write_accounting(self):
        device = FaultyPmDevice("pm0", 4096)
        device.write(256, b"\x00" * 8)
        writes_before = device.stats.counter("writes").value
        device.flip_bit(256, 9)
        assert device.read(256, 2) == b"\x00\x02"
        assert device.stats.counter("writes").value == writes_before
        assert device.stats.counter("bits_flipped").value == 1

    def test_flip_random_bits_stays_in_range(self):
        device = FaultyPmDevice("pm0", 4096)
        rng = DeterministicRng(3)
        device.flip_random_bits(512, 16, 32, rng)
        assert device.read(0, 512) == bytes(512)
        assert device.read(528, 512) == bytes(512)
        assert device.stats.counter("bits_flipped").value == 32


class TestFaultPlan:
    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ConfigError):
            BitFlipSpec("heap").validate()
        with pytest.raises(ConfigError):
            BitFlipSpec("log", flips=0).validate()
        with pytest.raises(ConfigError):
            LinkFaultSpec(drop_rate=1.0).validate()
        with pytest.raises(ConfigError):
            LinkFaultSpec(max_retries=0).validate()
        with pytest.raises(ConfigError):
            FaultPlan(bitflips=(BitFlipSpec("bogus"),)).validate()

    def test_random_plans_are_valid_and_varied(self):
        rng = DeterministicRng(11)
        plans = [FaultPlan.random(rng) for _ in range(200)]
        assert any(p.torn_write for p in plans)
        assert any(p.link is not None for p in plans)
        regions = {s.region for p in plans for s in p.bitflips}
        assert regions == set(BIT_FLIP_REGIONS)
        assert any(p.is_benign for p in plans)

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan(torn_write=True,
                         bitflips=(BitFlipSpec("epoch"),),
                         link=LinkFaultSpec())
        text = plan.describe()
        assert "torn-write" in text and "epoch" in text and "lossy" in text
        assert FaultPlan().describe() == "clean-crash"


class TestCrashInjectorHookLifetime:
    def test_unrelated_exception_disarms_hook(self):
        # Regression: an exception other than CrashSignal used to leave
        # the store hook armed, so the countdown fired during whatever
        # the caller did next.
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=16)
        injector = CrashInjector(pool.machine)
        injector.arm(10_000)      # far beyond what explodes() stores

        def explodes():
            table.put(1, 1)
            raise ValueError("unrelated bug")

        with pytest.raises(ValueError):
            injector.run(explodes)
        assert pool.machine.store_hook is None
        for key in range(32):          # plenty of stores; must not crash
            table.put(key, key)
        assert not pool.machine.crashed
        assert injector.stats.counter("crashes_fired").value == 0

    def test_completed_not_counted_on_exception(self):
        pool = make_pax_pool()
        injector = CrashInjector(pool.machine)
        injector.arm(1)
        with pytest.raises(ValueError):
            injector.run(lambda: (_ for _ in ()).throw(ValueError()))
        assert injector.stats.counter("completed").value == 0


class TestFaultInjector:
    def test_torn_write_requires_faulty_device(self):
        pool = make_pax_pool(pm_device=PmDevice("pm0", POOL_SIZE),
                             pool_size=POOL_SIZE)
        with pytest.raises(ConfigError):
            FaultInjector(pool.machine, FaultPlan(torn_write=True))

    def test_crash_applies_tear_to_last_pm_write(self):
        pool, device = make_faulty_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(8):
            table.put(key, key)
        pool.persist()                      # guarantees PM writes happened
        injector = FaultInjector(pool.machine,
                                 FaultPlan(torn_write=True, seed=5))
        injector.crash()
        assert pool.machine.crashed
        assert injector.stats.counter("tears_applied").value == 1
        assert device.stats.counter("writes_torn").value == 1

    def test_epoch_flip_hits_a_slot(self):
        pool, device = make_faulty_pool()
        table = pool.persistent(HashMap, capacity=16)
        table.put(1, 1)
        pool.persist()
        plan = FaultPlan(bitflips=(BitFlipSpec("epoch", flips=4),), seed=9)
        injector = FaultInjector(pool.machine, plan)
        before = [bytes(device.read(off, 12)) for off in EPOCH_SLOT_OFFSETS]
        injector.crash()
        after = [bytes(device.read(off, 12)) for off in EPOCH_SLOT_OFFSETS]
        assert before != after
        assert injector.stats.counter("flips_applied").value == 4

    def test_log_flip_skipped_when_log_too_short(self):
        pool, device = make_faulty_pool()
        pool.persistent(HashMap, capacity=16)
        pool.persist()                      # log reset: no interior entries
        plan = FaultPlan(bitflips=(BitFlipSpec("log"),), seed=9)
        injector = FaultInjector(pool.machine, plan)
        injector.crash()
        assert injector.stats.counter("flips_skipped").value == 1

    def test_run_composes_with_crash_injector(self):
        pool, device = make_faulty_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(8):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        injector = FaultInjector(pool.machine,
                                 FaultPlan(torn_write=True, seed=21))
        injector.arm(5)
        crashed = injector.run(
            lambda: [table.put(k, k + 100) for k in range(8)])
        assert crashed
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        assert recovered.to_dict() == snapshot
