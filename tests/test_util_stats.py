"""Counters, histograms, and stat groups."""

import pytest

from repro.errors import StatsError
from repro.util.stats import Counter, Histogram, StatGroup, ratio


class TestCounter:
    def test_add_and_value(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(StatsError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_mean_min_max(self):
        hist = Histogram("lat")
        for value in (1.0, 2.0, 3.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_stddev(self):
        hist = Histogram("lat")
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            hist.record(value)
        assert hist.stddev == pytest.approx(2.0)

    def test_percentile(self):
        hist = Histogram("lat")
        for value in range(1, 101):
            hist.record(float(value))
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_empty_histogram(self):
        hist = Histogram("lat")
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_reservoir_bounded(self):
        hist = Histogram("lat")
        for value in range(10000):
            hist.record(float(value))
        assert len(hist._reservoir) <= Histogram.RESERVOIR_SIZE
        assert hist.count == 10000


class TestStatGroup:
    def test_counter_creation_and_get(self):
        group = StatGroup("owner")
        group.counter("hits").add(2)
        assert group.get("hits") == 2
        assert group.get("absent") == 0

    def test_counters_dict(self):
        group = StatGroup("owner")
        group.counter("a").add(1)
        group.counter("b").add(2)
        assert group.counters() == {"a": 1, "b": 2}

    def test_reset_all(self):
        group = StatGroup("owner")
        group.counter("a").add(1)
        group.histogram("h").record(5)
        group.reset()
        assert group.get("a") == 0
        assert group.histogram("h").count == 0

    def test_snapshot_includes_histograms(self):
        group = StatGroup("owner")
        group.histogram("h").record(4)
        snap = group.snapshot()
        assert snap["h.count"] == 1
        assert snap["h.mean"] == 4


def test_ratio():
    assert ratio(1, 2) == 0.5
    assert ratio(1, 0) == 0.0
