"""The page-fault interposition baseline (paper §1, refs [12, 15, 20]).

The persistent region is mapped read-only at the start of each epoch; the
first store to a page traps (>1 µs on modern x86 — the paper's number),
the fault handler logs the *whole 4 KiB page's* old contents, the page is
remapped read-write, and execution continues. ``persist()`` flushes the
dirty pages, publishes the epoch, and re-protects everything.

This gives the same snapshot semantics as PAX with unmodified structure
code — and the two costs the paper hammers on: trap latency on every
first-touch, and 64x write amplification in the log (4 KiB per page vs
96 B per line).
"""

import struct

from repro.baselines.base import StructureBackend
from repro.errors import LogError
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HEAP_PHYS_BASE, HostMachine
from repro.mem.page_table import FaultingAccessor, PagePermission, PageTable
from repro.pm.flush import FlushModel
from repro.util.bitops import align_down
from repro.util.checksum import crc32c
from repro.util.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.util.stats import StatGroup

PAGE_ENTRY_MAGIC = 0x50474C47          # "PGLG"
PAGE_ENTRY_HEADER = 64
PAGE_ENTRY_SIZE = PAGE_ENTRY_HEADER + PAGE_SIZE

_HEADER = struct.Struct("<IIQQI")       # magic, pad, epoch, addr, crc

_U64 = struct.Struct("<Q")


class _PageLogLayout:
    """Reserved offsets at the top of the heap for the page log."""

    def __init__(self, heap_size, log_pages):
        self.root_cell = heap_size - CACHE_LINE_SIZE
        self.commit_cell = heap_size - 2 * CACHE_LINE_SIZE
        self.log_base = align_down(
            self.commit_cell - log_pages * PAGE_ENTRY_SIZE, PAGE_SIZE)
        self.log_size = self.commit_cell - self.log_base
        self.arena_limit = self.log_base
        if self.arena_limit < 2 * PAGE_SIZE:
            raise LogError("heap too small for a %d-page log" % log_pages)


class PageLog:
    """Undo log of whole pages, written directly to PM."""

    def __init__(self, machine, layout):
        self._space = machine.space
        self._layout = layout
        self.write_offset = 0
        self.stats = StatGroup("page_log")

    def append(self, epoch, page_addr, old_page):
        """Durably log one page's pre-image."""
        if self.write_offset + PAGE_ENTRY_SIZE > self._layout.log_size:
            raise LogError("page log full; persist() more often")
        header = _HEADER.pack(PAGE_ENTRY_MAGIC, 0, epoch, page_addr,
                              crc32c(old_page))
        base = HEAP_PHYS_BASE + self._layout.log_base + self.write_offset
        self._space.write(base, header.ljust(PAGE_ENTRY_HEADER, b"\x00"))
        self._space.write(base + PAGE_ENTRY_HEADER, old_page)
        self.write_offset += PAGE_ENTRY_SIZE
        self.stats.counter("pages").add(1)
        self.stats.counter("bytes").add(PAGE_ENTRY_SIZE)

    def scan(self):
        """Yield ``(epoch, page_addr, old_page)`` durable entries in order."""
        offset = 0
        while offset + PAGE_ENTRY_SIZE <= self._layout.log_size:
            base = HEAP_PHYS_BASE + self._layout.log_base + offset
            blob = self._space.read(base, PAGE_ENTRY_HEADER)
            magic, _pad, epoch, addr, crc = _HEADER.unpack_from(blob, 0)
            if magic != PAGE_ENTRY_MAGIC:
                return
            page = self._space.read(base + PAGE_ENTRY_HEADER, PAGE_SIZE)
            if crc32c(page) != crc:
                return
            yield epoch, addr, page
            offset += PAGE_ENTRY_SIZE

    def reset(self):
        """Rewind after an epoch commit."""
        self._space.write(HEAP_PHYS_BASE + self._layout.log_base,
                          bytes(PAGE_ENTRY_HEADER))
        self.write_offset = 0


class MprotectBackend(StructureBackend):
    """Page-fault tracked, epoch-snapshotted hash table on PM."""

    name = "mprotect"
    crash_consistent = True

    def __init__(self, heap_size=64 * 1024 * 1024, log_pages=None,
                 capacity=1024, **machine_kwargs):
        super().__init__()
        self._machine = HostMachine(media="pm", heap_size=heap_size,
                                    **machine_kwargs)
        if log_pages is None:
            # Default: a quarter of the heap holds pre-images.
            log_pages = max(16, heap_size // (4 * PAGE_ENTRY_SIZE))
        self._layout = _PageLogLayout(heap_size, log_pages)
        self._flush = FlushModel(self._machine.clock, self._machine.latency)
        self._log = PageLog(self._machine, self._layout)
        self._table = PageTable(0, self._layout.arena_limit)
        self._mem = FaultingAccessor(self._machine.mem(), self._table,
                                     self._on_fault)
        self._epoch = self._read_cell(self._layout.commit_cell) + 1
        self._capacity = capacity
        root = self._read_cell(self._layout.root_cell)
        if root == 0:
            # Build the initial structure unprotected, then take the first
            # snapshot to establish epoch 1.
            self._alloc = PmAllocator.create(self._mem,
                                             self._layout.arena_limit)
            self._bind_structure(self._mem, self._alloc, capacity=capacity)
            self.persist()
            self._write_cell(self._layout.root_cell, self._map.root)
        else:
            self._alloc = PmAllocator.attach(self._mem)
            self._reattach_structure(self._mem, self._alloc, root)
            self._table.protect_all(PagePermission.READ)

    # -- durable cells -----------------------------------------------------------

    def _read_cell(self, offset):
        return _U64.unpack(
            self._machine.space.read(HEAP_PHYS_BASE + offset, 8))[0]

    def _write_cell(self, offset, value):
        self._machine.space.write(HEAP_PHYS_BASE + offset, _U64.pack(value))

    @property
    def machine(self):
        return self._machine

    # -- fault handling -----------------------------------------------------------

    def _on_fault(self, page):
        """First store to ``page`` this epoch: trap, log pre-image, unprotect."""
        self._machine.clock.advance(self._machine.latency.software.page_fault_ns)
        old_page = self._machine.space.read(HEAP_PHYS_BASE + page, PAGE_SIZE)
        self._log.append(self._epoch, page, old_page)
        self._flush.sfence()
        self._table.protect(page, PAGE_SIZE, PagePermission.READ_WRITE)
        self.stats.counter("page_faults").add(1)

    # -- durability point -------------------------------------------------------------

    def persist(self):
        """Snapshot commit: flush dirty pages, publish epoch, re-protect."""
        for page in self._table.dirty_pages():
            self._flush.clwb(page, PAGE_SIZE)
            for line in range(page, page + PAGE_SIZE, CACHE_LINE_SIZE):
                self._machine.hierarchy.writeback_line(HEAP_PHYS_BASE + line)
        self._flush.sfence()
        self._write_cell(self._layout.commit_cell, self._epoch)
        self._flush.sfence()
        self._log.reset()
        self._table.clear_dirty()
        self._table.protect_all(PagePermission.READ)
        self._epoch += 1
        self.stats.counter("persists").add(1)

    # -- crash / recovery ----------------------------------------------------------------

    def restart(self):
        """Reboot; roll back pages of the uncommitted epoch."""
        self._machine.restart()
        committed = self._read_cell(self._layout.commit_cell)
        to_undo = [(epoch, addr, page) for epoch, addr, page in self._log.scan()
                   if epoch > committed]
        for _epoch, addr, page in reversed(to_undo):
            self._machine.space.write(HEAP_PHYS_BASE + addr, page)
        self._log.reset()
        self._epoch = committed + 1
        self._table = PageTable(0, self._layout.arena_limit)
        self._mem = FaultingAccessor(self._machine.mem(), self._table,
                                     self._on_fault)
        self._alloc = PmAllocator.attach(self._mem)
        self._reattach_structure(self._mem, self._alloc,
                                 self._read_cell(self._layout.root_cell))
        self._table.protect_all(PagePermission.READ)
        return len(to_undo)

    @property
    def log_bytes(self):
        """Bytes of page log written (write-amplification accounting)."""
        return self._log.stats.get("bytes")

    @property
    def fault_count(self):
        """Page faults taken (trap-overhead accounting)."""
        return self.stats.get("page_faults")
