"""The on-PM undo log region: encoding, scanning, durability discipline."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LogError
from repro.pm.device import PmDevice
from repro.pm.log import (
    ENTRY_SIZE,
    UndoLogRegion,
    decode_entry,
    encode_entry,
)


def region(entries=16):
    device = PmDevice("pm", 1 << 20)
    return UndoLogRegion(device, 4096, entries * ENTRY_SIZE), device


class TestEncoding:
    def test_roundtrip(self):
        blob = encode_entry(5, 0x1000, b"\xaa" * 64)
        entry = decode_entry(blob)
        assert entry.epoch == 5
        assert entry.addr == 0x1000
        assert entry.data == b"\xaa" * 64

    def test_short_payload_preserved(self):
        entry = decode_entry(encode_entry(1, 0x40, b"abc"))
        assert entry.data == b"abc"

    def test_entry_size_fixed(self):
        assert len(encode_entry(1, 0x40, b"x")) == ENTRY_SIZE

    def test_unaligned_addr_rejected(self):
        with pytest.raises(LogError):
            encode_entry(1, 0x41, b"x")

    def test_oversize_payload_rejected(self):
        with pytest.raises(LogError):
            encode_entry(1, 0x40, b"x" * 65)

    def test_empty_payload_rejected(self):
        with pytest.raises(LogError):
            encode_entry(1, 0x40, b"")

    def test_corrupt_crc_detected(self):
        blob = bytearray(encode_entry(1, 0x40, b"data"))
        blob[30] ^= 0xFF
        assert decode_entry(bytes(blob)) is None

    def test_garbage_not_decoded(self):
        assert decode_entry(b"\x00" * ENTRY_SIZE) is None
        assert decode_entry(b"\xff" * ENTRY_SIZE) is None
        assert decode_entry(b"short") is None

    @given(st.integers(min_value=0, max_value=2**63),
           st.binary(min_size=1, max_size=64))
    def test_roundtrip_property(self, epoch, payload):
        entry = decode_entry(encode_entry(epoch, 0x1000, payload))
        assert entry is not None
        assert entry.epoch == epoch
        assert entry.data == payload


class TestRegion:
    def test_append_then_scan(self):
        log, _device = region()
        log.append(1, 0x1000, b"a" * 64)
        log.append(1, 0x1040, b"b" * 64)
        entries = list(log.scan())
        assert [e.addr for e in entries] == [0x1000, 0x1040]

    def test_scan_is_durable_only(self):
        # A fresh region object (volatile offset lost) must still scan.
        log, device = region()
        log.append(3, 0x1000, b"z" * 64)
        fresh = UndoLogRegion(device, 4096, log.size)
        assert [e.epoch for e in fresh.scan()] == [3]

    def test_capacity_enforced(self):
        log, _device = region(entries=2)
        log.append(1, 0x0, b"a")
        log.append(1, 0x40, b"b")
        assert log.is_full
        with pytest.raises(LogError):
            log.append(1, 0x80, b"c")

    def test_reset_poisons_scan(self):
        log, _device = region()
        log.append(1, 0x1000, b"a" * 64)
        log.append(1, 0x1040, b"b" * 64)
        log.reset()
        assert list(log.scan()) == []
        assert log.used_entries == 0

    def test_entries_beyond_reset_not_resurrected(self):
        log, _device = region()
        for index in range(4):
            log.append(1, 0x1000 + index * 64, bytes([index]) * 64)
        log.reset()
        log.append(2, 0x2000, b"n" * 64)
        entries = list(log.scan())
        # Only the new entry: old epoch-1 entries are unreachable.
        assert len(entries) == 1
        assert entries[0].epoch == 2

    def test_append_returns_monotonic_offsets(self):
        log, _device = region()
        offsets = [log.append(1, 0x1000 + i * 64, b"x") for i in range(5)]
        assert offsets == sorted(offsets)
        assert offsets[1] - offsets[0] == ENTRY_SIZE

    def test_region_too_small_rejected(self):
        with pytest.raises(LogError):
            UndoLogRegion(PmDevice("pm", 1 << 20), 4096, 10)
