"""Generic forward dataflow over :mod:`repro.staticcheck.cfg` graphs.

Two reusable pieces:

* :class:`ForwardAnalysis` — a worklist fixpoint solver parameterised by
  a lattice (``boundary``/``top``/``meet``) and a per-event ``transfer``
  function. Both *may* analyses (taint: meet = union, start empty) and
  *must* analyses (gate dominance: meet = intersection, start ⊤) fit.
* :func:`dominators` — classic iterative dominator sets, the "on all
  paths before" relation the persist-order checker's argument is phrased
  in (a block B dominates C iff every path from entry to C passes B).
* :func:`postdominators` — the mirror relation over reversed edges
  ("on all paths after"): B post-dominates C iff every path from C to
  the exit passes B. The auto-fix pass uses it to argue a close-gate
  site covers every store it merges.

Facts must be immutable values supporting ``==`` (frozensets in every
built-in checker); ``TOP`` is a distinguished "not yet reached /
no constraint" element the solver understands natively so transfer
functions never see it.
"""

from repro.errors import LintError

#: Lattice top: the fact of a block the solver has not reached yet.
TOP = object()


class ForwardAnalysis:
    """Worklist solver for forward dataflow problems.

    Subclasses override :meth:`boundary` (fact at function entry),
    :meth:`meet` (combine facts at a join), and :meth:`transfer`
    (fact after one event). ``solve`` returns ``{block: in_fact}``;
    callers then re-apply ``transfer`` event by event inside a block to
    inspect intermediate program points (that is how checkers locate the
    exact offending statement).
    """

    #: Safety valve: a function whose CFG needs more sweeps than this is
    #: malformed (the repro tree converges in < 10).
    MAX_ITERATIONS = 200

    def boundary(self):
        """The fact holding at function entry."""
        raise NotImplementedError

    def meet(self, left, right):
        """Combine two incoming facts at a control-flow join."""
        raise NotImplementedError

    def transfer(self, fact, kind, node):
        """The fact after event ``(kind, node)`` given ``fact`` before it."""
        raise NotImplementedError

    # -- solver -----------------------------------------------------------

    def _meet_top(self, left, right):
        if left is TOP:
            return right
        if right is TOP:
            return left
        return self.meet(left, right)

    def block_out(self, fact, block):
        """Apply every event of ``block`` to ``fact``."""
        for kind, node in block.events:
            fact = self.transfer(fact, kind, node)
        return fact

    def solve(self, cfg):
        """Fixpoint; returns ``{block: fact-at-block-entry}``."""
        order = cfg.reverse_postorder()
        in_facts = {block: TOP for block in cfg.blocks}
        in_facts[cfg.entry] = self.boundary()
        out_facts = {block: TOP for block in cfg.blocks}

        iterations = 0
        changed = True
        while changed:
            iterations += 1
            if iterations > self.MAX_ITERATIONS:
                raise LintError(
                    "dataflow did not converge in %d sweeps over %r"
                    % (self.MAX_ITERATIONS, getattr(cfg.func, "name", "?")))
            changed = False
            for block in order:
                incoming = in_facts[block] if block is cfg.entry else TOP
                for predecessor in block.predecessors:
                    incoming = self._meet_top(incoming,
                                              out_facts[predecessor])
                if incoming is TOP:
                    continue
                if incoming != in_facts[block]:
                    in_facts[block] = incoming
                    changed = True
                outgoing = self.block_out(incoming, block)
                if outgoing != out_facts[block]:
                    out_facts[block] = outgoing
                    changed = True
        return in_facts


class SetUnionAnalysis(ForwardAnalysis):
    """Convenience base for may-analyses over frozensets (meet = union)."""

    def boundary(self):
        return frozenset()

    def meet(self, left, right):
        return left | right


class SetIntersectAnalysis(ForwardAnalysis):
    """Convenience base for must-analyses over frozensets (meet = ∩)."""

    def boundary(self):
        return frozenset()

    def meet(self, left, right):
        return left & right


def dominators(cfg):
    """Dominator sets ``{block: set of blocks dominating it}``.

    The entry dominates everything; unreachable blocks dominate nothing
    and are reported as dominated only by themselves.
    """
    order = cfg.reverse_postorder()
    reachable = set(order)
    every = frozenset(order)
    dom = {}
    for block in cfg.blocks:
        if block is cfg.entry:
            dom[block] = {block}
        elif block in reachable:
            dom[block] = set(every)
        else:
            dom[block] = {block}

    changed = True
    while changed:
        changed = False
        for block in order:
            if block is cfg.entry:
                continue
            new = None
            for predecessor in block.predecessors:
                if predecessor not in reachable:
                    continue
                if new is None:
                    new = set(dom[predecessor])
                else:
                    new &= dom[predecessor]
            if new is None:
                new = set()
            new.add(block)
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def postdominators(cfg):
    """Post-dominator sets ``{block: set of blocks post-dominating it}``.

    :func:`dominators` run over reversed edges from the virtual exit:
    the exit post-dominates everything that reaches it. Blocks that
    cannot reach the exit (code parked after a jump, or bodies of
    ``while True`` loops with no break) post-dominate nothing and are
    reported as post-dominated only by themselves.
    """
    reaches_exit = set()
    stack = [cfg.exit]
    while stack:
        block = stack.pop()
        if block in reaches_exit:
            continue
        reaches_exit.add(block)
        stack.extend(block.predecessors)
    # Deterministic iteration order (block creation order).
    order = [block for block in cfg.blocks if block in reaches_exit]
    every = frozenset(order)
    pdom = {}
    for block in cfg.blocks:
        if block is cfg.exit:
            pdom[block] = {block}
        elif block in reaches_exit:
            pdom[block] = set(every)
        else:
            pdom[block] = {block}

    changed = True
    while changed:
        changed = False
        for block in order:
            if block is cfg.exit:
                continue
            new = None
            for successor in block.successors:
                if successor not in reaches_exit:
                    continue
                if new is None:
                    new = set(pdom[successor])
                else:
                    new &= pdom[successor]
            if new is None:
                new = set()
            new.add(block)
            if new != pdom[block]:
                pdom[block] = new
                changed = True
    return pdom
