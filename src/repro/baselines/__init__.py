"""Every system under comparison, behind one key-value interface."""

from repro.baselines.autopass import AutopassBackend
from repro.baselines.base import KvBackend, StructureBackend
from repro.baselines.compiler_pass import CompilerPassBackend
from repro.baselines.dram import DramBackend
from repro.baselines.hybrid import HybridBackend
from repro.baselines.mprotect import MprotectBackend
from repro.baselines.pax import PaxBackend, make_backend
from repro.baselines.pm_direct import PmDirectBackend
from repro.baselines.pmdk import PmdkBackend
from repro.baselines.redo import RedoBackend

__all__ = [
    "AutopassBackend",
    "CompilerPassBackend",
    "DramBackend",
    "HybridBackend",
    "KvBackend",
    "MprotectBackend",
    "PaxBackend",
    "PmDirectBackend",
    "PmdkBackend",
    "RedoBackend",
    "StructureBackend",
    "make_backend",
]
