"""CLI for trace record / replay / verification.

Examples::

    python -m repro.replay record --workload store_heavy --backend pax \
        --out pax.trace                         # capture one perfbench cell
    python -m repro.replay info pax.trace       # header + footer summary
    python -m repro.replay replay pax.trace     # re-execute, print result
    python -m repro.replay verify pax.trace     # fast vs generic vs footer

``record`` drives a perfbench workload (perfbench-standard backend
sizing) through the recorder; traces from other sources replay fine as
long as the backend is built the same way it was recorded.

``verify`` is the golden-equivalence check in CLI form: the trace is
replayed onto two fresh backends — once forced through the generic
(per-event dispatch) engine, once through the fast columnar engine when
the backend shape is eligible — and the two machine-wide fingerprints
are diffed key by key, then checked against the footer's recorded
``sim_ns``. Exit status: 0 verified, 1 mismatch, 2 malformed trace.

This package feeds simulation state, so it must stay deterministic: no
wall-clock imports here (``replay_trace`` takes an injected stopwatch;
the CLI simply doesn't time anything).
"""

import argparse
import sys

from repro.errors import TraceFormatError, TraceUnsupportedError
from repro.replay.engine import fast_eligible, replay_trace
from repro.replay.equivalence import diff, fingerprint
from repro.replay.format import KIND_NAMES, load_trace


def _build_backend(name):
    # Imported lazily so `python -m repro.replay info` on a malformed
    # trace never pays for (or trips over) the baselines package.
    from repro.perfbench import build_backend
    return build_backend(name)


def _cmd_record(args):
    from repro.perfbench import _record_cell_trace
    trace, timed_sim = _record_cell_trace(
        args.workload, args.backend, args.ops, args.records, args.seed)
    size = trace.save(args.out)
    print("wrote %s: %d events, %d bytes, timed phase %d sim-ns"
          % (args.out, len(trace), size, timed_sim))
    return 0


def _cmd_info(args):
    trace = load_trace(args.trace)
    footer = trace.footer
    print("events:   %d" % len(trace))
    print("payload:  %d bytes" % len(trace.payload))
    print("backend:  %s" % footer.get("backend"))
    print("sim_ns:   %s -> %s"
          % (footer.get("sim_ns_start"), footer.get("sim_ns_end")))
    kinds = {}
    for kind in trace.kinds:
        kinds[kind] = kinds.get(kind, 0) + 1
    for kind in sorted(kinds):
        print("  %-16s %d" % (KIND_NAMES.get(kind, kind), kinds[kind]))
    meta = footer.get("meta")
    if meta:
        print("meta:     %s" % meta)
    return 0


def _cmd_replay(args):
    trace = load_trace(args.trace)
    backend = _build_backend(trace.footer["backend"])
    result = replay_trace(trace, backend, engine=args.engine)
    print("engine:   %s" % result.engine)
    print("events:   %d" % result.events)
    print("sim_ns:   %d" % result.sim_ns)
    expected = trace.footer.get("sim_ns_end")
    if expected is not None and result.sim_ns != expected:
        print("MISMATCH: footer recorded sim_ns_end %d" % expected,
              file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args):
    trace = load_trace(args.trace)
    name = trace.footer["backend"]
    generic = _build_backend(name)
    replay_trace(trace, generic, engine="generic")
    golden = fingerprint(generic)
    failures = 0
    expected = trace.footer.get("sim_ns_end")
    if expected is not None and golden.get("sim_ns") != expected:
        print("MISMATCH: generic replay ended at %s sim-ns, footer "
              "recorded %s" % (golden.get("sim_ns"), expected),
              file=sys.stderr)
        failures += 1
    fast_backend = _build_backend(name)
    if fast_eligible(fast_backend):
        replay_trace(trace, fast_backend, engine="fast")
        delta = diff(golden, fingerprint(fast_backend))
        for key, a, b in delta:
            print("MISMATCH: %s: generic=%r fast=%r" % (key, a, b),
                  file=sys.stderr)
        failures += len(delta)
        engines = "generic+fast"
    else:
        engines = "generic"
    if failures:
        return 1
    print("verified %s: %d events, %s engines agree, sim_ns %s"
          % (args.trace, len(trace), engines, golden.get("sim_ns")))
    return 0


def _cmd_coverage(args):
    from repro.replay.coverage import coverage
    trace = load_trace(args.trace)
    report = coverage(trace)
    print("backend:          %s" % trace.footer.get("backend"))
    print("PM stores:        %d" % report.stores)
    print("  wal-protected:  %d" % report.wal_protected)
    print("  persist-retired:%d" % report.persist_retired)
    print("  exposed:        %d" % report.exposed)
    print("wal windows:      %d" % report.wal_windows)
    print("persists:         %d" % report.persists)
    print("verdict:          %s"
          % ("safe (crash at end loses nothing)" if report.safe
             else "UNSAFE (%d store(s) lost by a crash at end)"
             % report.exposed))
    return 0 if report.safe else 1


def main(argv=None):
    """Dispatch a replay subcommand; return a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description="Record, inspect, replay, and verify simulation "
                    "traces.")
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.perfbench import (BACKENDS, DEFAULT_OPS, DEFAULT_RECORDS,
                                 DEFAULT_SEED, WORKLOADS)
    rec = sub.add_parser("record", help="record one perfbench cell")
    rec.add_argument("--workload", default="store_heavy",
                     choices=WORKLOADS)
    rec.add_argument("--backend", default="pax", choices=BACKENDS)
    rec.add_argument("--ops", type=int, default=DEFAULT_OPS)
    rec.add_argument("--records", type=int, default=DEFAULT_RECORDS)
    rec.add_argument("--seed", type=int, default=DEFAULT_SEED)
    rec.add_argument("--out", required=True, help="trace output path")
    rec.set_defaults(func=_cmd_record)

    info = sub.add_parser("info", help="print trace header and footer")
    info.add_argument("trace")
    info.set_defaults(func=_cmd_info)

    rep = sub.add_parser("replay", help="replay a trace once")
    rep.add_argument("trace")
    rep.add_argument("--engine", default="auto",
                     choices=("auto", "fast", "generic"))
    rep.set_defaults(func=_cmd_replay)

    ver = sub.add_parser("verify",
                         help="replay through both engines and diff")
    ver.add_argument("trace")
    ver.set_defaults(func=_cmd_verify)

    cov = sub.add_parser("coverage",
                         help="store-protection breakdown (exit 1 if a "
                              "crash at end-of-trace would lose stores)")
    cov.add_argument("trace")
    cov.set_defaults(func=_cmd_coverage)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TraceFormatError as exc:
        print("trace format error: %s" % exc, file=sys.stderr)
        return 2
    except TraceUnsupportedError as exc:
        print("trace unsupported: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
