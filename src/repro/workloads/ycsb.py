"""YCSB-style workload mixes.

The standard cloud-serving benchmark mixes, expressed as traces over our
u64 key-value interface (YCSB's scan/RMW are mapped onto the operations
the hash table supports):

=====  =============================  ======================
mix    composition                    paper relevance
=====  =============================  ======================
A      50% read / 50% update          update-heavy
B      95% read / 5% update           read-mostly
C      100% read                      the Fig 2a get() shape
D      95% read / 5% insert (latest)  read-latest
F      50% read / 50% RMW             read-modify-write
W      100% insert/update             the Fig 2b write-only shape
=====  =============================  ======================
"""

from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng
from repro.workloads.keys import KeySequence
from repro.workloads.trace import Op

#: (read_fraction, update_fraction, insert_fraction, rmw_fraction)
MIXES = {
    "A": (0.50, 0.50, 0.00, 0.00),
    "B": (0.95, 0.05, 0.00, 0.00),
    "C": (1.00, 0.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05, 0.00),
    "F": (0.50, 0.00, 0.00, 0.50),
    "W": (0.00, 1.00, 0.00, 0.00),
}


class YcsbWorkload:
    """Generates load + run traces for one mix."""

    def __init__(self, mix="A", record_count=1000, op_count=1000,
                 distribution="zipfian", seed=42):
        if mix not in MIXES:
            raise ConfigError("unknown YCSB mix %r (have %s)"
                              % (mix, ", ".join(sorted(MIXES))))
        self.mix = mix
        self.record_count = record_count
        self.op_count = op_count
        self.distribution = distribution
        self.seed = seed

    def load_trace(self):
        """The load phase: insert every record once."""
        keys = KeySequence(self.record_count, "sequential", seed=self.seed)
        return [Op("put", keys.next(), index) for index in range(self.record_count)]

    def run_trace(self):
        """The run phase: ``op_count`` operations in the mix's proportions."""
        read_f, update_f, insert_f, rmw_f = MIXES[self.mix]
        rng = DeterministicRng(self.seed + 1)
        keys = KeySequence(self.record_count, self.distribution,
                           seed=self.seed + 2)
        trace = []
        inserted = self.record_count
        for index in range(self.op_count):
            roll = rng.random()
            key = keys.next()
            if roll < read_f:
                trace.append(Op("get", key))
            elif roll < read_f + update_f:
                trace.append(Op("put", key, index))
            elif roll < read_f + update_f + insert_f:
                # Insert a fresh key ("latest" style).
                fresh = KeySequence(inserted + 1, "sequential").space.key(inserted)
                inserted += 1
                trace.append(Op("put", fresh, index))
            else:
                # Read-modify-write: a get followed by a put of the key.
                trace.append(Op("get", key))
                trace.append(Op("put", key, index))
        return trace

    def __repr__(self):
        return "YcsbWorkload(%s, %d recs, %d ops, %s)" % (
            self.mix, self.record_count, self.op_count, self.distribution)
