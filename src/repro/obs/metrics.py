"""The metrics registry: named, labeled series over StatGroups.

Every simulated component already owns a
:class:`~repro.util.stats.StatGroup` of bound counters and histograms
(the PR3 fast-path discipline); what was missing is one place that knows
about all of them. A :class:`MetricsRegistry` holds ``(StatGroup,
labels)`` registrations and renders them three ways:

* :meth:`collect` — a flat, deterministic list of samples
  ``(name, labels, value)`` for programmatic use;
* :meth:`snapshot` — the same, stamped with the current simulated time
  and kept in :attr:`snapshots`, so a harness can sample a run
  periodically and plot series over sim-time;
* :meth:`to_prometheus` — the flat text exposition format
  (``name{label="v"} value``), one line per sample, for anything that
  already speaks Prometheus.

Histograms contribute ``_count``/``_sum``/``_min``/``_max`` samples plus
``{quantile="0.5"|"0.99"}`` estimates from the reservoir. Collection is
pull-based and read-only: registering a machine never changes what the
simulation does, only what you can see of it.
"""

from repro.errors import ConfigError

#: Quantiles exported per histogram, as (label value, percentile).
#: p999 rides along for the serving harness's tail-latency SLOs
#: (docs/serving.md); reservoir-based, so it is an estimate like p99.
QUANTILES = (("0.5", 50.0), ("0.99", 99.0), ("0.999", 99.9))


def prometheus_name(*parts):
    """Join name parts into a legal Prometheus metric name."""
    joined = "_".join(part for part in parts if part)
    out = []
    for char in joined:
        out.append(char if char.isalnum() or char == "_" else "_")
    name = "".join(out)
    if not name or name[0].isdigit():
        name = "repro_" + name
    return name


def _format_value(value):
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return None                      # skip NaN/inf samples
        if value == int(value):
            return "%d" % int(value)
        return repr(value)
    return "%d" % value


class MetricsRegistry:
    """Registrations of StatGroups behind named, labeled series."""

    def __init__(self, clock=None, namespace="repro"):
        self._clock = clock
        self.namespace = namespace
        self._groups = []                     # (StatGroup, labels dict)
        #: Timestamped snapshots taken so far (see :meth:`snapshot`).
        self.snapshots = []

    # -- registration ------------------------------------------------------

    def register(self, group, **labels):
        """Register one StatGroup; ``labels`` tag every series from it."""
        if not hasattr(group, "counters"):
            raise ConfigError("register() wants a StatGroup, got %r"
                              % (group,))
        self._groups.append((group, dict(labels)))
        return self

    def register_machine(self, machine, **labels):
        """Register every StatGroup a machine (or backend) exposes.

        Walks the well-known component attributes of both machine
        shapes — hierarchy, PM/DRAM medium, PAX device internals, the
        link — plus the machine's own group. Unknown shapes contribute
        whatever subset they have.
        """
        pool = getattr(machine, "pool", None)
        inner = getattr(machine, "machine", None)
        if inner is None and pool is not None:
            inner = getattr(pool, "machine", None)
        if inner is not None:
            machine = inner
        seen = set()

        def add(group, component):
            if group is not None and id(group) not in seen:
                seen.add(id(group))
                self.register(group, component=component, **labels)

        add(getattr(machine, "stats", None), "machine")
        hierarchy = getattr(machine, "hierarchy", None)
        if hierarchy is not None:
            add(hierarchy.stats, "hierarchy")
        for attr in ("pm", "memory"):
            medium = getattr(machine, attr, None)
            if medium is not None:
                add(medium.stats, attr)
        device = getattr(machine, "device", None)
        if device is not None:
            add(device.stats, "device")
            add(device.undo.stats, "undo")
            add(device.writeback.stats, "writeback")
            add(device.epochs.stats, "epochs")
            add(device.region.stats, "log_region")
        link = getattr(machine, "link", None)
        if link is not None:
            add(getattr(link, "stats", None), "link")
            wrapped = getattr(link, "inner", None)
            if wrapped is not None:
                add(wrapped.stats, "link")
        return self

    # -- collection --------------------------------------------------------

    def collect(self):
        """Return the current samples as ``(name, labels, value)`` tuples.

        Deterministic order: registration order, then counter name, then
        histogram name — so two identical runs dump identical text.
        """
        samples = []
        for group, labels in self._groups:
            base = dict(labels)
            base.setdefault("group", group.owner)
            for name, value in sorted(group.counters().items()):
                samples.append((
                    prometheus_name(self.namespace, group.owner, name),
                    dict(base), value))
            for name, histogram in sorted(group.histograms().items()):
                stem = prometheus_name(self.namespace, group.owner, name)
                samples.append((stem + "_count", dict(base),
                                histogram.count))
                samples.append((stem + "_sum", dict(base), histogram.total))
                if histogram.count:
                    samples.append((stem + "_min", dict(base),
                                    histogram.min))
                    samples.append((stem + "_max", dict(base),
                                    histogram.max))
                for label, percentile in QUANTILES:
                    quantile_labels = dict(base)
                    quantile_labels["quantile"] = label
                    samples.append((stem, quantile_labels,
                                    histogram.percentile(percentile)))
        return samples

    def snapshot(self):
        """Collect now, stamped with simulated time; returns the record."""
        record = {
            "sim_ns": self._clock.now_ns if self._clock is not None else 0,
            "samples": self.collect(),
        }
        self.snapshots.append(record)
        return record

    def to_prometheus(self, samples=None):
        """Render samples in the flat Prometheus text exposition format."""
        lines = []
        for name, labels, value in (samples if samples is not None
                                    else self.collect()):
            rendered = _format_value(value)
            if rendered is None:
                continue
            if labels:
                body = ",".join('%s="%s"' % (key, labels[key])
                                for key in sorted(labels))
                lines.append("%s{%s} %s" % (name, body, rendered))
            else:
                lines.append("%s %s" % (name, rendered))
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self):
        return "MetricsRegistry(%d groups, %d snapshots)" % (
            len(self._groups), len(self.snapshots))
