"""The experiment-matrix harness: specs, grids, determinism, reports."""

import json

import pytest

from repro.errors import ConfigError
from repro.sweep import (build_cell_backend, expand_grid, load_spec,
                         run_sweep, variant_id)
from repro.sweep.report import (compare_sweeps, load_report, perfbench_view,
                                to_markdown, write_report)
from repro.sweep.spec import DEFAULTS, _parse_toml_subset

try:
    import tomllib
except ImportError:
    tomllib = None


def write_spec(tmp_path, body, name="spec.json"):
    """Write a JSON sweep spec and return its path."""
    path = tmp_path / name
    path.write_text(json.dumps({"sweep": body}))
    return str(path)


def tiny_body(**overrides):
    """The smallest useful grid: 2 mechanism cells on one backend."""
    body = {
        "name": "tiny",
        "ops": 400,
        "records": 128,
        "backends": ["pax"],
        "workloads": ["mixed"],
        "mechanisms": ["none", "victim:8"],
        "llc_sizes_kib": [64],
        "spot_check": "all",
    }
    body.update(overrides)
    return body


class TestSpecLoading:
    def test_defaults_filled_and_validated(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, tiny_body()))
        for key in DEFAULTS:
            assert key in spec
        assert spec["name"] == "tiny"
        assert spec["llc_ways"] == DEFAULTS["llc_ways"]
        assert spec["schema"].startswith("repro.sweep-spec/")

    def test_unknown_key_is_an_error(self, tmp_path):
        path = write_spec(tmp_path, tiny_body(mechansims=["victim:8"]))
        with pytest.raises(ConfigError, match="unknown spec key"):
            load_spec(path)

    @pytest.mark.parametrize("bad", [
        {"backends": ["warp"]},
        {"workloads": ["scan_heavy"]},
        {"mechanisms": ["victim:many"]},
        {"policies": ["mru"]},
        {"ops": 0},
        {"hbm_lines": -1},
        {"spot_check": "some"},
        {"llc_sizes_kib": []},
    ])
    def test_bad_values_are_errors(self, tmp_path, bad):
        path = write_spec(tmp_path, tiny_body(**bad))
        with pytest.raises(ConfigError):
            load_spec(path)

    def test_needs_sweep_table(self, tmp_path):
        path = tmp_path / "flat.json"
        path.write_text(json.dumps({"ops": 4}))
        with pytest.raises(ConfigError, match="sweep"):
            load_spec(str(path))

    def test_committed_specs_load(self):
        for path in ("specs/full-grid.toml", "specs/smoke-grid.toml"):
            spec = load_spec(path)
            assert spec["source"] == path
            assert len(expand_grid(spec)) > 0

    def test_full_grid_meets_the_floor(self):
        # The acceptance grid: >= 4 mechanisms x >= 2 LLC sizes x
        # >= 2 workloads x >= 3 backends, >= 48 cells total.
        spec = load_spec("specs/full-grid.toml")
        assert len(spec["mechanisms"]) >= 4
        assert len(spec["llc_sizes_kib"]) >= 2
        assert len(spec["workloads"]) >= 2
        assert len(spec["backends"]) >= 3
        assert len(expand_grid(spec)) >= 48


class TestTomlSubsetParser:
    TOML = """
# comment
[sweep]
name = "demo"            # trailing comment
ops = 12
scale = 1.5
flag = true
backends = ["pax", "pmdk"]
sizes = [64, 256]
"""

    def test_parses_the_spec_grammar(self):
        doc = _parse_toml_subset(self.TOML, "demo.toml")
        table = doc["sweep"]
        assert table["name"] == "demo"
        assert table["ops"] == 12
        assert table["scale"] == 1.5
        assert table["flag"] is True
        assert table["backends"] == ["pax", "pmdk"]
        assert table["sizes"] == [64, 256]

    @pytest.mark.skipif(tomllib is None, reason="needs tomllib (3.11+)")
    def test_agrees_with_tomllib_on_committed_specs(self):
        for path in ("specs/full-grid.toml", "specs/smoke-grid.toml"):
            with open(path) as handle:
                text = handle.read()
            assert _parse_toml_subset(text, path) == tomllib.loads(text)

    @pytest.mark.parametrize("bad", [
        "[sweep\nx = 1",
        "[sweep]\njust a line",
        '[sweep]\nx = [1,\n2]',
        '[sweep]\nx = "unterminated',
    ])
    def test_malformed_input_raises(self, bad):
        with pytest.raises(ConfigError):
            _parse_toml_subset(bad, "bad.toml")


class TestGridExpansion:
    def test_device_mechanisms_prune_to_pax(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, tiny_body(
            backends=["pax", "pmdk"], mechanisms=["none"],
            device_mechanisms=["none", "stream:2x2"])))
        cells = expand_grid(spec)
        combos = {(c["backend"], c["device_mechanisms"]) for c in cells}
        assert ("pax", "stream:2x2") in combos
        assert ("pmdk", "stream:2x2") not in combos
        assert ("pmdk", "none") in combos

    def test_policy_axis_only_multiplies_mechanized_cells(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, tiny_body(
            mechanisms=["none", "victim:8"], policies=["lru", "fifo"])))
        cells = expand_grid(spec)
        none_cells = [c for c in cells if c["mechanisms"] == "none"]
        victim_cells = [c for c in cells if c["mechanisms"] == "victim:8"]
        assert len(none_cells) == 1          # policy-free: one cell only
        assert len(victim_cells) == 2        # one per policy
        assert {c["policy"] for c in victim_cells} == {"lru", "fifo"}

    def test_variant_ids_are_unique(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, tiny_body(
            backends=["pax", "pmdk"], llc_sizes_kib=[64, 256],
            device_mechanisms=["none", "stream:2x2"])))
        cells = expand_grid(spec)
        keys = {(c["workload"], c["backend"], variant_id(c))
                for c in cells}
        assert len(keys) == len(cells)

    def test_build_cell_backend_applies_the_axes(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, tiny_body(hbm_lines=64)))
        cell = [c for c in expand_grid(spec)
                if c["mechanisms"] == "victim:8"][0]
        backend = build_cell_backend(spec, cell)
        hier = backend.machine.hierarchy
        assert hier.mechanisms is not None
        assert hier._llc.config.size_bytes == 64 * 1024
        assert backend.machine.device.hbm.capacity_lines == 64


class TestRunSweep:
    def run_tiny(self, tmp_path, **overrides):
        spec = load_spec(write_spec(tmp_path, tiny_body(**overrides)))
        return spec, run_sweep(spec)

    def test_every_cell_verifies(self, tmp_path):
        _spec, report = self.run_tiny(tmp_path)
        assert len(report["cells"]) == 2
        assert report["traces_recorded"] == 1
        verification = report["verification"]
        assert verification["checked"] == 2
        assert verification["failed"] == 0
        assert all(cell["verified"] for cell in report["cells"])

    def test_report_is_deterministic(self, tmp_path):
        _spec, first = self.run_tiny(tmp_path)
        _spec, again = self.run_tiny(tmp_path)
        assert first == again

    def test_report_carries_no_wall_clock(self, tmp_path):
        _spec, report = self.run_tiny(tmp_path)
        assert not any("wall" in key for key in report)
        for cell in report["cells"]:
            assert not any("wall" in key for key in cell)
            assert cell["sim_ns"] > 0
            assert "host_mech_hits" in cell["counters"]

    def test_spot_check_none_skips_verification(self, tmp_path):
        _spec, report = self.run_tiny(tmp_path, spot_check="none")
        assert report["verification"]["checked"] == 0
        assert all(cell["verified"] is None for cell in report["cells"])

    def test_spot_check_counts_select_deterministically(self, tmp_path):
        spec, report = self.run_tiny(tmp_path, spot_check=1)
        assert report["verification"]["checked"] == 1
        again = run_sweep(spec)
        flags = [cell["verified"] for cell in report["cells"]]
        assert flags == [cell["verified"] for cell in again["cells"]]


class TestReporting:
    @pytest.fixture()
    def report(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, tiny_body()))
        return run_sweep(spec)

    def test_json_round_trip(self, report, tmp_path):
        path = str(tmp_path / "sweep.json")
        write_report(report, path)
        assert load_report(path) == report
        with pytest.raises(ConfigError):
            json.dump({"schema": "other/1"}, open(path, "w"))
            load_report(path)

    def test_markdown_tables(self, report):
        text = to_markdown(report)
        assert "| backend |" in text
        assert "victim:8" in text
        assert "fingerprint-checked" in text
        assert "MISMATCH" not in text

    def test_perfbench_view_feeds_compare(self, report):
        view = perfbench_view(report)
        assert view["schema"].startswith("repro.perfbench/")
        assert len(view["results"]) == len(report["cells"])
        assert all(cell["wall_s"] == 0.0 for cell in view["results"])
        grade = compare_sweeps(report, report)
        assert grade["same_config"]
        assert grade["problems"] == []
        assert len(grade["cells"]) == len(report["cells"])

    def test_compare_flags_sim_ns_drift(self, report):
        import copy
        drifted = copy.deepcopy(report)
        drifted["cells"][0]["sim_ns_timed"] += 7
        grade = compare_sweeps(drifted, report)
        assert any("simulated time changed" in p for p in grade["problems"])


class TestCli:
    def test_end_to_end(self, tmp_path):
        from repro.sweep.__main__ import main
        spec_path = write_spec(tmp_path, tiny_body())
        out = str(tmp_path / "report.json")
        md = str(tmp_path / "report.md")
        assert main([spec_path, "--out", out, "--markdown", md,
                     "--quiet"]) == 0
        report = load_report(out)
        assert report["verification"]["failed"] == 0
        # Same seed, second run, compared against the first: no drift.
        out2 = str(tmp_path / "report2.json")
        assert main([spec_path, "--out", out2, "--quiet",
                     "--compare", out]) == 0
        assert (tmp_path / "report2.compare.json").exists()
        assert open(out).read() == open(out2).read()

    def test_bad_spec_exits_2(self, tmp_path):
        from repro.sweep.__main__ import main
        path = write_spec(tmp_path, tiny_body(backends=["warp"]))
        assert main([path, "--out", str(tmp_path / "x.json")]) == 2
