"""Deterministic interleaved execution of logical threads (paper §3.5).

The paper: "PAX requires the data structure code to be thread safe if
multiple threads access the data structure concurrently... Application
code must ensure that persist() is only called when no thread is
modifying the data structure, otherwise persisted snapshots may still
include partial effects from ongoing operations."

To *test* statements like that, execution must be interruptible inside an
operation. This harness runs each logical thread in a real Python thread
but grants execution one thread at a time, switching only at memory-access
boundaries (every accessor read/write is a yield point). A seeded RNG
picks who runs next, so every interleaving — including the pathological
ones — replays exactly.

Uses:

* drive one structure from several cores concurrently and check the
  result is a correct sequential outcome (the coherence machinery under
  genuine interleaving);
* pause the world mid-operation and call ``persist()`` — reproducing the
  §3.5 hazard: the snapshot contains a half-applied operation.
"""

import threading

from repro.errors import ReproError
from repro.libpax.machine import CpuAccessor
from repro.sim.rng import DeterministicRng
from repro.util.stats import StatGroup


class InterleavingAccessor(CpuAccessor):
    """A per-thread accessor that yields to the scheduler on every access."""

    def __init__(self, machine, core_id, scheduler, thread_name):
        super().__init__(machine, core_id)
        self._scheduler = scheduler
        self._thread_name = thread_name

    def read(self, addr, length):
        self._scheduler._yield_point(self._thread_name)
        return super().read(addr, length)

    def write(self, addr, data):
        self._scheduler._yield_point(self._thread_name)
        super().write(addr, data)


class _LogicalThread:
    __slots__ = ("name", "thread", "done", "error", "turn", "started")

    def __init__(self, name):
        self.name = name
        self.thread = None
        self.done = False
        self.error = None
        self.turn = False
        self.started = False


class InterleavedRunner:
    """Schedules logical threads over one machine, one access at a time."""

    def __init__(self, machine, seed=1234):
        self.machine = machine
        self._rng = DeterministicRng(seed)
        self._threads = {}
        self._condition = threading.Condition()
        self._running = False
        self.stats = StatGroup("interleaver")

    def spawn(self, name, fn, core_id=0):
        """Register logical thread ``name`` running ``fn(accessor)``.

        ``fn`` receives an :class:`InterleavingAccessor` bound to
        ``core_id``; everything it touches through that accessor becomes
        interruptible.
        """
        if name in self._threads:
            raise ReproError("duplicate thread name %r" % (name,))
        state = _LogicalThread(name)
        accessor = InterleavingAccessor(self.machine, core_id, self, name)

        def body():
            try:
                # Wait for the first turn before touching anything.
                self._yield_point(name)
                fn(accessor)
            except _Cancelled:
                pass
            except BaseException as exc:   # surfaced to run()
                state.error = exc
            finally:
                with self._condition:
                    state.done = True
                    state.turn = False
                    self._condition.notify_all()

        state.thread = threading.Thread(target=body, daemon=True,
                                        name="sim-" + name)
        self._threads[name] = state
        return state

    # -- scheduling core -----------------------------------------------------

    def _yield_point(self, name):
        state = self._threads[name]
        with self._condition:
            state.turn = False
            self._condition.notify_all()
            while not state.turn:
                if not self._running:
                    raise _Cancelled()
                self._condition.wait(timeout=5.0)
        self.stats.counter("switches").add(1)

    def _runnable(self):
        return [s for s in self._threads.values()
                if s.started and not s.done]

    def _grant_turn(self, state):
        with self._condition:
            state.turn = True
            self._condition.notify_all()
            while state.turn and not state.done:
                self._condition.wait(timeout=5.0)

    def step(self, name=None):
        """Advance one thread by one memory access.

        With ``name`` the choice is forced; otherwise the seeded RNG
        picks among runnable threads. Returns the thread chosen, or None
        if everything has finished.
        """
        if not self._running:
            self._start_all()
        runnable = self._runnable()
        if name is not None:
            state = self._threads[name]
            if state.done:
                return None
        elif runnable:
            state = self._rng.choice(runnable)
        else:
            return None
        self._grant_turn(state)
        if state.error is not None:
            error, state.error = state.error, None
            raise error
        return state.name

    def run(self):
        """Interleave until every thread finishes."""
        while self.step() is not None:
            pass
        self._running = False

    def run_until(self, predicate, max_steps=100000):
        """Interleave until ``predicate()`` is true; threads stay paused.

        This is how a test freezes the world mid-operation: the predicate
        inspects structure state, and when it fires every logical thread
        is parked at a memory-access boundary.
        """
        steps = 0
        while not predicate():
            if self.step() is None:
                raise ReproError("all threads finished before the "
                                 "predicate held")
            steps += 1
            if steps > max_steps:
                raise ReproError("predicate never held within %d steps"
                                 % max_steps)
        return steps

    def _start_all(self):
        self._running = True
        for state in self._threads.values():
            if not state.started:
                state.started = True
                state.thread.start()

    def cancel(self):
        """Abandon paused threads (after a simulated crash)."""
        with self._condition:
            self._running = False
            self._condition.notify_all()
        for state in self._threads.values():
            if state.started:
                state.thread.join(timeout=5.0)

    @property
    def all_done(self):
        """True once every logical thread has finished."""
        return all(s.done for s in self._threads.values())


class _Cancelled(BaseException):
    """Internal: unwinds a logical thread after cancel()."""
