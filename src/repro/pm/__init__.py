"""Persistent memory substrate: device, pool format, undo log, flush costs."""

from repro.pm.device import PmDevice
from repro.pm.flush import FlushModel
from repro.pm.log import (
    ENTRY_SIZE,
    UndoEntry,
    UndoLogRegion,
    decode_entry,
    encode_entry,
)
from repro.pm.pool import Pool, POOL_MAGIC, POOL_VERSION

__all__ = [
    "ENTRY_SIZE",
    "FlushModel",
    "PmDevice",
    "Pool",
    "POOL_MAGIC",
    "POOL_VERSION",
    "UndoEntry",
    "UndoLogRegion",
    "decode_entry",
    "encode_entry",
]
