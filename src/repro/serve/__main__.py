"""``python -m repro.serve`` runs one chaos drill."""

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
