"""The PAX device: message servicing, persist, recovery (unit level).

These tests drive the device directly with CXL messages, with a stub
snoop port standing in for the host — isolating device logic from the
cache hierarchy (the integration path is covered in test_libpax_*).
"""

import pytest

from repro.core.config import PaxConfig
from repro.core.device import PaxDevice
from repro.core.recovery import recover_pool
from repro.cxl import messages as msg
from repro.errors import AddressError, ProtocolError
from repro.pm.device import PmDevice
from repro.pm.pool import Pool
from repro.sim.latency import default_model

VPM_BASE = 1 << 32


def build(**config_kwargs):
    device = PmDevice("pm", 1 << 20)
    pool = Pool.format(device, log_size=96 * 512)
    pax = PaxDevice(pool, default_model(),
                    config=PaxConfig(**config_kwargs), vpm_base=VPM_BASE)
    return pax, pool


class StubSnoopPort:
    """Host stand-in: returns canned dirty data per address."""

    def __init__(self, dirty=None):
        self.dirty = dirty or {}
        self.snooped = []

    def snoop_shared(self, addr):
        self.snooped.append(addr)
        return self.dirty.get(addr), 10.0


class TestTranslation:
    def test_roundtrip(self):
        pax, pool = build()
        phys = VPM_BASE + 640
        assert pax.to_phys(pax.to_pool(phys)) == phys

    def test_out_of_range_rejected(self):
        pax, pool = build()
        with pytest.raises(AddressError):
            pax.to_pool(VPM_BASE + pool.data_size)
        with pytest.raises(AddressError):
            pax.to_pool(VPM_BASE - 64)


class TestReads:
    def test_rd_shared_returns_pm_data(self):
        pax, pool = build()
        pool.device.write(pool.data_base, b"stored!!" + b"\x00" * 56)
        response, _ns = pax.handle_message(msg.RdShared(VPM_BASE))
        assert isinstance(response, msg.DataResponse)
        assert response.state == "S"
        assert response.data[:8] == b"stored!!"

    def test_rd_shared_fills_hbm(self):
        pax, pool = build()
        pax.handle_message(msg.RdShared(VPM_BASE))
        _resp, first_ns = pax.handle_message(msg.RdShared(VPM_BASE + 64))
        _resp, hit_ns = pax.handle_message(msg.RdShared(VPM_BASE))
        assert hit_ns < first_ns      # HBM hit vs PM read

    def test_hbm_disabled_always_reads_pm(self):
        pax, pool = build(hbm_lines=0)
        pax.handle_message(msg.RdShared(VPM_BASE))
        _resp, second_ns = pax.handle_message(msg.RdShared(VPM_BASE))
        model = default_model()
        assert second_ns >= model.media.pm_read_ns


class TestOwnership:
    def test_rd_own_logs_old_value_once(self):
        pax, pool = build()
        pool.device.write(pool.data_base, b"OLDVALUE" + b"\x00" * 56)
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=False))
        assert pax.stats.get("lines_logged") == 1
        assert pax.undo.pending_count == 1

    def test_rd_own_grants_M_with_data(self):
        pax, _pool = build()
        response, _ns = pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        assert isinstance(response, msg.DataResponse)
        assert response.state == "M"

    def test_rd_own_upgrade_is_data_less(self):
        pax, _pool = build()
        response, _ns = pax.handle_message(msg.RdOwn(VPM_BASE, need_data=False))
        assert isinstance(response, msg.Go)

    def test_rd_own_invalidates_hbm(self):
        pax, _pool = build()
        pax.handle_message(msg.RdShared(VPM_BASE))
        assert pax.to_pool(VPM_BASE) in pax.hbm
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=False))
        assert pax.to_pool(VPM_BASE) not in pax.hbm

    def test_ack_does_not_wait_for_pm_on_upgrade(self):
        # Paper §3.2: the device acks ownership without waiting for logging.
        pax, _pool = build()
        _resp, service_ns = pax.handle_message(
            msg.RdOwn(VPM_BASE, need_data=False))
        assert service_ns < default_model().media.pm_read_ns


class TestDirtyEvict:
    def test_buffered_not_written(self):
        pax, pool = build()
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.handle_message(msg.DirtyEvict(VPM_BASE, b"\xee" * 64))
        assert pool.device.read(pool.data_base, 1) != b"\xee"
        assert pax.writeback.peek(pax.to_pool(VPM_BASE)) == b"\xee" * 64

    def test_unlogged_dirty_evict_is_protocol_error(self):
        pax, _pool = build()
        with pytest.raises(ProtocolError):
            pax.handle_message(msg.DirtyEvict(VPM_BASE, b"\x00" * 64))

    def test_rd_own_after_evict_serves_buffered_value(self):
        pax, _pool = build()
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.handle_message(msg.DirtyEvict(VPM_BASE, b"\xee" * 64))
        response, _ns = pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        assert response.data == b"\xee" * 64

    def test_unknown_message_rejected(self):
        pax, _pool = build()
        with pytest.raises(ProtocolError):
            pax.handle_message(msg.SnpData(VPM_BASE))


class TestPersist:
    def test_snoops_every_touched_line(self):
        pax, _pool = build()
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.handle_message(msg.RdOwn(VPM_BASE + 128, need_data=True))
        port = StubSnoopPort()
        pax.persist(port)
        assert sorted(port.snooped) == [VPM_BASE, VPM_BASE + 128]

    def test_dirty_host_data_reaches_pm(self):
        pax, pool = build()
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        port = StubSnoopPort(dirty={VPM_BASE: b"\xab" * 64})
        pax.persist(port)
        assert pool.device.read(pool.data_base, 64) == b"\xab" * 64

    def test_epoch_advances_and_log_rewinds(self):
        pax, pool = build()
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.persist(StubSnoopPort())
        assert pool.committed_epoch == 1
        assert pax.epochs.current_epoch == 2
        assert pax.region.used_entries == 0
        assert pax.undo.pending_count == 0

    def test_empty_persist_commits(self):
        pax, pool = build()
        pax.persist(StubSnoopPort())
        assert pool.committed_epoch == 1

    def test_next_epoch_relogs_lines(self):
        pax, _pool = build()
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.persist(StubSnoopPort(dirty={VPM_BASE: b"\x01" * 64}))
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=False))
        assert pax.stats.get("lines_logged") == 2


class TestBackgroundTick:
    def test_tick_drains_log_and_buffer(self):
        pax, pool = build(log_drain_bps=1e9, writeback_drain_bps=1e9)
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.handle_message(msg.DirtyEvict(VPM_BASE, b"\x77" * 64))
        # 1 ms of background time at 1 GB/s: plenty for 96 B + 64 B.
        pax.background_tick(0, 1_000_000)
        assert pax.undo.pending_count == 0
        assert len(pax.writeback) == 0
        assert pool.device.read(pool.data_base, 1) == b"\x77"


class TestDeviceCrashRecovery:
    def test_uncommitted_epoch_rolls_back(self):
        pax, pool = build()
        pool.device.write(pool.data_base, b"EPOCH0.." + b"\x00" * 56)
        # Epoch 1: modify, persist (commit).
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.persist(StubSnoopPort(dirty={VPM_BASE: b"EPOCH1.." + b"\x00" * 56}))
        # Epoch 2: modify, drain the log, write back... then crash.
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.undo.pump()
        pax.writeback.buffer_line(pax.to_pool(VPM_BASE),
                                  b"EPOCH2.." + b"\x00" * 56,
                                  pax.undo.seq_for(pax.to_pool(VPM_BASE)))
        pax.writeback.drain_budget(1024)
        assert pool.device.read(pool.data_base, 8) == b"EPOCH2.."
        pax.on_crash()
        report = recover_pool(pool)
        assert report.records_rolled_back == 1
        assert pool.device.read(pool.data_base, 8) == b"EPOCH1.."
        assert pool.committed_epoch == 1

    def test_pending_records_match_unwritten_lines(self):
        # A record lost in the volatile tail corresponds to a line that
        # never reached PM (the gate), so recovery has nothing to undo.
        pax, pool = build()
        pool.device.write(pool.data_base, b"BASE...." + b"\x00" * 56)
        pax.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        pax.on_crash()                      # record was pending: lost
        report = recover_pool(pool)
        assert report.records_rolled_back == 0
        assert pool.device.read(pool.data_base, 8) == b"BASE...."
