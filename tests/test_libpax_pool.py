"""The libpax user API: map_pool, persistent(), Persistent[T], recovery."""

import pytest

from repro.errors import PoolError
from repro.libpax.persistent import Persistent
from repro.structures import HashMap, PersistentList, PersistentVector
from tests.conftest import make_pax_pool


class TestMapPool:
    def test_fresh_pool_creates_structure(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        assert len(table) == 0
        assert pax_pool.machine.pool.root_ptr == table.root

    def test_persistent_is_create_or_recover(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        table.put(1, 100)
        again = pax_pool.persistent(HashMap)
        assert again.root == table.root
        assert again.get(1) == 100

    def test_listing1_full_sequence(self, pax_pool):
        # The paper's Listing 1, line for line.
        table = pax_pool.persistent(HashMap, capacity=64)
        table.put(1, 100)
        assert table.get(1) == 100
        table.put(2, 200)
        pax_pool.persist()
        assert pax_pool.committed_epoch >= 2

    def test_file_backed_pool(self, tmp_path):
        path = str(tmp_path / "ht.pool")
        pool = make_pax_pool(path=path)
        table = pool.persistent(HashMap, capacity=64)
        table.put(5, 50)
        pool.persist()
        pool.close()
        reopened = make_pax_pool(path=path)
        table2 = reopened.persistent(HashMap)
        assert table2.get(5) == 50


class TestCrashRecovery:
    def test_snapshot_semantics(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        for key in range(20):
            table.put(key, key)
        pax_pool.persist()
        for key in range(20, 40):
            table.put(key, key)
        table.put(0, 999)
        pax_pool.crash()
        report = pax_pool.restart()
        assert report.was_dirty or report.records_rolled_back >= 0
        recovered = pax_pool.reattach_root(HashMap)
        assert recovered.to_dict() == {key: key for key in range(20)}

    def test_multiple_epochs(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        for epoch in range(5):
            for key in range(10):
                table.put(epoch * 10 + key, epoch)
            pax_pool.persist()
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(HashMap)
        assert len(recovered) == 50

    def test_crash_with_nothing_persisted(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        base = table.to_dict()
        for key in range(10):
            table.put(key, key)
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(HashMap)
        assert recovered.to_dict() == base

    def test_reattach_without_root_rejected(self):
        pool = make_pax_pool()
        with pytest.raises(PoolError):
            pool.reattach_root(HashMap)

    def test_undo_log_growth_visible(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        table.put(1, 1)
        pax_pool.machine.device.undo.pump()
        assert pax_pool.undo_log_entries > 0
        pax_pool.persist()
        assert pax_pool.undo_log_entries == 0


class TestOtherStructuresOnPax:
    def test_vector(self, pax_pool):
        vector = pax_pool.persistent(PersistentVector, capacity=4)
        for value in range(50):
            vector.append(value)
        pax_pool.persist()
        vector.append(999)
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(PersistentVector)
        assert recovered.to_list() == list(range(50))

    def test_linked_list(self, pax_pool):
        linked = pax_pool.persistent(PersistentList)
        for value in range(10):
            linked.push_back(value)
        pax_pool.persist()
        linked.push_front(99)
        linked.pop_back()
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(PersistentList)
        assert recovered.to_list() == list(range(10))
        recovered.check_links()


class TestOperationGuard:
    def test_persist_inside_operation_rejected(self, pax_pool):
        from repro.errors import ProtocolError
        table = pax_pool.persistent(HashMap, capacity=64)
        with pax_pool.operation():
            table.put(1, 1)
            with pytest.raises(ProtocolError):
                pax_pool.persist()
            with pytest.raises(ProtocolError):
                pax_pool.persist_async()

    def test_persist_after_operation_ok(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        with pax_pool.operation():
            table.put(1, 1)
        pax_pool.persist()
        assert pax_pool.committed_epoch >= 2

    def test_nested_operations(self, pax_pool):
        from repro.errors import ProtocolError
        pax_pool.persistent(HashMap, capacity=64)
        with pax_pool.operation():
            with pax_pool.operation():
                pass
            with pytest.raises(ProtocolError):
                pax_pool.persist()
        pax_pool.persist()

    def test_guard_released_on_exception(self, pax_pool):
        pax_pool.persistent(HashMap, capacity=64)
        with pytest.raises(RuntimeError):
            with pax_pool.operation():
                raise RuntimeError("op blew up")
        pax_pool.persist()      # guard must not leak


class TestAutoPersist:
    """Paper §3.2: periodic persist() to bound undo log growth."""

    def test_log_fullness_reported(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        assert pax_pool.log_fullness == 0.0
        table.put(1, 1)
        assert pax_pool.log_fullness > 0.0

    def test_maybe_persist_respects_threshold(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        table.put(1, 1)
        assert not pax_pool.maybe_persist(threshold=0.99)
        assert pax_pool.maybe_persist(threshold=1e-9)
        assert pax_pool.log_fullness == 0.0

    def test_maybe_persist_defers_during_operation(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        with pax_pool.operation():
            table.put(1, 1)
            assert not pax_pool.maybe_persist(threshold=1e-9)

    def test_auto_persist_prevents_log_exhaustion(self):
        from repro.pm.log import ENTRY_SIZE
        # A log that holds ~40 entries would normally exhaust quickly;
        # the valve keeps the workload running indefinitely. (The log must
        # still fit the largest single operation — capacity 2048 avoids a
        # resize, which rewrites the whole bucket array in one op.)
        pool = make_pax_pool(log_size=(40 * ENTRY_SIZE // 64 + 1) * 64,
                             auto_persist_log_fraction=0.6)
        table = pool.persistent(HashMap, capacity=64)
        for key in range(100):              # stays below the resize point
            with pool.operation():
                table.put(key, key)
        assert len(table) == 100
        assert pool.committed_epoch > 3     # the valve fired repeatedly

    def test_invalid_fraction_rejected(self):
        from repro.errors import PoolError
        with pytest.raises(PoolError):
            make_pax_pool(auto_persist_log_fraction=1.5)


class TestPersistentWrapper:
    def test_delegation(self, pax_pool):
        handle = Persistent(pax_pool, HashMap, capacity=64)
        handle.put(1, 10)
        assert handle.get(1) == 10
        assert len(handle) == 1

    def test_persist_through_handle(self, pax_pool):
        handle = Persistent(pax_pool, HashMap, capacity=64)
        handle.put(1, 10)
        handle.persist()
        handle.put(2, 20)
        pax_pool.crash()
        pax_pool.restart()
        handle.reattach()
        assert handle.get(1) == 10
        assert handle.get(2) is None
