"""Evaluation analytics: AMAT, thread scaling, write amplification, reports."""

from repro.analysis.amat import (
    AmatModel,
    CONFIGS,
    figure_2a,
    measure_miss_rates,
)
from repro.analysis.latency import LatencyProfile, measure_request_latencies
from repro.analysis.machine_report import machine_report
from repro.analysis.report import Table, format_bytes, format_ns
from repro.analysis.throughput import (
    FIG2B_THREADS,
    Figure2b,
    ScalingModel,
    SingleThreadProfile,
    figure_2b,
    profile_backend,
)
from repro.analysis.wear import WearReport, measure_wear
from repro.analysis.writeamp import (
    LOGICAL_BYTES_PER_PUT,
    WriteAmpReport,
    measure_write_amp,
)

__all__ = [
    "AmatModel",
    "CONFIGS",
    "FIG2B_THREADS",
    "Figure2b",
    "LOGICAL_BYTES_PER_PUT",
    "LatencyProfile",
    "measure_request_latencies",
    "ScalingModel",
    "SingleThreadProfile",
    "Table",
    "WearReport",
    "WriteAmpReport",
    "measure_wear",
    "figure_2a",
    "figure_2b",
    "format_bytes",
    "format_ns",
    "machine_report",
    "measure_miss_rates",
    "measure_write_amp",
    "profile_backend",
]
