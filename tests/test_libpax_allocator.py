"""The persistent allocator: classes, free lists, persistence of metadata."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.libpax.allocator import (
    ARENA_OFFSET,
    PmAllocator,
    SIZE_CLASSES,
    class_for_size,
)
from repro.mem.accessor import RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.physical import MemoryDevice

ARENA = 256 * 1024


def fresh_mem():
    space = AddressSpace()
    space.map_device(4096, MemoryDevice("m", ARENA))
    from repro.mem.accessor import OffsetAccessor
    return OffsetAccessor(RawAccessor(space), 4096)


class TestSizeClasses:
    def test_exact_class(self):
        index, block = class_for_size(24)
        assert block == 24

    def test_round_up(self):
        _index, block = class_for_size(25)
        assert block == 32

    def test_large_rounds_to_pages(self):
        index, block = class_for_size(5000)
        assert index is None
        assert block == 8192

    def test_zero_rejected(self):
        with pytest.raises(AllocationError):
            class_for_size(0)

    def test_classes_sorted(self):
        assert list(SIZE_CLASSES) == sorted(SIZE_CLASSES)


class TestAllocator:
    def test_create_and_alloc(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        offset = alloc.alloc(24)
        assert offset >= ARENA_OFFSET
        assert offset % 16 == 0

    def test_never_returns_null(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        for _ in range(100):
            assert alloc.alloc(16) != 0

    def test_allocations_disjoint(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        blocks = [(alloc.alloc(48), 48) for _ in range(50)]
        blocks.sort()
        for (a, size), (b, _s) in zip(blocks, blocks[1:]):
            assert a + size <= b

    def test_free_then_reuse(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        block = alloc.alloc(24)
        alloc.free(block, 24)
        assert alloc.alloc(24) == block
        assert alloc.stats.get("freelist_hits") == 1

    def test_free_lists_are_per_class(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        small = alloc.alloc(16)
        alloc.free(small, 16)
        big = alloc.alloc(128)
        assert big != small

    def test_free_null_is_noop(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        alloc.free(0, 24)

    def test_large_blocks_leak_by_design(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        block = alloc.alloc(8192)
        alloc.free(block, 8192)
        assert alloc.stats.get("large_leaks") == 1

    def test_exhaustion(self):
        mem = fresh_mem()
        alloc = PmAllocator.create(mem, 8192)
        with pytest.raises(AllocationError):
            for _ in range(10000):
                alloc.alloc(64)

    def test_attach_sees_created_state(self):
        mem = fresh_mem()
        alloc = PmAllocator.create(mem, ARENA)
        block = alloc.alloc(24)
        alloc.free(block, 24)
        attached = PmAllocator.attach(mem)
        assert attached.alloc(24) == block    # free list persisted

    def test_attach_unformatted_rejected(self):
        with pytest.raises(AllocationError):
            PmAllocator.attach(fresh_mem())

    def test_create_or_attach(self):
        mem = fresh_mem()
        first = PmAllocator.create_or_attach(mem, ARENA)
        bump = first.bump
        second = PmAllocator.create_or_attach(mem, ARENA)
        assert second.bump == bump            # attached, not re-created

    def test_bytes_remaining_decreases(self):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        before = alloc.bytes_remaining()
        alloc.alloc(64)
        assert alloc.bytes_remaining() < before

    def test_arena_too_small_rejected(self):
        with pytest.raises(AllocationError):
            PmAllocator.create(fresh_mem(), 64)

    def test_allocator_state_is_crash_consistent_under_pax(self):
        # The allocator's metadata rides the same snapshot as the
        # structures (DESIGN.md: this is load-bearing for black-box
        # reuse). After a crash, allocations rolled back must be
        # re-allocatable, and new allocations must not overlap anything
        # the recovered structure still references.
        from repro.structures import HashMap
        from tests.conftest import make_pax_pool
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=16)
        for key in range(20):
            table.put(key, key)
        pool.persist()
        bump_committed = pool.allocator.bump
        for key in range(20, 60):
            table.put(key, key)          # allocations past the snapshot
        assert pool.allocator.bump > bump_committed
        pool.crash()
        pool.restart()
        # Rolled back: the heap high-water mark is the committed one.
        assert pool.allocator.bump == bump_committed
        recovered = pool.reattach_root(HashMap)
        # New allocations reuse the rolled-back space without corrupting
        # the recovered structure.
        for key in range(100, 140):
            recovered.put(key, key)
        expected = {key: key for key in range(20)}
        expected.update({key: key for key in range(100, 140)})
        assert recovered.to_dict() == expected

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=512),
                    min_size=1, max_size=60))
    def test_alloc_free_alloc_no_overlap(self, sizes):
        alloc = PmAllocator.create(fresh_mem(), ARENA)
        live = {}
        for index, size in enumerate(sizes):
            offset = alloc.alloc(size)
            _cls, block = class_for_size(size)
            for other, other_block in live.items():
                assert offset + block <= other or other + other_block <= offset
            live[offset] = block
            if index % 3 == 2:
                victim = next(iter(live))
                alloc.free(victim, live.pop(victim))
