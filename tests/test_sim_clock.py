"""Simulated clock: monotonicity, callbacks, stopwatch."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.clock import SimClock, StopWatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_custom_start(self):
        assert SimClock(start_ns=100).now_ns == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError):
            SimClock(start_ns=-1)

    def test_advance(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(5.5)
        assert clock.now_ns == pytest.approx(15.5)

    def test_backwards_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1)

    def test_zero_advance_is_noop(self):
        clock = SimClock()
        seen = []
        clock.on_advance(lambda prev, now: seen.append((prev, now)))
        clock.advance(0)
        assert seen == []

    def test_callbacks_receive_interval(self):
        clock = SimClock()
        seen = []
        clock.on_advance(lambda prev, now: seen.append((prev, now)))
        clock.advance(10)
        clock.advance(5)
        assert seen == [(0, 10), (10, 15)]

    def test_callback_removal(self):
        clock = SimClock()
        seen = []
        callback = lambda prev, now: seen.append(now)
        clock.on_advance(callback)
        clock.advance(1)
        clock.remove_callback(callback)
        clock.advance(1)
        assert seen == [1]

    def test_reentrant_advance_inside_callback_does_not_recurse(self):
        clock = SimClock()
        calls = []

        def callback(prev, now):
            calls.append(now)
            # Background work advancing time must not re-trigger callbacks.
            clock.advance(1)

        clock.on_advance(callback)
        clock.advance(10)
        assert calls == [10]
        assert clock.now_ns == 11


class TestStopWatch:
    def test_measures_elapsed(self):
        clock = SimClock()
        watch = StopWatch(clock).start()
        clock.advance(42)
        assert watch.stop() == 42

    def test_context_manager(self):
        clock = SimClock()
        with StopWatch(clock) as watch:
            clock.advance(7)
        assert watch.elapsed_ns == 7

    def test_stop_without_start(self):
        with pytest.raises(SimulationError):
            StopWatch(SimClock()).stop()
