"""Shared benchmark configuration.

The benchmarks simulate a machine whose caches are scaled down ~8x so the
paper's cache-pressure regime (working set >> LLC) is reached with
workloads that run in seconds. Media latencies and bandwidths stay at
their real values; DESIGN.md §5 and EXPERIMENTS.md discuss the scaling.
"""

import pytest

from repro.baselines import make_backend
from repro.cache.cache import CacheConfig

#: Scaled cache geometry used by every throughput-style benchmark.
BENCH_CACHES = dict(
    l1_config=CacheConfig(size_bytes=8 * 1024, ways=4),
    l2_config=CacheConfig(size_bytes=64 * 1024, ways=8),
    llc_config=CacheConfig(size_bytes=256 * 1024, ways=16),
)

#: Working set / op counts matched to the scaled caches.
RECORDS = 40000
OPS = 5000
HEAP = 32 * 1024 * 1024


def bench_backend(name, **overrides):
    """Build a backend with benchmark-standard sizing."""
    kwargs = dict(heap_size=HEAP, capacity=1 << 14)
    if name in ("pax", "hybrid"):
        kwargs = dict(pool_size=HEAP, log_size=8 * 1024 * 1024,
                      capacity=1 << 14)
    kwargs.update(BENCH_CACHES)
    kwargs.update(overrides)
    return make_backend(name, **kwargs)


@pytest.fixture(scope="session")
def bench_records():
    return RECORDS
