"""A minimal page table with write protection and fault delivery.

This exists to reproduce the paper's page-fault baseline (§1, refs [12,
15, 20]): crash-consistency systems that ``mprotect`` the persistent
region read-only and catch the first store to each page per epoch. The
table tracks per-page protection bits and dirty state, and delivers a
:class:`~repro.errors.ProtectionError`-shaped event to a registered fault
handler, charging the >1 µs trap cost the paper cites.

The page table deliberately does not translate addresses (the simulator is
identity-mapped); it only interposes protection, which is the behaviour
the baseline needs.
"""

from repro.errors import ProtectionError
from repro.mem.accessor import MemoryAccessor
from repro.util.bitops import page_base, split_pages
from repro.util.stats import StatGroup


class PagePermission:
    """Protection bits for one page."""

    READ = 1
    WRITE = 2
    READ_WRITE = READ | WRITE


class PageTable:
    """Per-page protection and dirty tracking over an address range."""

    def __init__(self, base, size):
        self.base = page_base(base)
        self.size = size
        self._perms = {}
        self._dirty = set()
        self.stats = StatGroup("page_table")

    def _check(self, addr):
        if not (self.base <= addr < self.base + self.size):
            raise ProtectionError(addr, "address 0x%x outside tracked range" % addr)

    def protect(self, addr, length, perm):
        """Set protection ``perm`` on every page covering the range."""
        for page, _off, _len in split_pages(addr, length):
            self._check(page)
            self._perms[page] = perm

    def protect_all(self, perm):
        """Set protection on the whole tracked range."""
        self.protect(self.base, self.size, perm)

    def permission(self, addr):
        """Protection bits of the page containing ``addr``."""
        self._check(addr)
        return self._perms.get(page_base(addr), PagePermission.READ_WRITE)

    def is_writable(self, addr):
        """True if a store to ``addr`` would not fault."""
        return bool(self.permission(addr) & PagePermission.WRITE)

    def mark_dirty(self, addr):
        """Record the page containing ``addr`` as dirty this epoch."""
        self._check(addr)
        self._dirty.add(page_base(addr))

    def dirty_pages(self):
        """Return the sorted list of dirty page base addresses."""
        return sorted(self._dirty)

    def clear_dirty(self):
        """Forget dirty state (start of a new epoch)."""
        self._dirty.clear()

    def __repr__(self):
        return "PageTable(0x%x..0x%x, %d dirty)" % (
            self.base, self.base + self.size, len(self._dirty))


class FaultingAccessor(MemoryAccessor):
    """An accessor that consults a :class:`PageTable` on every store.

    On a store to a write-protected page it invokes ``fault_handler(page)``
    — which typically logs the page, upgrades protection, and charges the
    trap cost — then retries. Loads never fault (the baseline only write-
    protects).
    """

    def __init__(self, inner, table, fault_handler):
        self._inner = inner
        self._table = table
        self._fault_handler = fault_handler
        self.stats = StatGroup("faulting_accessor")

    def read(self, addr, length):
        return self._inner.read(addr, length)

    def write(self, addr, data):
        data = bytes(data)
        for page, _off, _len in split_pages(addr, len(data)):
            if not self._table.is_writable(page):
                self.stats.counter("write_faults").add(1)
                self._fault_handler(page)
                if not self._table.is_writable(page):
                    raise ProtectionError(
                        page, "fault handler did not unprotect page 0x%x" % page)
            self._table.mark_dirty(page)
        self._inner.write(addr, data)
