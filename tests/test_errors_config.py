"""Exception hierarchy and PaxConfig validation."""

import pytest

from repro import errors
from repro.core.config import PaxConfig


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("AddressError", "ProtectionError", "PoolError",
                     "LogError", "AllocationError", "ProtocolError",
                     "CrashedError", "RecoveryError", "ConfigError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_protection_error_carries_address(self):
        exc = errors.ProtectionError(0x1234)
        assert exc.addr == 0x1234
        assert "0x1234" in str(exc)

    def test_one_except_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.LogError("x")


class TestPaxConfig:
    def test_defaults_validate(self):
        config = PaxConfig().validate()
        assert config.dedup_log_entries
        assert config.prefer_durable_eviction

    def test_negative_hbm_rejected(self):
        with pytest.raises(errors.ConfigError):
            PaxConfig(hbm_lines=-1).validate()

    def test_zero_buffer_rejected(self):
        with pytest.raises(errors.ConfigError):
            PaxConfig(writeback_buffer_lines=0).validate()

    def test_zero_drain_rejected(self):
        with pytest.raises(errors.ConfigError):
            PaxConfig(log_drain_bps=0).validate()
        with pytest.raises(errors.ConfigError):
            PaxConfig(writeback_drain_bps=0).validate()

    def test_negative_processing_rejected(self):
        with pytest.raises(errors.ConfigError):
            PaxConfig(device_processing_ns=-1).validate()

    def test_hbm_zero_is_valid_ablation(self):
        assert PaxConfig(hbm_lines=0).validate().hbm_lines == 0
