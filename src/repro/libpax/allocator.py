"""The persistent heap allocator.

Data structures allocate nodes from this allocator; it hands out offsets
in *structure space* — the pool data region viewed as ``[0, size)`` with
offset 0 reserved as NULL. All of the allocator's own metadata (bump
pointer, free-list heads, block headers) lives in that same space and is
accessed through the same :class:`~repro.mem.accessor.MemoryAccessor` as
the structures themselves.

That choice is load-bearing for the paper's black-box claim: under PAX,
allocator metadata writes are just more stores to vPM, so allocation state
is captured by the same undo-logged snapshot as the structure. A crash
rolls back half-completed allocations along with the inserts that made
them — no separate allocator recovery pass (compare PMDK, which needs
one).

Design: segregated free lists over a bump region.

* Size classes from 16 B to 4 KiB; larger requests round up to pages.
* ``free`` pushes the block onto its class list (the next pointer is
  stored in the block's first word).
* No coalescing — classes never change, so fragmentation is bounded by
  the working set of classes, which is fine for structure nodes.

Header layout (at offset 64, structure space)::

    magic  u64   ALLOC_MAGIC
    bump   u64   next never-allocated offset
    limit  u64   end of the arena
    heads  u64[NUM_CLASSES]  free-list heads (0 = empty)
"""

from repro.errors import AllocationError
from repro.mem.layout import StructLayout
from repro.util.bitops import align_up
from repro.util.constants import CACHE_LINE_SIZE, NULL_ADDR
from repro.util.stats import StatGroup

ALLOC_MAGIC = 0x5041585F414C4C43     # "PAX_ALLC"

#: Block size classes. Every allocation is rounded up to one of these (or
#: page-aligned above the largest).
SIZE_CLASSES = (16, 24, 32, 48, 64, 96, 128, 192, 256,
                384, 512, 1024, 2048, 4096)

#: Structure-space offset of the allocator header (offset 0..63 reserved
#: so that 0 can be NULL).
HEADER_OFFSET = CACHE_LINE_SIZE

_LAYOUT = StructLayout("alloc_header", [
    ("magic", "u64"),
    ("bump", "u64"),
    ("limit", "u64"),
    ("heads", "u64:%d" % len(SIZE_CLASSES)),
])

#: First offset available for user data, line-aligned past the header.
ARENA_OFFSET = align_up(HEADER_OFFSET + _LAYOUT.size, CACHE_LINE_SIZE)


def class_for_size(size):
    """Return ``(class_index, block_size)`` for a request of ``size`` bytes.

    Requests above the largest class return ``(None, page-rounded size)``.
    """
    if size <= 0:
        raise AllocationError("allocation size must be positive")
    for index, block in enumerate(SIZE_CLASSES):
        if size <= block:
            return index, block
    return None, align_up(size, 4096)


class PmAllocator:
    """Segregated-fit allocator with persistent metadata."""

    def __init__(self, mem, header_view):
        self._mem = mem
        self._hdr = header_view
        self.stats = StatGroup("allocator")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, mem, arena_size):
        """Format a fresh allocator over structure space ``[0, arena_size)``."""
        if arena_size <= ARENA_OFFSET + CACHE_LINE_SIZE:
            raise AllocationError("arena too small: %d bytes" % arena_size)
        view = _LAYOUT.view(mem, HEADER_OFFSET)
        view.set("bump", ARENA_OFFSET)
        view.set("limit", arena_size)
        for index in range(len(SIZE_CLASSES)):
            view.set("heads", NULL_ADDR, index=index)
        # Magic written last: an attach seeing the magic sees a complete
        # header.
        view.set("magic", ALLOC_MAGIC)
        return cls(mem, view)

    @classmethod
    def attach(cls, mem):
        """Bind to an allocator previously created in this space."""
        view = _LAYOUT.view(mem, HEADER_OFFSET)
        if view.get("magic") != ALLOC_MAGIC:
            raise AllocationError("no allocator header in this pool")
        return cls(mem, view)

    @classmethod
    def create_or_attach(cls, mem, arena_size):
        """Attach if formatted, else create."""
        view = _LAYOUT.view(mem, HEADER_OFFSET)
        if view.get("magic") == ALLOC_MAGIC:
            return cls(mem, view)
        return cls.create(mem, arena_size)

    # -- allocation ------------------------------------------------------------

    def alloc(self, size):
        """Allocate ``size`` bytes; returns a structure-space offset.

        The returned block is NOT zeroed (like malloc); callers initialize
        every field they use. (Zeroing would double the store traffic that
        the benchmarks measure.)
        """
        index, block_size = class_for_size(size)
        self.stats.counter("allocs").add(1)
        if index is not None:
            head = self._hdr.get("heads", index=index)
            if head != NULL_ADDR:
                next_free = self._mem.read_u64(head)
                self._hdr.set("heads", next_free, index=index)
                self.stats.counter("freelist_hits").add(1)
                return head
        return self._bump(block_size)

    def _bump(self, block_size):
        bump = self._hdr.get("bump")
        aligned = align_up(bump, 16)
        new_bump = aligned + block_size
        if new_bump > self._hdr.get("limit"):
            raise AllocationError(
                "pool heap exhausted: need %d bytes, %d remain"
                % (block_size, self._hdr.get("limit") - aligned))
        self._hdr.set("bump", new_bump)
        return aligned

    def free(self, offset, size):
        """Return a block to its size-class free list.

        Blocks above the largest class are leaked (bump-only); acceptable
        for the structures in this package, which free only nodes.
        """
        if offset == NULL_ADDR:
            return
        index, _block = class_for_size(size)
        self.stats.counter("frees").add(1)
        if index is None:
            self.stats.counter("large_leaks").add(1)
            return
        head = self._hdr.get("heads", index=index)
        self._mem.write_u64(offset, head)
        self._hdr.set("heads", offset, index=index)

    # -- introspection -----------------------------------------------------------

    @property
    def bump(self):
        """Next never-allocated offset (high-water mark)."""
        return self._hdr.get("bump")

    @property
    def limit(self):
        """End of the arena."""
        return self._hdr.get("limit")

    def bytes_remaining(self):
        """Never-allocated bytes left (ignores free lists)."""
        return self.limit - self.bump
