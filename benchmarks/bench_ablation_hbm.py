"""abl-hbm: device HBM cache size sensitivity.

Paper §1/§5: load misses are "often served from an on-device HBM cache of
PM"; §5 suggests HBM could push PAX toward DRAM-class performance. Sweeps
the HBM capacity and reports read-path behaviour of a get()-only workload
whose reuse pattern thrashes the small host caches.
"""

from repro.analysis.report import Table
from repro.cache.cache import CacheConfig
from repro.core.config import PaxConfig
from repro.libpax.pool import PaxPool
from repro.structures.hashmap import HashMap
from repro.workloads.keys import KeySequence

RECORDS = 6000
OPS = 6000
HBM_SIZES = (0, 1024, 8192, 65536)

#: Host caches shrunk below the working set: the get() miss stream must
#: actually reach the device for HBM capacity to be measurable.
TINY_HOST_CACHES = dict(
    l1_config=CacheConfig(size_bytes=4 * 1024, ways=4),
    l2_config=CacheConfig(size_bytes=16 * 1024, ways=8),
    llc_config=CacheConfig(size_bytes=32 * 1024, ways=8),
)


def run_hbm(hbm_lines):
    pool = PaxPool.map_pool(pool_size=16 * 1024 * 1024,
                            log_size=4 * 1024 * 1024,
                            pax_config=PaxConfig(hbm_lines=hbm_lines),
                            **TINY_HOST_CACHES)
    table = pool.persistent(HashMap, capacity=1 << 13)
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        table.put(load.next(), index)
    pool.persist()
    device = pool.machine.device
    device.hbm.stats.reset()
    device.stats.reset()
    # Uniform keys: the device-visible miss stream spans the whole table,
    # so HBM capacity (not just recency) is what is being measured.
    keys = KeySequence(RECORDS, "uniform", seed=2)
    start = pool.machine.now_ns
    for _ in range(OPS):
        table.get(keys.next())
    elapsed = pool.machine.now_ns - start
    hits = device.hbm.stats.get("hits")
    misses = device.hbm.stats.get("misses")
    return {
        "ns_per_get": elapsed / OPS,
        "hbm_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "pm_reads": device.stats.get("pm_line_reads"),
    }


def run():
    return {size: run_hbm(size) for size in HBM_SIZES}


def test_hbm_size_sweep(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-hbm: get() latency vs device HBM capacity",
                  ["hbm lines", "ns/get", "hbm hit rate", "pm line reads"])
    for size in HBM_SIZES:
        row = results[size]
        table.add_row(size, row["ns_per_get"],
                      "%.1f%%" % (100 * row["hbm_hit_rate"]),
                      row["pm_reads"])
    table.show()
    # A bigger HBM absorbs more device-side misses...
    assert results[65536]["hbm_hit_rate"] > results[1024]["hbm_hit_rate"]
    assert results[0]["hbm_hit_rate"] == 0.0
    # ...which must show up as less PM traffic and faster gets.
    assert results[65536]["pm_reads"] < results[0]["pm_reads"]
    assert results[65536]["ns_per_get"] <= results[0]["ns_per_get"]
