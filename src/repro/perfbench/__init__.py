"""Wall-clock performance regression harness.

Everything else in this repository measures *simulated* nanoseconds; this
package measures how fast the simulator itself runs, so that hot-path
regressions (an accidental per-access allocation, a string-keyed stat
lookup creeping back in) are caught by a number rather than by a feeling.
See docs/performance.md for the design rules this harness polices.

``python -m repro.perfbench`` runs a fixed workload x backend matrix and
writes a JSON report (see :data:`SCHEMA`); ``--compare`` grades a fresh
run against a committed baseline and fails on regression. Two different
quantities appear in a report and are deliberately kept apart:

* ``ops_per_sec`` — wall-clock throughput. Machine-dependent; compared
  with a tolerance.
* ``sim_ns`` — simulated time the workload consumed. Machine-independent
  and fully deterministic; compared exactly when configurations match,
  because any drift means simulated *behaviour* changed, which is never
  acceptable for a performance-only patch.

Wall-clock timing is inherently non-deterministic, so this package (like
``sim/clock.py``) is sanctioned to import :mod:`time`; nothing here feeds
back into simulation results.
"""

import gc
import json
import time

from repro.baselines import make_backend
from repro.cache.cache import CacheConfig
from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng

#: Report format identifier, bumped on incompatible layout changes.
SCHEMA = "repro.perfbench/1"

#: Workloads in the default matrix.
WORKLOADS = ("store_heavy", "load_heavy", "mixed")

#: Backends in the default matrix (the paper's headline comparison set,
#: plus the instrumentation spectrum: hand-written gates ``pmdk``,
#: per-store compiler gates ``compiler``, auto-placed gates ``autopass``).
BACKENDS = ("dram", "pm_direct", "pmdk", "compiler", "autopass", "pax")

#: Per-cell accounting pulled off backends that expose it: gate commits,
#: ordering stalls, undo-log bytes. How hand-written vs compiler vs
#: auto-placed gate placement differ shows up in these columns.
CELL_COUNTERS = ("gate_count", "sfence_count", "wal_bytes")

#: Default operation counts: sized so a full matrix finishes in about a
#: minute on a laptop while still spending >90% of its time in the
#: simulator's per-access path.
DEFAULT_OPS = 20000
DEFAULT_RECORDS = 2000
DEFAULT_SEED = 42

#: Same ~8x-scaled cache geometry the pytest benchmarks use, so perfbench
#: exercises the realistic mixed hit/miss regime rather than pure L1 hits.
BENCH_CACHES = dict(
    l1_config=CacheConfig(size_bytes=8 * 1024, ways=4),
    l2_config=CacheConfig(size_bytes=64 * 1024, ways=8),
    llc_config=CacheConfig(size_bytes=256 * 1024, ways=16),
)

_HEAP = 8 * 1024 * 1024
_LOG = 2 * 1024 * 1024


def build_backend(name):
    """Build ``name`` with perfbench-standard sizing."""
    kwargs = dict(heap_size=_HEAP, capacity=1 << 12)
    if name in ("pax", "hybrid"):
        kwargs = dict(pool_size=_HEAP, log_size=_LOG, capacity=1 << 12)
    kwargs.update(BENCH_CACHES)
    return make_backend(name, **kwargs)


def _drive(backend, workload, ops, records, seed):
    """Run the timed phase; returns (wall_s, sim_ns)."""
    rng = DeterministicRng(seed)
    for i in range(records):
        backend.put(i, i)
    hi = records - 1
    sim_start = backend.now_ns
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if workload == "store_heavy":
            start = time.perf_counter()
            for i in range(ops):
                backend.put(rng.randint(0, hi), i)
            wall_s = time.perf_counter() - start
        elif workload == "load_heavy":
            start = time.perf_counter()
            for _i in range(ops):
                backend.get(rng.randint(0, hi))
            wall_s = time.perf_counter() - start
        elif workload == "mixed":
            start = time.perf_counter()
            for i in range(ops):
                key = rng.randint(0, hi)
                if i & 1:
                    backend.put(key, i)
                else:
                    backend.get(key)
            wall_s = time.perf_counter() - start
        else:
            raise ConfigError("unknown workload %r (have %s)"
                              % (workload, ", ".join(WORKLOADS)))
    finally:
        if gc_was_enabled:
            gc.enable()
    return wall_s, backend.now_ns - sim_start


def attach_tracer(backend, tracer):
    """Wire ``tracer`` into ``backend`` through its richest attach hook.

    ``repro.obs`` tracers know how to attach themselves (adopting the
    backend's simulated clock); plain :class:`~repro.sanitizer.base.Tracer`
    objects go through the backend's or machine's ``attach_tracer``.
    """
    self_attach = getattr(tracer, "attach", None)
    if self_attach is not None:
        self_attach(backend)
        return
    hook = getattr(backend, "attach_tracer", None)
    (hook or backend.machine.attach_tracer)(tracer)


def _run_cell(workload, backend_name, ops, records, seed, repeats, tracer):
    """Measure one cell; returns ``(result dict, last backend)``."""
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    best_wall = None
    sim_ns = None
    backend = None
    for _attempt in range(repeats):
        backend = build_backend(backend_name)
        if tracer is not None:
            attach_tracer(backend, tracer)
        wall_s, cell_sim_ns = _drive(backend, workload, ops, records, seed)
        if sim_ns is None:
            sim_ns = cell_sim_ns
        elif sim_ns != cell_sim_ns:
            raise ConfigError(
                "non-deterministic simulation: %s/%s consumed %d ns then %d"
                % (workload, backend_name, sim_ns, cell_sim_ns))
        if best_wall is None or wall_s < best_wall:
            best_wall = wall_s
    cell = {
        "workload": workload,
        "backend": backend_name,
        "ops": ops,
        "wall_s": round(best_wall, 6),
        "ops_per_sec": round(ops / best_wall, 1) if best_wall > 0 else 0.0,
        "sim_ns": sim_ns,
    }
    for counter in CELL_COUNTERS:
        value = getattr(backend, counter, None)
        # bool is an int subclass; exclude it so a stray flag attribute
        # never masquerades as a counter.
        if isinstance(value, int) and not isinstance(value, bool):
            cell[counter] = value
    return cell, backend


def run_cell(workload, backend_name, ops=DEFAULT_OPS, records=DEFAULT_RECORDS,
             seed=DEFAULT_SEED, repeats=1, tracer=None):
    """Measure one workload x backend cell; returns a result dict.

    With ``repeats`` > 1 the cell is rebuilt and rerun that many times and
    the best (largest throughput) wall-clock figure is reported — the
    standard defence against a scheduler hiccup polluting a measurement.
    ``sim_ns`` is identical across repeats by construction; this is
    asserted, making every multi-repeat run a free determinism check.

    ``tracer`` (a :class:`~repro.obs.tracer.ObsTracer` or any sanitizer
    tracer) is attached to every rebuilt backend; since tracers only
    observe, the ``sim_ns`` assertion keeps holding — which is how the
    harness proves tracing never perturbs the simulation.
    """
    cell, _backend = _run_cell(workload, backend_name, ops, records, seed,
                               repeats, tracer)
    return cell


def run_matrix(workloads=WORKLOADS, backends=BACKENDS, ops=DEFAULT_OPS,
               records=DEFAULT_RECORDS, seed=DEFAULT_SEED, repeats=1,
               progress=None, tracer_factory=None, cell_hook=None):
    """Run the full matrix; returns the report dict (see :data:`SCHEMA`).

    ``tracer_factory()`` (optional) builds a fresh tracer per cell;
    ``cell_hook(cell, backend, tracer)`` then receives each finished
    cell with its (last-repeat) backend and tracer, so the CLI can dump
    trace events and metrics without the report format changing.
    """
    results = []
    for workload in workloads:
        for backend_name in backends:
            tracer = tracer_factory() if tracer_factory is not None else None
            cell, backend = _run_cell(workload, backend_name, ops, records,
                                      seed, repeats, tracer)
            results.append(cell)
            if progress is not None:
                progress(cell)
            if cell_hook is not None:
                cell_hook(cell, backend, tracer)
    return {
        "schema": SCHEMA,
        "config": {
            "ops": ops,
            "records": records,
            "seed": seed,
            "repeats": repeats,
            "workloads": list(workloads),
            "backends": list(backends),
        },
        "results": results,
    }


def write_report(report, path):
    """Write ``report`` as pretty JSON with a trailing newline."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path):
    """Load and schema-check a report written by :func:`write_report`."""
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ConfigError("%s is not a %s report (schema=%r)"
                          % (path, SCHEMA, report.get("schema")))
    return report


def compare(current, baseline, tolerance=0.30):
    """Grade ``current`` against ``baseline``; returns a list of problems.

    Two checks, matching the two quantities in a report:

    * wall-clock: a cell regresses when its throughput drops below
      ``baseline * (1 - tolerance)``. Tolerant, because machines differ.
    * simulated time: compared **exactly**, but only when the two reports
      ran the same config (ops/records/seed) — ``sim_ns`` must not move
      under a performance-only change.

    Cells present in only one report are ignored (the matrix may grow).
    """
    if not 0 <= tolerance < 1:
        raise ConfigError("tolerance must be in [0, 1)")
    base_cells = {(cell["workload"], cell["backend"]): cell
                  for cell in baseline["results"]}
    same_config = all(
        current["config"].get(key) == baseline["config"].get(key)
        for key in ("ops", "records", "seed"))
    problems = []
    for cell in current["results"]:
        base = base_cells.get((cell["workload"], cell["backend"]))
        if base is None:
            continue
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        if cell["ops_per_sec"] < floor:
            problems.append(
                "%s/%s: %.0f ops/s is below %.0f (baseline %.0f - %d%%)"
                % (cell["workload"], cell["backend"], cell["ops_per_sec"],
                   floor, base["ops_per_sec"], round(tolerance * 100)))
        if same_config and cell["sim_ns"] != base["sim_ns"]:
            problems.append(
                "%s/%s: simulated time changed %d -> %d ns under identical "
                "config; the patch changed behaviour, not just speed"
                % (cell["workload"], cell["backend"], base["sim_ns"],
                   cell["sim_ns"]))
    return problems
