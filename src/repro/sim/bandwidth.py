"""Bandwidth accounting.

Latency tells you how long one access takes in isolation; bandwidth caps
how many can complete per second under load. The throughput model for
Figure 2b needs both: per-thread latency sets the un-contended rate, and
media bandwidth ceilings flatten the scaling curves (PM write bandwidth is
what bends the PM-direct and PMDK curves in the paper).

:class:`BandwidthMeter` tracks bytes moved against simulated time and
reports achieved rates. :class:`BandwidthLimiter` additionally computes the
queueing delay a transfer must absorb when the medium is saturated, using a
simple fluid model: the medium drains at ``bytes_per_second``; a transfer
arriving while backlog exists waits for its share of the backlog to drain.
"""

from repro.errors import ConfigError, SimulationError
from repro.util.stats import StatGroup


class BandwidthMeter:
    """Counts bytes transferred; reports achieved bytes/second."""

    def __init__(self, name, clock):
        self.name = name
        self._clock = clock
        self._start_ns = clock.now_ns
        self.stats = StatGroup(name)
        # Per-transfer counters bound once (hot-path-stat-lookup rule).
        self._c_bytes = self.stats.counter("bytes")
        self._c_transfers = self.stats.counter("transfers")

    def record(self, num_bytes):
        """Account ``num_bytes`` moved at the current simulated time."""
        if num_bytes < 0:
            raise SimulationError("cannot transfer negative bytes")
        self._c_bytes.add(num_bytes)
        self._c_transfers.add(1)

    @property
    def bytes_moved(self):
        """Total bytes recorded so far."""
        return self._c_bytes.value

    def achieved_bps(self):
        """Achieved bytes/second since construction (0 if no time passed)."""
        elapsed_ns = self._clock.now_ns - self._start_ns
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_moved * 1e9 / elapsed_ns


class BandwidthLimiter:
    """A fluid-model link/medium with a fixed drain rate.

    ``submit(num_bytes)`` returns the extra queueing delay (ns) the caller
    should charge on top of its base latency. The internal backlog drains
    continuously at ``bytes_per_second`` as simulated time advances.
    """

    def __init__(self, name, clock, bytes_per_second):
        if bytes_per_second <= 0:
            raise ConfigError("bandwidth must be positive for %s" % name)
        self.name = name
        self._clock = clock
        self._rate = bytes_per_second
        self._backlog_bytes = 0.0
        self._last_ns = clock.now_ns
        self.stats = StatGroup(name)
        # Per-transfer counters bound once (hot-path-stat-lookup rule).
        self._c_bytes = self.stats.counter("bytes")
        self._c_transfers = self.stats.counter("transfers")
        self._c_stalled = self.stats.counter("stalled_transfers")
        self._h_queue_delay = self.stats.histogram("queue_delay_ns")

    def _drain(self):
        now = self._clock.now_ns
        elapsed_ns = now - self._last_ns
        if elapsed_ns > 0:
            drained = self._rate * elapsed_ns / 1e9
            self._backlog_bytes = max(0.0, self._backlog_bytes - drained)
            self._last_ns = now

    def submit(self, num_bytes):
        """Queue a transfer; return queueing delay in nanoseconds."""
        if num_bytes < 0:
            raise SimulationError("cannot transfer negative bytes")
        self._drain()
        delay_ns = self._backlog_bytes * 1e9 / self._rate
        self._backlog_bytes += num_bytes
        self._c_bytes.value += num_bytes
        self._c_transfers.value += 1
        if delay_ns > 0:
            self._c_stalled.value += 1
            self._h_queue_delay.record(delay_ns)
        return delay_ns

    @property
    def backlog_bytes(self):
        """Current un-drained backlog (after accounting elapsed time)."""
        self._drain()
        return self._backlog_bytes

    def service_time_ns(self, num_bytes):
        """Pure transfer time of ``num_bytes`` at the drain rate."""
        return num_bytes * 1e9 / self._rate
