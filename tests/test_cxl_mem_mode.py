"""CXL.mem-mode PAX (paper §6): reduced visibility, same guarantees."""

import pytest

from repro.errors import ConfigError
from repro.libpax.machine import PaxMachine
from repro.libpax.pool import PaxPool
from repro.structures import HashMap
from tests.conftest import small_cache_kwargs


def mem_pool(**overrides):
    kwargs = dict(pool_size=4 * 1024 * 1024, log_size=256 * 1024,
                  protocol="cxl.mem")
    kwargs.update(small_cache_kwargs())
    kwargs.update(overrides)
    return PaxPool.map_pool(**kwargs)


class TestMemMode:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            PaxMachine(pool_size=2 * 1024 * 1024, log_size=128 * 1024,
                       protocol="cxl.io")

    def test_functional_put_get(self):
        pool = mem_pool()
        table = pool.persistent(HashMap, capacity=64)
        for key in range(100):
            table.put(key, key * 2)
        pool.persist()
        assert table.to_dict() == {key: key * 2 for key in range(100)}

    def test_device_hears_nothing_on_ownership(self):
        # The §6 visibility gap: stores produce no device messages until
        # a write-back happens.
        pool = mem_pool()
        mem = pool.mem()
        mem.read_u64(4096)                      # warm the line
        reads = pool.machine.device.stats.get("mem_rd")
        mem.write_u64(4096, 1)                  # silent E->M upgrade
        device = pool.machine.device
        assert device.stats.get("mem_rd") == reads
        assert device.stats.get("mem_wr") == 0
        assert device.stats.get("rd_own") == 0
        assert device.undo.pending_count == 0   # nothing logged yet

    def test_logging_happens_at_writeback(self):
        pool = mem_pool()
        mem = pool.mem()
        mem.write_u64(4096, 42)
        device = pool.machine.device
        line = (1 << 32) + 4096 - 4096 % 64
        pool.machine.hierarchy.writeback_line(line)
        assert device.stats.get("mem_wr") == 1
        assert device.stats.get("lines_logged") == 1

    def test_crash_recovery_snapshot_semantics(self):
        pool = mem_pool()
        table = pool.persistent(HashMap, capacity=64)
        for key in range(30):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        for key in range(30, 60):
            table.put(key, key)
        table.put(0, 999)
        pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        assert recovered.to_dict() == snapshot

    def test_repeated_epochs(self):
        pool = mem_pool()
        table = pool.persistent(HashMap, capacity=64)
        committed = {}
        for cycle in range(4):
            for key in range(cycle * 10, cycle * 10 + 10):
                table.put(key, cycle)
                committed[key] = cycle
            pool.persist()
        pool.crash()
        pool.restart()
        assert pool.reattach_root(HashMap).to_dict() == committed

    def test_async_persist_unsupported(self):
        pool = mem_pool()
        pool.persistent(HashMap, capacity=64)
        with pytest.raises(ConfigError):
            pool.persist_async()

    def test_persist_costs_more_than_cache_mode(self):
        # §6's point quantified: software CLWB sweeps are the price of
        # losing coherence visibility.
        def persist_cost(protocol):
            pool = (mem_pool() if protocol == "cxl.mem"
                    else PaxPool.map_pool(pool_size=4 * 1024 * 1024,
                                          log_size=256 * 1024,
                                          **small_cache_kwargs()))
            table = pool.persistent(HashMap, capacity=64)
            for key in range(100):
                table.put(key, key)
            return pool.persist()

        assert persist_cost("cxl.mem") > persist_cost("cxl.cache")

    def test_mid_epoch_eviction_pressure(self):
        # Lines evicted (and logged+written) mid-epoch, then crash:
        # rollback must still restore the snapshot.
        pool = mem_pool(l1_config=None)    # default tiny caches from kwargs
        table = pool.persistent(HashMap, capacity=64)
        for key in range(20):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        # Heavy churn: plenty of capacity evictions reach the device.
        for key in range(300):
            table.put(key, key + 1000)
        pool.machine.clock.advance(10_000_000)   # drain freely
        pool.crash()
        pool.restart()
        assert pool.reattach_root(HashMap).to_dict() == snapshot
