"""Plain-text tables and series for benchmark output.

Every benchmark prints the rows/series the corresponding paper figure
shows, via these helpers, so ``pytest benchmarks/ --benchmark-only`` output
doubles as the EXPERIMENTS.md data source.
"""

from repro.errors import StatsError


class Table:
    """A fixed-column text table."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add_row(self, *values):
        """Append one row (stringified on render)."""
        if len(values) != len(self.columns):
            raise StatsError("expected %d values, got %d"
                             % (len(self.columns), len(values)))
        self.rows.append([_fmt(value) for value in values])

    def render(self):
        """Return the aligned table as a string."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = ["== %s ==" % self.title]
        header = "  ".join(col.ljust(widths[i])
                           for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self):
        """Print the table."""
        print()
        print(self.render())


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 10:
            return "%.1f" % value
        return "%.2f" % value
    return str(value)


def format_ns(ns):
    """Human-scale a nanosecond figure."""
    if ns >= 1e9:
        return "%.2f s" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.2f us" % (ns / 1e3)
    return "%.1f ns" % ns


def format_bytes(count):
    """Human-scale a byte count."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return "%.1f %s" % (count, unit)
        count /= 1024.0
    return "%d B" % count
