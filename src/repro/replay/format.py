"""Versioned columnar trace container.

A trace is an event stream captured from a live backend (see
:mod:`repro.replay.recorder`) stored as four parallel columns plus a
payload heap — the struct-of-arrays layout the batched replay engine
iterates without per-event object construction:

========  ======  =====================================================
column    dtype   meaning
========  ======  =====================================================
kinds     u8      event kind (:data:`KIND_NAMES`)
aux       u64     kind-specific scalar (core id; ``tx_id*2 + fence``)
addrs     u64     physical / heap-relative address
sizes     u32     access length or payload length
payload   bytes   concatenated store/append payloads, in event order
========  ======  =====================================================

On disk: a fixed little-endian header (magic, version, flags, counts),
the four columns, the payload heap, a sorted-JSON footer (backend name,
config, final ``sim_ns``, structure-layer counter deltas), and a CRC32
over everything that precedes it. Any structural damage — short file,
foreign magic, unknown version, checksum mismatch — raises
:class:`~repro.errors.TraceFormatError` at load time, never at replay
time.
"""

import json
import struct
import zlib

from repro.errors import TraceFormatError
from repro.replay._np import decode_column, encode_column

#: File magic (8 bytes) and current format version.
TRACE_MAGIC = b"RPXTRACE"
TRACE_VERSION = 1

# magic, version u16, flags u16, count u64, payload_len u64, footer_len u32
_HEADER = struct.Struct("<8sHHQQI")
_CRC = struct.Struct("<I")

# Event kinds. Stable numbering: appending new kinds is compatible,
# renumbering bumps TRACE_VERSION.
LOAD = 1          # aux=core_id, addr, size
STORE = 2         # aux=core_id, addr, size, payload
RAW_READ = 3      # addr, size               (machine.space.read)
RAW_WRITE = 4     # addr, size, payload      (machine.space.write)
CLWB = 5          # addr, size               (flush.clwb)
SFENCE = 6        #                          (flush.sfence)
WBL = 7           # addr                     (hierarchy.writeback_line)
PERSIST = 8       #                          (machine.persist)
WAL_APPEND = 9    # aux=tx_id*2+fence, addr, size, payload
WAL_RESET = 10    #                          (wal.reset)
MARK = 11         # aux=mark code, payload=label

#: Kind id -> name, for tooling and error messages.
KIND_NAMES = {
    LOAD: "load", STORE: "store", RAW_READ: "raw_read",
    RAW_WRITE: "raw_write", CLWB: "clwb", SFENCE: "sfence",
    WBL: "writeback_line", PERSIST: "persist", WAL_APPEND: "wal_append",
    WAL_RESET: "wal_reset", MARK: "mark",
}

#: Kinds that carry bytes in the payload heap (in column order).
PAYLOAD_KINDS = frozenset((STORE, RAW_WRITE, WAL_APPEND, MARK))

#: Mark code emitted by perfbench between preload and the timed phase.
MARK_TIMED = 1


class Trace:
    """A decoded trace: four int columns, a payload heap, and a footer."""

    __slots__ = ("kinds", "aux", "addrs", "sizes", "payload", "footer",
                 "_fast_columns")

    def __init__(self, kinds, aux, addrs, sizes, payload, footer):
        self.kinds = kinds
        self.aux = aux
        self.addrs = addrs
        self.sizes = sizes
        #: Derived per-event columns memoized by the fast replay engine
        #: ("record once, replay many" amortizes the decode).
        self._fast_columns = None
        self.payload = bytes(payload)
        self.footer = footer

    def __len__(self):
        return len(self.kinds)

    def payload_slices(self):
        """Per-event payload bytes (None for kinds that carry none)."""
        out = []
        cursor = 0
        payload = self.payload
        for kind, size in zip(self.kinds, self.sizes):
            if kind in PAYLOAD_KINDS:
                out.append(payload[cursor:cursor + size])
                cursor += size
            else:
                out.append(None)
        return out

    def events(self):
        """Iterate ``(kind, aux, addr, size, payload_or_None)`` tuples."""
        return zip(self.kinds, self.aux, self.addrs, self.sizes,
                   self.payload_slices())

    def kind_counts(self):
        """Event count per kind *name* (kinds absent from the trace are
        omitted); unknown kind ids key by their decimal string."""
        counts = {}
        for kind in self.kinds:
            counts[kind] = counts.get(kind, 0) + 1
        return {KIND_NAMES.get(kind, str(kind)): count
                for kind, count in counts.items()}

    def to_bytes(self):
        """Serialize; the inverse of :func:`load_trace_bytes`."""
        count = len(self.kinds)
        footer_blob = json.dumps(self.footer, sort_keys=True,
                                 separators=(",", ":")).encode("utf-8")
        parts = [
            _HEADER.pack(TRACE_MAGIC, TRACE_VERSION, 0, count,
                         len(self.payload), len(footer_blob)),
            encode_column("B", self.kinds),
            encode_column("Q", self.aux),
            encode_column("Q", self.addrs),
            encode_column("I", self.sizes),
            self.payload,
            footer_blob,
        ]
        body = b"".join(parts)
        return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)

    def save(self, path):
        """Write the serialized trace to ``path``."""
        blob = self.to_bytes()
        with open(path, "wb") as handle:
            handle.write(blob)
        return len(blob)


def load_trace_bytes(blob, use_numpy=None):
    """Decode a serialized trace; raises :class:`TraceFormatError`."""
    if len(blob) < _HEADER.size + _CRC.size:
        raise TraceFormatError(
            "trace truncated: %d bytes is shorter than the %d-byte header"
            % (len(blob), _HEADER.size + _CRC.size))
    magic, version, _flags, count, payload_len, footer_len = \
        _HEADER.unpack_from(blob, 0)
    if magic != TRACE_MAGIC:
        raise TraceFormatError("not a trace file (magic %r)" % magic)
    if version != TRACE_VERSION:
        raise TraceFormatError(
            "unsupported trace version %d (this build reads %d)"
            % (version, TRACE_VERSION))
    expect = (_HEADER.size + count * (1 + 8 + 8 + 4)
              + payload_len + footer_len + _CRC.size)
    if len(blob) != expect:
        raise TraceFormatError(
            "trace truncated or padded: %d bytes, header promises %d"
            % (len(blob), expect))
    (crc,) = _CRC.unpack_from(blob, len(blob) - _CRC.size)
    actual = zlib.crc32(blob[:-_CRC.size]) & 0xFFFFFFFF
    if crc != actual:
        raise TraceFormatError(
            "trace checksum mismatch (stored %08x, computed %08x)"
            % (crc, actual))
    cursor = _HEADER.size
    kinds = decode_column("B", blob[cursor:cursor + count], use_numpy)
    cursor += count
    aux = decode_column("Q", blob[cursor:cursor + 8 * count], use_numpy)
    cursor += 8 * count
    addrs = decode_column("Q", blob[cursor:cursor + 8 * count], use_numpy)
    cursor += 8 * count
    sizes = decode_column("I", blob[cursor:cursor + 4 * count], use_numpy)
    cursor += 4 * count
    payload = blob[cursor:cursor + payload_len]
    cursor += payload_len
    try:
        footer = json.loads(blob[cursor:cursor + footer_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise TraceFormatError("trace footer is not valid JSON: %s" % exc)
    return Trace(kinds, aux, addrs, sizes, payload, footer)


def load_trace(path, use_numpy=None):
    """Read and decode the trace at ``path``."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise TraceFormatError("cannot read trace %s: %s" % (path, exc))
    return load_trace_bytes(blob, use_numpy)
