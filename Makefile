# Developer entry points. Everything is pure Python; no build step.

PYTHON ?= python

.PHONY: install test bench examples quicktest clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

quicktest:
	$(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis examples/ht.pool
	find . -name __pycache__ -type d -exec rm -rf {} +
