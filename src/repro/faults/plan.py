"""Declarative fault plans.

A :class:`FaultPlan` says *what* goes wrong around a crash; the
:class:`~repro.faults.injector.FaultInjector` makes it happen. Plans are
plain frozen dataclasses so a fuzz iteration's plan can be printed
verbatim when it finds a counter-example.

The bit-flip fault model is deliberately scoped to the bytes the
crash-consistency machinery can do something about (detect, or mask by
rollback):

``log``
    A durable undo-log entry that is *not* the tail. Its CRC breaks and
    valid entries follow, so recovery must detect it and raise.
``epoch``
    One of the two epoch-record slots. The CRC breaks and the surviving
    slot carries the pool.
``logged_data``
    A data-region line that has a live undo record. Rollback rewrites
    the whole line, masking the flip.

Flips in unlogged data lines are undetectable by an undo-log scheme
(they would need data-region checksums) and are out of scope — see
``docs/faults.md``.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError

BIT_FLIP_REGIONS = ("log", "epoch", "logged_data")


@dataclass(frozen=True)
class LinkFaultSpec:
    """Loss/delay behaviour for a :class:`~repro.cxl.lossy.LossyLink`.

    A dropped message costs the sender ``timeout_ns`` (it must conclude
    the message is gone) plus an exponential backoff before the
    retransmit; after ``max_retries`` consecutive drops of one message
    the link gives up with :class:`~repro.errors.LinkError`.
    """

    drop_rate: float = 0.01
    delay_rate: float = 0.0
    delay_ns: float = 500.0
    timeout_ns: float = 2_000.0
    backoff_base_ns: float = 500.0
    backoff_cap_ns: float = 64_000.0
    max_retries: int = 8
    seed: int = 42

    def validate(self):
        """Raise :class:`ConfigError` on nonsensical parameters."""
        if not 0.0 <= self.drop_rate < 1.0:
            raise ConfigError("drop_rate must be in [0, 1)")
        if not 0.0 <= self.delay_rate < 1.0:
            raise ConfigError("delay_rate must be in [0, 1)")
        if min(self.delay_ns, self.timeout_ns, self.backoff_base_ns,
               self.backoff_cap_ns) < 0:
            raise ConfigError("link fault latencies cannot be negative")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be at least 1")
        return self


@dataclass(frozen=True)
class BitFlipSpec:
    """``flips`` single-bit media faults in one target region."""

    region: str
    flips: int = 1

    def validate(self):
        """Raise :class:`ConfigError` on an unknown region or zero flips."""
        if self.region not in BIT_FLIP_REGIONS:
            raise ConfigError("bit-flip region must be one of %r, not %r"
                              % (BIT_FLIP_REGIONS, self.region))
        if self.flips < 1:
            raise ConfigError("a BitFlipSpec must flip at least one bit")
        return self


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong at (and after) the next crash.

    ``torn_write`` tears the PM write in flight at crash time: only a
    random prefix of its payload becomes durable. ``bitflips`` are media
    faults applied between the crash and recovery. ``link`` makes the
    CXL link lossy for the whole run (not just around the crash).
    """

    torn_write: bool = False
    bitflips: Tuple[BitFlipSpec, ...] = field(default_factory=tuple)
    link: Optional[LinkFaultSpec] = None
    seed: int = 42

    def validate(self):
        """Validate every constituent spec; returns self for chaining."""
        for spec in self.bitflips:
            spec.validate()
        if self.link is not None:
            self.link.validate()
        return self

    @property
    def is_benign(self):
        """True if the plan injects no faults at all (clean-crash mode)."""
        return (not self.torn_write and not self.bitflips
                and self.link is None)

    @classmethod
    def random(cls, rng, allow_link=True):
        """Draw a random fault mix from ``rng`` (a DeterministicRng).

        Used by the fuzz harness: roughly half the plans tear the
        in-flight write, each bit-flip region appears independently, and
        a third of the plans add a lossy link.
        """
        bitflips = []
        roll = rng.random()
        if roll < 0.20:
            bitflips.append(BitFlipSpec("log"))
        elif roll < 0.40:
            bitflips.append(BitFlipSpec("epoch"))
        elif roll < 0.60:
            bitflips.append(BitFlipSpec("logged_data",
                                        flips=rng.randint(1, 3)))
        link = None
        if allow_link and rng.random() < 0.30:
            link = LinkFaultSpec(drop_rate=0.005 + 0.045 * rng.random(),
                                 delay_rate=0.05 * rng.random(),
                                 seed=rng.randint(0, 2**31 - 1))
        return cls(torn_write=rng.random() < 0.5,
                   bitflips=tuple(bitflips),
                   link=link,
                   seed=rng.randint(0, 2**31 - 1)).validate()

    def describe(self):
        """One-line human summary (fuzz failure messages)."""
        parts = []
        if self.torn_write:
            parts.append("torn-write")
        for spec in self.bitflips:
            parts.append("flip:%s x%d" % (spec.region, spec.flips))
        if self.link is not None:
            parts.append("lossy-link(drop=%.3f)" % self.link.drop_rate)
        return " + ".join(parts) if parts else "clean-crash"
