"""Long seeded random walks across the whole API surface.

Not hypothesis (these runs are too long to shrink usefully) — three fixed
seeds drive thousands of mixed operations: structure mutations on several
named roots, blocking and pipelined persists, crashes at random moments,
restarts, and re-attachment — with full invariant checks after every
recovery. Any integration bug between the allocator, the structures, the
device, the pipeline, and recovery has to survive this gauntlet to ship.
"""

import pytest

from repro.sim.rng import DeterministicRng
from repro.structures import BTree, HashMap, PersistentList, RingBuffer
from repro.crashtest import verify_map_integrity
from tests.conftest import make_pax_pool


class Mirror:
    """Python-side mirror of pool state across persists and crashes."""

    def __init__(self):
        self.committed = {"map": {}, "tree": {}, "list": [], "ring": []}
        self.pending = None
        self.reset_pending()

    def reset_pending(self):
        self.pending = {
            "map": dict(self.committed["map"]),
            "tree": dict(self.committed["tree"]),
            "list": list(self.committed["list"]),
            "ring": list(self.committed["ring"]),
        }

    def commit(self):
        self.committed = {
            "map": dict(self.pending["map"]),
            "tree": dict(self.pending["tree"]),
            "list": list(self.pending["list"]),
            "ring": list(self.pending["ring"]),
        }


def reattach_all(pool):
    return {
        "map": pool.reattach_named("map", HashMap),
        "tree": pool.reattach_named("tree", BTree),
        "list": pool.reattach_named("list", PersistentList),
        "ring": pool.reattach_named("ring", RingBuffer),
    }


def check_matches(structures, state):
    assert verify_map_integrity(structures["map"]) == state["map"]
    structures["tree"].check_order()
    assert structures["tree"].to_dict() == state["tree"]
    structures["list"].check_links()
    assert structures["list"].to_list() == state["list"]
    structures["ring"].check_invariants()
    assert structures["ring"].to_list() == state["ring"]


@pytest.mark.parametrize("seed", [11, 222, 3333])
def test_random_walk(seed):
    rng = DeterministicRng(seed)
    pool = make_pax_pool(pool_size=8 * 1024 * 1024, log_size=1024 * 1024)
    structures = {
        "map": pool.persistent_named("map", HashMap, capacity=64),
        "tree": pool.persistent_named("tree", BTree),
        "list": pool.persistent_named("list", PersistentList),
        "ring": pool.persistent_named("ring", RingBuffer, capacity=32),
    }
    mirror = Mirror()
    flights = []

    for step in range(1500):
        roll = rng.random()
        if roll < 0.55:
            # A structure mutation.
            which = rng.choice(["map", "tree", "list", "ring"])
            key = rng.randint(0, 80)
            if which == "map":
                if rng.random() < 0.75:
                    structures["map"].put(key, step)
                    mirror.pending["map"][key] = step
                else:
                    structures["map"].remove(key)
                    mirror.pending["map"].pop(key, None)
            elif which == "tree":
                if rng.random() < 0.75:
                    structures["tree"].put(key, step)
                    mirror.pending["tree"][key] = step
                else:
                    structures["tree"].remove(key)
                    mirror.pending["tree"].pop(key, None)
            elif which == "list":
                if rng.random() < 0.6 or not mirror.pending["list"]:
                    structures["list"].push_back(step)
                    mirror.pending["list"].append(step)
                else:
                    assert structures["list"].pop_front() \
                        == mirror.pending["list"].pop(0)
            else:
                if (rng.random() < 0.6
                        and len(mirror.pending["ring"]) < 32):
                    structures["ring"].enqueue(step)
                    mirror.pending["ring"].append(step)
                elif mirror.pending["ring"]:
                    assert structures["ring"].dequeue() \
                        == mirror.pending["ring"].pop(0)
        elif roll < 0.75:
            # A read burst.
            for _ in range(3):
                key = rng.randint(0, 80)
                assert structures["map"].get(key) \
                    == mirror.pending["map"].get(key)
                assert structures["tree"].get(key) \
                    == mirror.pending["tree"].get(key)
        elif roll < 0.87:
            pool.persist()
            mirror.commit()
            flights.clear()
        elif roll < 0.93:
            flights.append((pool.persist_async(), step))
            mirror.commit()       # async commit is still a commit point
        else:
            # Crash. Barrier the in-flight async epochs first (so the
            # mirror's commit points are all durable); everything mutated
            # since the last commit point is the open epoch and must be
            # rolled back.
            pool.persist_barrier()
            pool.crash()
            pool.restart()
            structures = reattach_all(pool)
            check_matches(structures, mirror.committed)
            mirror.reset_pending()
            flights.clear()

    # Final verification: barrier everything and compare.
    pool.persist_barrier()
    pool.persist()
    mirror.commit()
    check_matches(structures, mirror.pending)
