"""libpax: the user-facing library + the simulated machines behind it."""

from repro.libpax.allocator import PmAllocator, SIZE_CLASSES
from repro.libpax.machine import (
    CpuAccessor,
    HEAP_PHYS_BASE,
    HostMachine,
    PaxHome,
    PaxMachine,
)
from repro.libpax.persistent import Persistent
from repro.libpax.pool import PaxPool, map_pool

__all__ = [
    "CpuAccessor",
    "HEAP_PHYS_BASE",
    "HostMachine",
    "PaxHome",
    "PaxMachine",
    "PaxPool",
    "Persistent",
    "PmAllocator",
    "SIZE_CLASSES",
    "map_pool",
]
