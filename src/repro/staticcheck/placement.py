"""Gate-site planning for the persist-order auto-fix pass.

Consumes the same must-analysis the ``persist-order`` checker runs
(:class:`~repro.staticcheck.checkers._GateAnalysis`) and turns its
uncovered-store report into *regions*: contiguous statement runs that
one ``begin``/``end`` pair (or one ``with transaction:`` block) can
cover. The planning rules implement the dominance argument directly:

* **Merge.** All uncovered stores of a function are mapped to their
  owning statements and merged up to the lowest common ancestor body;
  one gate pair around the spanning statement run covers every store,
  because a gate opened immediately before the run's first statement
  dominates everything inside it (verified against the CFG with
  :func:`~repro.staticcheck.dataflow.dominators` before the plan is
  accepted).
* **Hoist.** When the common body is a loop body the region is hoisted
  to the loop statement itself: a gate inside the body would miss no
  store, but one *before* the loop dominates every iteration with a
  single open/close pair instead of one per iteration.
* **Split.** Statements that close gates (``end``/``commit``/...)
  break a span into maximal close-free runs, so an inserted open is
  never cancelled before the stores it must cover.
* **Close placement.** The fall-through close site after the run
  covers every store when it post-dominates them
  (:func:`~repro.staticcheck.dataflow.postdominators`); in-region
  ``return`` statements otherwise get their own close so the gate
  cannot leak open.

Stores already covered by an existing gate are never touched — the
uncovered report is the checker's, so "avoid redundant gates inside
already-covered regions" falls out for free.
"""

import ast

from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.checkers import (
    _bound_store_names,
    _gate_delta,
    _GateAnalysis,
)
from repro.staticcheck.dataflow import TOP, dominators, postdominators

_LOOPS = (ast.While, ast.For, ast.AsyncFor)

#: Nested scopes own their own CFG; region scans stop at them.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


def uncovered_stores(func):
    """``(calls, cfg)``: store calls not gate-dominated on all paths.

    Exactly the calls ``check_persist_order`` would report for this
    function, in block order, deduplicated by source location.
    """
    bound = _bound_store_names(func)
    cfg = build_cfg(func)
    in_facts = _GateAnalysis(bound).solve(cfg)
    reporter = _GateAnalysis(bound, report=[])
    seen = set()
    calls = []
    for block in cfg.blocks:
        fact = in_facts.get(block, TOP)
        if fact is TOP:
            continue
        reporter.report = []
        reporter.block_out(fact, block)
        for call in reporter.report:
            location = (call.lineno, call.col_offset)
            if location not in seen:
                seen.add(location)
                calls.append(call)
    return calls, cfg


class Region:
    """One contiguous statement run to be wrapped in a single gate."""

    __slots__ = ("body", "start", "end", "stores")

    def __init__(self, body, start, end, stores):
        self.body = body
        self.start = start
        self.end = end
        #: The uncovered store calls this region exists to cover.
        self.stores = stores

    @property
    def statements(self):
        """The statements the region spans, in order."""
        return self.body[self.start:self.end + 1]

    @property
    def first(self):
        """The region's first statement (the open-gate anchor)."""
        return self.body[self.start]

    @property
    def last(self):
        """The region's last statement (the close-gate anchor)."""
        return self.body[self.end]

    def returns(self):
        """``return`` statements inside the region (region exits that
        need their own close), shallowest scope only."""
        found = []
        stack = list(self.statements)
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_NODES):
                continue
            if isinstance(node, ast.Return):
                found.append(node)
                continue
            stack.extend(ast.iter_child_nodes(node))
        found.sort(key=lambda node: (node.lineno, node.col_offset))
        return found

    def __repr__(self):
        return "Region(%d..%d, %d store(s))" % (
            self.start, self.end, len(self.stores))


class _FunctionIndex:
    """Statement chains and node ownership for one function body.

    ``chains`` maps ``id(stmt)`` to its path from the function body as
    ``((body, index), ...)`` pairs; ``owners`` maps every AST node to
    the deepest statement containing it; ``loop_bodies`` / ``parents``
    support the hoisting rule.
    """

    def __init__(self, func):
        self.chains = {}
        self.owners = {}
        self.loop_bodies = set()
        self.parents = {}
        self._visit(func.body, ())

    def _visit(self, body, prefix):
        for index, stmt in enumerate(body):
            chain = prefix + ((body, index),)
            self.chains[id(stmt)] = chain
            for node in ast.walk(stmt):
                # Later (deeper) visits overwrite: deepest owner wins.
                self.owners[id(node)] = stmt
            if isinstance(stmt, ast.If):
                children = [stmt.body, stmt.orelse]
            elif isinstance(stmt, _LOOPS):
                children = [stmt.body, stmt.orelse]
                self.loop_bodies.add(id(stmt.body))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                children = [stmt.body]
            elif isinstance(stmt, ast.Try):
                children = [stmt.body, stmt.orelse, stmt.finalbody]
                children.extend(handler.body for handler in stmt.handlers)
            else:
                continue
            for child in children:
                if child:
                    self.parents[id(child)] = chain
                    self._visit(child, chain)


def _contains_close(stmt):
    """True if any call in ``stmt`` closes gates (would cancel an open
    inserted above it)."""
    return any(isinstance(node, ast.Call) and _gate_delta(node) == "close"
               for node in ast.walk(stmt))


def _lca_level(chains):
    """Deepest chain position at which every chain shares one body."""
    level = 0
    while True:
        probe = level + 1
        if not all(len(chain) > probe for chain in chains):
            return level
        body = chains[0][probe][0]
        if not all(chain[probe][0] is body for chain in chains):
            return level
        level = probe


def plan_regions(func, per_store=False):
    """Plan gate regions for ``func``; ``(regions, unplaced, cfg)``.

    ``unplaced`` holds store calls with no owning body statement
    (defaults, decorators) that no line edit can gate.
    """
    calls, cfg = uncovered_stores(func)
    if not calls:
        return [], [], cfg
    index = _FunctionIndex(func)
    owned = []
    unplaced = []
    for call in calls:
        stmt = index.owners.get(id(call))
        if stmt is None or id(stmt) not in index.chains:
            unplaced.append(call)
        else:
            owned.append((call, stmt))
    if not owned:
        return [], unplaced, cfg

    if per_store:
        regions = []
        by_stmt = {}
        for call, stmt in owned:
            by_stmt.setdefault(id(stmt), (stmt, []))[1].append(call)
        for stmt, stmt_calls in by_stmt.values():
            body, position = index.chains[id(stmt)][-1]
            regions.append(Region(body, position, position, stmt_calls))
        regions.sort(key=lambda region: region.first.lineno)
        return regions, unplaced, cfg

    chains = [index.chains[id(stmt)] for _call, stmt in owned]
    level = _lca_level(chains)
    body = chains[0][level][0]
    rep_calls = {}
    for (call, _stmt), chain in zip(owned, chains):
        rep_calls.setdefault(chain[level][1], []).append(call)

    # Hoist: a region inside a loop body becomes the loop statement in
    # the enclosing body — one gate pair for all iterations.
    while id(body) in index.loop_bodies:
        merged = [call for calls_ in rep_calls.values() for call in calls_]
        body, position = index.parents[id(body)][-1]
        rep_calls = {position: merged}

    positions = sorted(rep_calls)
    start, end = positions[0], positions[-1]

    # Split the span at close-bearing statements between the stores.
    regions = []
    run_start = None
    for position in range(start, end + 1):
        if position not in rep_calls and _contains_close(body[position]):
            if run_start is not None:
                regions.append((run_start, position - 1))
                run_start = None
        elif run_start is None:
            run_start = position
    if run_start is not None:
        regions.append((run_start, end))

    planned = []
    for run_start, run_end in regions:
        run_calls = [call for position, calls_ in rep_calls.items()
                     if run_start <= position <= run_end
                     for call in calls_]
        if run_calls:
            planned.append(Region(body, run_start, run_end, run_calls))
    return planned, unplaced, cfg


def _event_block_map(cfg):
    """``id(node) -> block`` for every event node and sub-expression
    (first occurrence wins, so ``with`` nodes map to their entry)."""
    blocks = {}
    for block in cfg.blocks:
        for kind, node in block.events:
            blocks.setdefault(id(node), block)
            for sub in ast.walk(node):
                blocks.setdefault(id(sub), block)
    return blocks


def _anchor_node(stmt):
    """The CFG event node evaluated first when ``stmt`` starts."""
    if isinstance(stmt, (ast.If, ast.While)):
        return stmt.test
    if isinstance(stmt, ast.Try):
        return _anchor_node(stmt.body[0]) if stmt.body else stmt
    return stmt


def regions_dominated(cfg, regions):
    """True when each region's first statement dominates its stores —
    the must-analysis guarantee an open gate inserted above the region
    covers every store on every path."""
    blocks = _event_block_map(cfg)
    dom = dominators(cfg)
    for region in regions:
        anchor = blocks.get(id(_anchor_node(region.first)))
        if anchor is None:
            return False
        for call in region.stores:
            store_block = blocks.get(id(call))
            if store_block is None or anchor not in dom.get(store_block, ()):
                return False
    return True


def fallthrough_close_covers(cfg, region):
    """True when the close site after the region's last statement
    post-dominates every store — no in-region ``return`` needs its own
    close."""
    if region.returns():
        return False
    last = region.last
    if not isinstance(last, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                             ast.Expr, ast.Pass, ast.Assert, ast.Delete)):
        # Compound tail: the close lands in a join block the node map
        # cannot name; the (empty) returns scan already proved every
        # path falls through to it.
        return True
    blocks = _event_block_map(cfg)
    pdom = postdominators(cfg)
    close_block = blocks.get(id(last))
    if close_block is None:
        return True
    return all(
        close_block in pdom.get(blocks.get(id(call)), ())
        for call in region.stores
        if blocks.get(id(call)) is not None)


def plan_function(func, per_store=False):
    """Verified gate plan for one function: ``(regions, unplaced, cfg)``.

    Merged plans whose dominance check fails (a store the merged anchor
    does not dominate, e.g. unreachable code) are demoted to per-store
    placement, which is trivially dominated.
    """
    regions, unplaced, cfg = plan_regions(func, per_store=per_store)
    if not per_store and regions and not regions_dominated(cfg, regions):
        regions, unplaced, cfg = plan_regions(func, per_store=True)
    return regions, unplaced, cfg
