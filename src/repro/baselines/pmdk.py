"""The PMDK-style hand-crafted undo-WAL backend (paper §2, Fig 2b).

Models ``libpmemobj``-style transactions: before the first store to each
cache line inside a transaction, the line's old contents are appended to
an undo WAL with a non-temporal store and ordered with SFENCE
(``TX_ADD``); structure stores then proceed in place through the caches.
Commit flushes every dirtied line (CLWB), fences, and publishes the
transaction id with one atomic store. Every ``put``/``remove`` is one
transaction — exactly the cost structure the paper attributes to WAL
schemes: *multiple ordering stalls per logical operation*.

Crash recovery replays the undo WAL for any transaction newer than the
commit cell, restoring the pre-transaction image.
"""

from repro.baselines.base import StructureBackend
from repro.baselines.wal import DurableCells, Wal, WalLayout
from repro.errors import LogError
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HEAP_PHYS_BASE, HostMachine
from repro.mem.accessor import MemoryAccessor
from repro.pm.flush import FlushModel
from repro.util.bitops import split_lines
from repro.util.constants import CACHE_LINE_SIZE


class UndoTxAccessor(MemoryAccessor):
    """Interposes on stores: first touch of a line logs its old value.

    This is the hand-instrumented code path PMDK requires — the thing the
    paper's black-box property removes.
    """

    def __init__(self, inner, wal, space):
        self._inner = inner
        self._wal = wal
        self._space = space
        self._tx_id = None
        self._logged = set()
        self._dirty = set()
        #: Optional tracer told about transaction boundaries.
        self.tracer = None

    # -- transaction control ------------------------------------------------

    def begin(self, tx_id):
        """Open transaction ``tx_id``; clears the per-tx line sets."""
        if self._tx_id is not None:
            raise LogError("nested transactions are not supported")
        self._tx_id = tx_id
        self._logged.clear()
        self._dirty.clear()
        if self.tracer is not None:
            self.tracer.on_tx_begin(tx_id)

    @property
    def in_tx(self):
        """True while a transaction is open."""
        return self._tx_id is not None

    @property
    def dirty_lines(self):
        """Structure-space line addresses dirtied by the open tx."""
        return sorted(self._dirty)

    def end(self):
        """Close the transaction (commit bookkeeping is the caller's)."""
        self._tx_id = None
        self._logged.clear()
        self._dirty.clear()
        if self.tracer is not None:
            self.tracer.on_tx_end()

    # -- data path -----------------------------------------------------------

    def read(self, addr, length):
        return self._inner.read(addr, length)

    def write(self, addr, data):
        data = bytes(data)
        if self._tx_id is not None:
            for line, _off, _len in split_lines(addr, len(data)):
                if line not in self._logged:
                    # TX_ADD: snapshot the old line straight from PM —
                    # reading via the caches could see this transaction's
                    # own earlier (uncommitted) stores... which is fine
                    # within a tx, but the durable pre-image must be the
                    # pre-tx PM state, so we read the medium.
                    old = self._space.read(HEAP_PHYS_BASE + line,
                                           CACHE_LINE_SIZE)
                    self._wal.append(self._tx_id, line, old, fence=True)
                    self._logged.add(line)
                self._dirty.add(line)
        self._inner.write(addr, data)


class PmdkBackend(StructureBackend):
    """Hand-crafted synchronous undo-WAL hash table on PM."""

    name = "pmdk"
    crash_consistent = True

    def __init__(self, heap_size=64 * 1024 * 1024, wal_size=None,
                 capacity=1024, **machine_kwargs):
        super().__init__()
        self._machine = HostMachine(media="pm", heap_size=heap_size,
                                    **machine_kwargs)
        if wal_size is None:
            # Default: an eighth of the heap, capped at 4 MiB.
            wal_size = min(4 * 1024 * 1024, heap_size // 8)
        self._layout = WalLayout(heap_size, wal_size)
        self._flush = FlushModel(self._machine.clock, self._machine.latency)
        self._cells = DurableCells(self._machine, self._layout)
        self._wal = Wal(self._machine, self._layout, self._flush)
        self._tx = UndoTxAccessor(self._machine.mem(), self._wal,
                                  self._machine.space)
        self._next_tx = self._cells.committed_tx + 1
        self._gate_commits = 0
        self._capacity = capacity
        if self._cells.root == 0:
            self._alloc = PmAllocator.create(self._tx, self._layout.arena_limit)
            self._bind_structure(self._tx, self._alloc, capacity=capacity)
            # Make the initialized empty structure durable before
            # publishing its root.
            self._commit_lines(self._collect_all_dirty())
            self._cells.root = self._map.root
            self._flush.sfence()
        else:
            self._alloc = PmAllocator.attach(self._tx)
            self._reattach_structure(self._tx, self._alloc, self._cells.root)

    @property
    def machine(self):
        return self._machine

    def attach_tracer(self, tracer):
        """Wire a sanitizer/tracer into the machine, WAL, and accessor."""
        self._machine.attach_tracer(tracer)
        self._flush.tracer = tracer
        self._wal.tracer = tracer
        self._cells.tracer = tracer
        self._tx.tracer = tracer
        tracer.on_backend_attach(self, self._layout)

    # -- transactions -----------------------------------------------------------

    def _collect_all_dirty(self):
        return self._machine.hierarchy.dirty_lines()

    def _commit_lines(self, phys_lines):
        """CLWB every dirtied line, fence, publish the tx id, fence."""
        for line in phys_lines:
            self._flush.clwb(line, CACHE_LINE_SIZE)
            self._machine.hierarchy.writeback_line(line)
        self._flush.sfence()
        self._cells.committed_tx = self._next_tx
        self._flush.sfence()
        self._next_tx += 1
        self._wal.reset()
        self._gate_commits += 1

    def _run_tx(self, operation):
        self._tx.begin(self._next_tx)
        try:
            result = operation()
            dirty = self._tx.dirty_lines
        finally:
            self._tx.end()
        self._commit_lines([HEAP_PHYS_BASE + line for line in dirty])
        return result

    def put(self, key, value):
        self._c_puts.value += 1
        return self._run_tx(lambda: self._map.put(key, value))

    def remove(self, key):
        self._c_removes.value += 1
        return self._run_tx(lambda: self._map.remove(key))

    def get(self, key, default=None):
        self._c_gets.value += 1
        return self._map.get(key, default)

    def persist(self):
        """PMDK transactions are durable at commit; nothing extra to do."""

    # -- crash / recovery -----------------------------------------------------------

    def restart(self):
        """Reboot, roll back any uncommitted transaction, re-attach."""
        self._machine.restart()
        committed = self._cells.committed_tx
        to_undo = [entry for entry in self._wal.scan()
                   if entry.epoch > committed]
        for entry in reversed(to_undo):
            data = entry.data.ljust(CACHE_LINE_SIZE, b"\x00")
            self._machine.space.write(HEAP_PHYS_BASE + entry.addr, data)
        self._wal.reset()
        self._next_tx = committed + 1
        self._alloc = PmAllocator.attach(self._tx)
        self._reattach_structure(self._tx, self._alloc, self._cells.root)
        return len(to_undo)

    @property
    def gate_count(self):
        """Committed transactions (hand-written-gate accounting; the
        autopass backend reports the same counter for auto-placed gates)."""
        return self._gate_commits

    @property
    def sfence_count(self):
        """Ordering stalls so far — the paper's overhead argument in a number."""
        return self._flush.sfence_count

    @property
    def wal_bytes(self):
        """Bytes of undo log written (write-amplification accounting)."""
        return self._wal.stats.get("bytes")
