"""Trace container format: round-trips, damage detection, determinism."""

import struct

import pytest

from repro.errors import TraceFormatError
from repro.perfbench import build_backend
from repro.replay import (TRACE_MAGIC, TRACE_VERSION, Trace,
                          load_trace, load_trace_bytes, record)
from repro.replay import _np
from repro.replay import format as fmt
from repro.sim.rng import DeterministicRng


def _sample_trace():
    """A small hand-built trace covering every payload situation."""
    kinds = [fmt.LOAD, fmt.STORE, fmt.SFENCE, fmt.WAL_APPEND, fmt.MARK]
    aux = [0, 1, 0, 2 * 7 + 1, fmt.MARK_TIMED]
    addrs = [64, 128, 0, 4096, 0]
    sizes = [8, 4, 0, 3, 5]
    payload = b"\xde\xad\xbe\xef" + b"log" + b"timed"
    footer = {"backend": "pax", "sim_ns_end": 123.5, "meta": {"seed": 7}}
    return Trace(kinds, aux, addrs, sizes, payload, footer)


def _recorded_bytes(seed=3):
    backend = build_backend("pax")

    def drive(live, recorder):
        rng = DeterministicRng(seed)
        for i in range(16):
            live.put(i, i * 3)
        recorder.mark(fmt.MARK_TIMED)
        for i in range(64):
            key = rng.randint(0, 15)
            if i & 1:
                live.put(key, i)
            else:
                live.get(key)

    return record(backend, drive, meta={"seed": seed}).to_bytes()


class TestRoundTrip:
    def test_to_bytes_load_bytes_round_trip(self):
        trace = _sample_trace()
        back = load_trace_bytes(trace.to_bytes())
        assert list(back.kinds) == trace.kinds
        assert list(back.aux) == trace.aux
        assert list(back.addrs) == trace.addrs
        assert list(back.sizes) == trace.sizes
        assert back.payload == trace.payload
        assert back.footer == trace.footer

    def test_save_load_round_trip(self, tmp_path):
        trace = _sample_trace()
        path = str(tmp_path / "t.trace")
        size = trace.save(path)
        assert size == len(trace.to_bytes())
        back = load_trace(path)
        assert list(back.kinds) == trace.kinds
        assert back.footer == trace.footer

    def test_payload_slices_align_with_kinds(self):
        trace = _sample_trace()
        slices = trace.payload_slices()
        assert slices == [None, b"\xde\xad\xbe\xef", None, b"log",
                          b"timed"]

    def test_events_iteration(self):
        trace = _sample_trace()
        events = list(trace.events())
        assert len(events) == len(trace)
        kind, aux, addr, size, payload = events[1]
        assert (kind, aux, addr, size) == (fmt.STORE, 1, 128, 4)
        assert payload == b"\xde\xad\xbe\xef"


class TestDamage:
    def test_short_blob_rejected(self):
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace_bytes(b"RPXT")

    def test_truncated_body_rejected(self):
        blob = _sample_trace().to_bytes()
        with pytest.raises(TraceFormatError, match="truncated or padded"):
            load_trace_bytes(blob[:-8])

    def test_padded_body_rejected(self):
        blob = _sample_trace().to_bytes()
        with pytest.raises(TraceFormatError, match="truncated or padded"):
            load_trace_bytes(blob + b"\x00" * 4)

    def test_foreign_magic_rejected(self):
        blob = bytearray(_sample_trace().to_bytes())
        blob[:8] = b"NOTTRACE"
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace_bytes(bytes(blob))

    def test_unknown_version_rejected(self):
        blob = bytearray(_sample_trace().to_bytes())
        # Version is the u16 right after the 8-byte magic; CRC must be
        # recomputed or the checksum check would fire first.
        struct.pack_into("<H", blob, 8, TRACE_VERSION + 1)
        import zlib
        struct.pack_into("<I", blob, len(blob) - 4,
                         zlib.crc32(bytes(blob[:-4])) & 0xFFFFFFFF)
        with pytest.raises(TraceFormatError, match="version"):
            load_trace_bytes(bytes(blob))

    def test_bitflip_detected_by_checksum(self):
        blob = bytearray(_sample_trace().to_bytes())
        blob[fmt._HEADER.size + 1] ^= 0x40
        with pytest.raises(TraceFormatError, match="checksum"):
            load_trace_bytes(bytes(blob))

    def test_unreadable_path_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_trace(str(tmp_path / "missing.trace"))

    def test_magic_and_version_exported(self):
        assert TRACE_MAGIC == b"RPXTRACE"
        assert TRACE_VERSION == 1


class TestDeterminism:
    def test_recording_is_deterministic(self):
        # Two recordings of the same seeded drive on fresh backends must
        # serialize byte-identically — the property that makes committed
        # traces and trace caching sound.
        assert _recorded_bytes() == _recorded_bytes()

    def test_different_seed_changes_bytes(self):
        assert _recorded_bytes(seed=3) != _recorded_bytes(seed=4)


class TestNumpyFallback:
    def test_fallback_decode_matches(self):
        # The pure-python decode path must agree with whatever the
        # autodetected path produces (numpy when installed).
        blob = _recorded_bytes()
        auto = load_trace_bytes(blob)
        fallback = load_trace_bytes(blob, use_numpy=False)
        assert list(auto.kinds) == list(fallback.kinds)
        assert list(auto.aux) == list(fallback.aux)
        assert list(auto.addrs) == list(fallback.addrs)
        assert list(auto.sizes) == list(fallback.sizes)
        assert auto.payload == fallback.payload
        assert auto.footer == fallback.footer

    @pytest.mark.skipif(not _np.HAVE_NUMPY, reason="numpy not installed")
    def test_numpy_decode_matches_fallback(self):
        blob = _recorded_bytes()
        vec = load_trace_bytes(blob, use_numpy=True)
        ref = load_trace_bytes(blob, use_numpy=False)
        assert list(vec.kinds) == list(ref.kinds)
        assert list(vec.aux) == list(ref.aux)
        assert list(vec.addrs) == list(ref.addrs)
        assert list(vec.sizes) == list(ref.sizes)

    def test_column_codec_round_trip(self):
        values = [0, 1, 255, 2 ** 32 - 1, 2 ** 63]
        blob = _np.encode_column("Q", values)
        assert _np.decode_column("Q", blob, use_numpy=False) == values
        if _np.HAVE_NUMPY:
            assert _np.decode_column("Q", blob, use_numpy=True) == values
