#!/usr/bin/env python3
"""Write amplification: line-granularity vs page-granularity logging.

Reproduces the paper's §1 argument in one run: mutate scattered 8-byte
fields and compare how many bytes each scheme's log writes per byte the
application logically changed. Then shows paging's redemption case
(sequential keys, §5.1 "Combining with Paging").
"""

from repro.analysis.report import Table
from repro.analysis.writeamp import measure_write_amp
from repro.baselines import make_backend

OPS = 600
RECORDS = 3000


def build(name):
    kwargs = dict(heap_size=8 * 1024 * 1024, capacity=1024)
    if name == "pax":
        kwargs = dict(pool_size=8 * 1024 * 1024, log_size=1024 * 1024,
                      capacity=1024)
    return make_backend(name, **kwargs)


def main():
    for distribution, label in (("uniform", "scattered 8 B updates"),
                                ("sequential", "clustered updates")):
        table = Table("log write amplification: %s" % label,
                      ["scheme", "log bytes/op", "log bytes per app byte"])
        for name in ("pax", "pmdk", "mprotect"):
            report = measure_write_amp(build(name), op_count=OPS,
                                       record_count=RECORDS,
                                       distribution=distribution,
                                       group_size=64)
            table.add_row(name, report.log_bytes / report.ops,
                          report.log_amplification)
        table.show()
    print()
    print("PAX logs one 96 B record per modified 64 B line per epoch;")
    print("the page-fault scheme logs a 4 KiB pre-image per touched page.")
    print("Scattered updates make that a ~30-60x difference; clustered")
    print("updates amortize the page log (the paper's hybrid motivation).")


if __name__ == "__main__":
    main()
