"""The PAX device (paper §3, Figure 1).

Homes the vPM physical range. Servicing:

* ``RdShared`` — proxy the line from (newest first) the write-back buffer,
  the HBM cache, or PM; grant S.
* ``RdOwn`` — the host announces an impending store. Capture the line's
  PM contents as an undo record (asynchronously durable), invalidate our
  HBM copy (the host will hold the only current version), return data if
  the host needs it, and ack immediately — the host never waits on
  logging.
* ``DirtyEvict`` — buffer the modified line; PM write-back is gated on the
  line's undo record durability.
* ``persist()`` — the §3.3 group commit: snoop every line logged this
  epoch out of host caches (device-to-host SnpData), pump the undo log to
  durability, drain the write-back buffer to PM, then atomically bump the
  epoch cell. Returns the host-visible latency so the machine can charge
  the calling thread.

Background work (log drain, gated write-back) runs off the simulated
clock: the machine registers :meth:`background_tick` as a clock callback,
so device-side asynchrony advances whenever host time does.
"""

from repro.cache.mechanisms import make_mechanisms
from repro.core.config import PaxConfig
from repro.core.epochs import EpochManager
from repro.core.hbm import HbmCache
from repro.core.undo import UndoLogger
from repro.core.writeback import WriteBackCoordinator
from repro.cxl import messages as msg
from repro.errors import AddressError, ProtocolError
from repro.pm.log import UndoLogRegion
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.stats import StatGroup


class PaxDevice:
    """A persistence accelerator homing one pool's vPM range."""

    def __init__(self, pool, latency_model, config=None, vpm_base=None):
        self.pool = pool
        self.config = (config or PaxConfig()).validate()
        self._lat = latency_model
        #: Physical base address the pool's data region is exposed at.
        self.vpm_base = vpm_base if vpm_base is not None else pool.data_base
        self.region = UndoLogRegion(pool.device, pool.log_base, pool.log_size)
        self.epochs = EpochManager(pool, self.region)
        self.undo = UndoLogger(self.region, self.config,
                               self.epochs.current_epoch)
        self.hbm = HbmCache(self.config.hbm_lines)
        #: Miss-path mechanism stack between the HBM cache and PM media
        #: (None = pre-zoo read path). See :mod:`repro.cache.mechanisms`.
        self.mech = make_mechanisms(self.config.mechanisms,
                                    self.config.mechanism_policy,
                                    label_prefix="dev.mech")
        if self.mech is not None:
            # HBM LRU victims fall into the side buffers instead of
            # vanishing (guarded: never capture a host-modified line).
            self.hbm.on_evict = self._mech_capture
        self.writeback = WriteBackCoordinator(pool, self.hbm, self.undo,
                                              self.config)
        from repro.core.pipeline import PersistPipeline
        self.pipeline = PersistPipeline(self)
        # background_tick fires on every clock advance; bind its three
        # targets once (the logger/coordinator/pipeline live as long as
        # the device).
        self._undo_drain = self.undo.drain_budget
        self._wb_drain = self.writeback.drain_budget
        self._pipeline_poll = self.pipeline.poll
        self.stats = StatGroup("pax_device")
        # Per-message counters bound once (hot-path-stat-lookup rule).
        stats = self.stats
        self._c_rd_shared = stats.counter("rd_shared")
        self._c_rd_own = stats.counter("rd_own")
        self._c_dirty_evicts = stats.counter("dirty_evicts")
        self._c_clean_evicts = stats.counter("clean_evicts")
        self._c_mem_rd = stats.counter("mem_rd")
        self._c_mem_wr = stats.counter("mem_wr")
        self._c_lines_logged = stats.counter("lines_logged")
        self._c_stalled_evicts = stats.counter("stalled_evicts")
        self._c_buffer_serves = stats.counter("buffer_serves")
        self._c_pm_line_reads = stats.counter("pm_line_reads")
        self._c_mech_hits = stats.counter("mech_hits")
        self._c_mech_prefetch_reads = stats.counter("mech_prefetch_reads")
        # Exact-type dispatch table: cheaper than an isinstance chain,
        # and the message classes are final by design.
        self._handlers = {
            msg.RdShared: self._rd_shared,
            msg.RdOwn: self._rd_own,
            msg.DirtyEvict: self._dirty_evict,
            msg.CleanEvict: self._clean_evict,
            msg.MemRd: self._mem_rd,
            msg.MemWr: self._mem_wr,
        }

    # -- address translation ---------------------------------------------------

    def to_pool(self, phys_addr):
        """Translate a vPM physical address to a pool-relative offset."""
        offset = phys_addr - self.vpm_base + self.pool.data_base
        if not self.pool.contains_data(offset, CACHE_LINE_SIZE):
            raise AddressError(
                "physical 0x%x is outside this device's vPM range" % phys_addr)
        return offset

    def to_phys(self, pool_addr):
        """Translate a pool-relative offset back to a vPM physical address."""
        return pool_addr - self.pool.data_base + self.vpm_base

    @property
    def vpm_size(self):
        """Bytes of vPM exposed (the pool data region)."""
        return self.pool.data_size

    # -- message handling ---------------------------------------------------------

    def handle_message(self, message):
        """Service one host request; returns ``(response, service_ns)``."""
        handler = self._handlers.get(type(message))
        if handler is None:
            raise ProtocolError("PAX cannot handle %r" % (message,))
        return handler(message)

    def _clean_evict(self, message):
        self._c_clean_evicts.add(1)
        return msg.Go(message.addr), self.config.device_processing_ns

    # -- CXL.mem mode (paper §6: less coherence visibility) -----------------

    def _mem_rd(self, message):
        """CXL.mem read: plain data, no coherence state granted."""
        pool_addr = self.to_pool(message.addr)
        data, media_ns = self._lookup_line(pool_addr)
        self.hbm.put(pool_addr, data)
        self._c_mem_rd.add(1)
        service = self.config.device_processing_ns + media_ns
        return msg.DataResponse(message.addr, data, "S"), service

    def _mem_wr(self, message):
        """CXL.mem write: the device's *only* interposition point.

        Without coherence visibility there is no RdOwn to log at, so the
        pre-image is captured here, at write-back time — the first write
        of a line per epoch still records the epoch-start PM value (any
        earlier PM write of the line this epoch would itself have logged
        first, and dedup keeps the original record).
        """
        pool_addr = self.to_pool(message.addr)
        self._c_mem_wr.add(1)
        if self.mech is not None:
            # The write supersedes whatever clean copy a side buffer
            # holds (there is no RdOwn in .mem mode to catch this at).
            self.mech.invalidate(pool_addr)
        if self.undo.seq_for(pool_addr) is None:
            old = self.pool.device.read(pool_addr, CACHE_LINE_SIZE)
            self.undo.note_modification(pool_addr, old)
            self._c_lines_logged.add(1)
        seq = self.undo.seq_for(pool_addr)
        pumped = self.writeback.buffer_line(pool_addr, message.data, seq)
        service = self.config.device_processing_ns
        if pumped:
            service += pumped * 1e9 / self.config.log_drain_bps
            self._c_stalled_evicts.add(1)
        return msg.Go(message.addr), service

    def persist_mem(self, clock=None):
        """CXL.mem persist: the host has already CLWB'd its dirty lines
        (no device-to-host snoops exist to pull them); drain and commit.
        """
        total_ns = 0.0

        def charge(step_ns):
            nonlocal total_ns
            total_ns += step_ns
            if clock is not None:
                clock.advance(step_ns)

        charge(self.pipeline.complete_all())
        touched = self.undo.touched_lines()
        pumped_bytes, lines_written = self.writeback.flush_all()
        charge(pumped_bytes * 1e9 / self.config.log_drain_bps)
        charge(lines_written * self._lat.media.pm_write_ns)
        self.epochs.commit(len(touched))
        self.undo.begin_epoch(self.epochs.current_epoch)
        charge(self._lat.media.pm_write_ns)
        self.stats.counter("persists").add(1)
        self.stats.histogram("persist_ns").record(total_ns)
        return total_ns

    def _lookup_line(self, pool_addr):
        """Newest device-visible value: buffer > HBM > mech > PM.

        Returns ``(data, ns)``. The mechanism stack sits between the HBM
        cache and the PM media; a hit there costs HBM latency (on-device
        SRAM/HBM side buffers), a miss falls through to the media read
        and feeds the demand fill back to the mechanisms.
        """
        data = self.writeback.peek(pool_addr)
        if data is not None:
            self._c_buffer_serves.add(1)
            return data, 0.0
        data = self.hbm.get(pool_addr)
        if data is not None:
            return data, self._lat.media.hbm_ns
        mech = self.mech
        if mech is not None:
            data = mech.probe(pool_addr, self._mech_fetch)
            if data is not None:
                self._c_mech_hits.value += 1
                return data, self._lat.media.hbm_ns
        data = self.pool.device.read(pool_addr, CACHE_LINE_SIZE)
        self._c_pm_line_reads.add(1)
        if mech is not None:
            mech.on_demand_fill(pool_addr, data, self._mech_fetch)
        return data, self._lat.media.pm_read_ns

    def _mech_fetch(self, pool_addr):
        """Guarded background PM read for mechanism prefetches.

        Refuses lines outside the pool's data region, lines the host has
        modified this epoch (their PM copy is the stale pre-image), and
        lines already mirrored in buffer or HBM (pure pollution). The
        media latency is hidden — an overlapped background read.
        """
        if not self.pool.contains_data(pool_addr, CACHE_LINE_SIZE):
            return None
        if self.undo.seq_for(pool_addr) is not None:
            return None
        if self.writeback.peek(pool_addr) is not None:
            return None
        if self.hbm.peek(pool_addr) is not None:
            return None
        data = self.pool.device.read(pool_addr, CACHE_LINE_SIZE)
        self._c_mech_prefetch_reads.value += 1
        return data

    def _mech_capture(self, pool_addr, data):
        """HBM eviction hook: drop clean victims into the side buffers.

        Guarded like :meth:`_mech_fetch`: a victim whose line the host
        has modified this epoch (or that the write-back buffer holds a
        newer copy of) would go stale with no invalidation message, so
        it is dropped instead of captured.
        """
        if self.undo.seq_for(pool_addr) is not None:
            return
        if self.writeback.peek(pool_addr) is not None:
            return
        self.mech.on_evict(pool_addr, data)

    def _rd_shared(self, message):
        pool_addr = self.to_pool(message.addr)
        data, media_ns = self._lookup_line(pool_addr)
        self.hbm.put(pool_addr, data)
        self._c_rd_shared.add(1)
        service = self.config.device_processing_ns + media_ns
        return msg.DataResponse(message.addr, data, "S"), service

    def _rd_own(self, message):
        pool_addr = self.to_pool(message.addr)
        self._c_rd_own.add(1)
        # Undo-log the epoch-start value: the newest *device-visible*
        # value. With blocking persists that always equals the PM copy;
        # with pipelined persists (core.pipeline) the previous epoch's
        # value may still sit in the write-back buffer, and it — not the
        # stale PM bytes — is what rollback must restore.
        if self.undo.seq_for(pool_addr) is None:
            old = self.writeback.peek(pool_addr)
            if old is None:
                old = self.hbm.peek(pool_addr)
            if old is None:
                old = self.pool.device.read(pool_addr, CACHE_LINE_SIZE)
            self.undo.note_modification(pool_addr, old)
            self._c_lines_logged.add(1)
        service = self.config.device_processing_ns
        if message.need_data:
            data, media_ns = self._lookup_line(pool_addr)
            service += media_ns
        else:
            data = None
        # The host will hold the only up-to-date copy; our HBM mirror is
        # about to go stale — and so is any side-buffer copy.
        self.hbm.invalidate(pool_addr)
        if self.mech is not None:
            self.mech.invalidate(pool_addr)
        if data is not None:
            return msg.DataResponse(message.addr, data, "M"), service
        return msg.Go(message.addr, "M"), service

    def _dirty_evict(self, message):
        pool_addr = self.to_pool(message.addr)
        seq = self.undo.seq_for(pool_addr)
        if seq is None:
            # Invariant: a dirty vPM line implies a RdOwn (and thus a log
            # record) earlier in this same epoch — persist() downgrades
            # every modified line before committing.
            raise ProtocolError(
                "dirty eviction of 0x%x, but the line was never logged "
                "this epoch" % message.addr)
        pumped = self.writeback.buffer_line(pool_addr, message.data, seq)
        self._c_dirty_evicts.add(1)
        service = self.config.device_processing_ns
        if pumped:
            # A forced log pump stalls the eviction path synchronously.
            service += pumped * 1e9 / self.config.log_drain_bps
            self._c_stalled_evicts.add(1)
        return msg.Go(message.addr), service

    # -- persist: the group commit (paper §3.3) ------------------------------------

    def persist(self, snoop_port, clock=None):
        """Commit a crash-consistent snapshot; returns host-blocking ns.

        ``snoop_port`` is a :class:`~repro.cxl.port.HostSnoopPort` bound to
        the host hierarchy. The application must guarantee no thread is
        mutating the structure during the call (paper §3.5).

        When ``clock`` is given, time is charged *as the steps happen* —
        the snoops are sequential round trips, so link backlog drains
        between them and background device work overlaps the commit —
        and the caller must not advance the clock again.
        """
        total_ns = 0.0

        def charge(step_ns):
            nonlocal total_ns
            total_ns += step_ns
            if clock is not None:
                clock.advance(step_ns)

        # A blocking persist is a barrier: retire any pipelined epochs
        # first so the epoch sequence stays strictly ordered.
        charge(self.pipeline.complete_all())
        touched = self.undo.touched_lines()
        # 1. Pull every possibly-modified line out of host caches.
        for pool_addr in touched:
            fresh, link_ns = snoop_port.snoop_shared(self.to_phys(pool_addr))
            charge(link_ns)
            if fresh is not None:
                seq = self.undo.seq_for(pool_addr)
                self.writeback.buffer_line(pool_addr, fresh, seq)
        # 2+3. Make every undo record durable, then write all buffered
        # lines to PM (flush_all enforces that order internally).
        pumped_bytes, lines_written = self.writeback.flush_all()
        charge(pumped_bytes * 1e9 / self.config.log_drain_bps)
        charge(lines_written * self._lat.media.pm_write_ns)
        # 4. Atomic epoch publish.
        self.epochs.commit(len(touched))
        self.undo.begin_epoch(self.epochs.current_epoch)
        charge(self._lat.media.pm_write_ns)
        self.stats.counter("persists").add(1)
        self.stats.histogram("persist_ns").record(total_ns)
        return total_ns

    def persist_async(self, snoop_port, clock=None):
        """Pipelined persist (paper §6 extension; see core.pipeline).

        Blocks the host only for the snoop phase and returns the
        in-flight epoch handle plus the blocking ns; the commit completes
        in the background. ``handle.committed`` flips once durable.
        """
        flight, blocking_ns = self.pipeline.begin(snoop_port, clock=clock)
        self.pipeline.poll()
        self.stats.counter("persist_asyncs").add(1)
        return flight, blocking_ns

    # -- background asynchrony ---------------------------------------------------

    def background_tick(self, prev_ns, now_ns):
        """Clock callback: drain log records and ready write-backs.

        This fires on *every* clock advance — i.e. once per cache access —
        so it goes through locally bound references.
        """
        delta_s = (now_ns - prev_ns) / 1e9
        config = self.config
        # Credit always accrues (a later burst may spend it), but the
        # drain loops and the pipeline scan only run when there is work:
        # in steady state the pending tail and flight list are empty and
        # this callback is three float adds and three truth tests.
        undo = self.undo
        undo._drain_credit += config.log_drain_bps * delta_s
        if undo._pending:
            self._undo_drain(0.0)
        writeback = self.writeback
        writeback._drain_credit += config.writeback_drain_bps * delta_s
        if writeback._buffer:
            self._wb_drain(0.0)
        if self.pipeline._flights:
            self._pipeline_poll()

    # -- crash ---------------------------------------------------------------------

    def on_crash(self):
        """Lose all volatile device state (SRAM buffers, HBM, pending log)."""
        self.undo.on_crash()
        self.writeback.on_crash()
        self.hbm.clear()
        if self.mech is not None:
            self.mech.clear()
        self.pipeline.on_crash()
        self.stats.counter("crashes").add(1)

    def __repr__(self):
        return "PaxDevice(epoch=%d, hbm=%d lines)" % (
            self.epochs.current_epoch, len(self.hbm))
