"""Epoch lifecycle: numbering, commit, and per-epoch statistics.

An epoch is the interval between two ``persist()`` calls. The recovered
state of a pool is always the snapshot of the highest *committed* epoch;
the epoch in progress is always ``committed + 1``. Committing is a single
atomic 8-byte write of the epoch number into the pool superblock, after
which the undo log's contents are dead and the region is rewound
(paper §3.3).
"""

from repro.errors import ProtocolError
from repro.util.stats import StatGroup


class EpochManager:
    """Tracks the open epoch and performs the atomic commit step."""

    def __init__(self, pool, region):
        self._pool = pool
        self._region = region
        self.current_epoch = pool.committed_epoch + 1
        self.stats = StatGroup("epochs")

    @property
    def committed_epoch(self):
        """The durable snapshot's epoch number."""
        return self._pool.committed_epoch

    def commit(self, lines_in_epoch):
        """Atomically publish the open epoch; open the next one.

        Callers must have already made every undo record durable and
        written every modified line of the epoch back to PM.
        """
        if self.current_epoch != self._pool.committed_epoch + 1:
            raise ProtocolError(
                "epoch sequence out of sync: open=%d committed=%d"
                % (self.current_epoch, self._pool.committed_epoch))
        self._pool.commit_epoch(self.current_epoch)
        # The log's records all belong to the epoch just committed (or
        # older); rewinding is safe and bounds log space at one epoch.
        self._region.reset()
        self.current_epoch += 1
        self.stats.counter("commits").add(1)
        self.stats.histogram("lines_per_epoch").record(lines_in_epoch)

    def resync_after_recovery(self):
        """Re-read the committed epoch after a crash + recovery."""
        self.current_epoch = self._pool.committed_epoch + 1
