"""Admission control: the bounded request queue with typed verdicts.

Backpressure is explicit and typed. A full queue rejects at the door
with :class:`~repro.errors.Overload`; a request the server only reaches
after its deadline is failed with :class:`~repro.errors.ServeTimeout`
instead of being served late (serving it would waste capacity on an
answer the client has already given up on — classic admission-control
doctrine). Clients translate both into deterministic backoff-and-retry
(:class:`~repro.serve.clients.RetryPolicy`).
"""

from collections import deque

from repro.errors import ConfigError, Overload, ServeTimeout


class AdmissionQueue:
    """Bounded FIFO of :class:`~repro.serve.clients.Request` objects."""

    def __init__(self, max_depth=64, timeout_ns=2_000_000.0):
        if max_depth < 1:
            raise ConfigError("admission queue depth must be at least 1")
        if timeout_ns <= 0:
            raise ConfigError("admission timeout must be positive")
        self.max_depth = max_depth
        self.timeout_ns = timeout_ns
        self._queue = deque()

    def __len__(self):
        return len(self._queue)

    @property
    def full(self):
        """True when the next :meth:`offer` would be rejected."""
        return len(self._queue) >= self.max_depth

    def offer(self, request, now_ns):
        """Admit ``request`` or return a typed :class:`Overload` verdict.

        Returns None on admission; the error object (never raised here —
        the harness attaches it to the completed request) on rejection.
        """
        if self.full:
            return Overload(
                "queue full (%d/%d) at %d ns; request c%d#%d rejected"
                % (len(self._queue), self.max_depth, now_ns,
                   request.client_id, request.seq))
        request.enqueued_ns = now_ns
        self._queue.append(request)
        return None

    def pop(self, now_ns):
        """Next request to serve, as ``(request, error)``.

        ``error`` is a :class:`ServeTimeout` when the head request's
        deadline passed while it queued — the caller must fail it and
        keep popping. ``(None, None)`` when the queue is empty.
        """
        if not self._queue:
            return None, None
        request = self._queue.popleft()
        waited = now_ns - request.enqueued_ns
        if waited > self.timeout_ns:
            return request, ServeTimeout(
                "request c%d#%d waited %.0f ns (> %.0f ns deadline)"
                % (request.client_id, request.seq, waited, self.timeout_ns))
        return request, None

    def drain(self):
        """Remove and return every queued request (crash replay path)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained
