"""Incremental summary cache for interprocedural staticcheck runs.

One JSON file per module under ``.staticcheck-cache/``, keyed by an
**environment hash**: the module's own content hash combined with the
environment hashes of every module it (transitively) imports. A module
is re-analyzed iff that hash changed — i.e. its own source changed, or
anything reachable through its import graph did; everything else loads
its findings, summaries, and persist-order candidate metadata straight
from the cache. Cyclic imports are handled by condensing the module
graph into SCCs first (members of an import cycle share one hash).

Only *imports-reachable* facts are cached: per-function summaries and
the candidate findings produced with them (inline deferral to callee
bodies, callee must-open gates). Caller-direction discharge rules
(mechanism/lifecycle/gated-context) are deliberately recomputed on
every run by ``interproc.py`` — a new caller in an unrelated module
must be able to change a cached module's verdict without touching its
hash.

The format/salt pair versions the store: any change to summary or
checker semantics bumps :data:`SALT` and the whole cache silently
misses (never a wrong hit).
"""

import hashlib
import json
import os

CACHE_FORMAT = 1

#: Bump when summary/checker semantics change; invalidates everything.
SALT = "staticcheck-interproc-v1"

DEFAULT_CACHE_DIR = ".staticcheck-cache"


def content_hash(source):
    """Salted content hash of one module's source text."""
    digest = hashlib.sha256()
    digest.update(SALT.encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def _module_deps(project):
    """Imports-only dependency edges restricted to indexed modules."""
    deps = {}
    for key, module in project.modules.items():
        deps[key] = sorted({target for target in module.imports.values()
                            if target in project.modules and target != key})
    return deps


def env_hashes(project, contents):
    """Environment hash per module key.

    ``contents`` maps module key -> content hash. The import graph is
    condensed into SCCs (iterative Tarjan, deterministic); each SCC's
    hash covers its members' content hashes plus the env hashes of the
    SCCs it imports, computed in reverse topological order so every
    dependency hash exists before it is consumed.
    """
    deps = _module_deps(project)
    nodes = sorted(deps)

    index_of = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(deps[root]))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(deps[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)

    scc_of = {}
    for number, scc in enumerate(sccs):
        for member in scc:
            scc_of[member] = number

    env = {}
    # Tarjan emits SCCs in reverse topological order: dependencies
    # (sinks) first, so every dep hash is ready when needed.
    for scc in sccs:
        digest = hashlib.sha256()
        digest.update(SALT.encode("utf-8"))
        for member in sorted(scc):
            digest.update(member.encode("utf-8"))
            digest.update(contents.get(member, "").encode("utf-8"))
        external = sorted({env[dep] for member in scc
                           for dep in deps[member]
                           if scc_of[dep] != scc_of[member]})
        for dep_hash in external:
            digest.update(dep_hash.encode("utf-8"))
        scc_hash = digest.hexdigest()
        for member in scc:
            env[member] = scc_hash
    return env


class SummaryCache:
    """The on-disk per-module store under one cache directory."""

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = root

    def _path(self, key):
        safe = "".join(ch if ch.isalnum() or ch in "._-" else "_"
                       for ch in key)
        return os.path.join(self.root, safe + ".json")

    def load(self, key, path, env_hash):
        """The cached entry for ``key``, or None on any mismatch.

        A hit requires the format/salt pair, the stored file path (a
        moved file must re-analyze so finding paths stay truthful), and
        the environment hash to all match.
        """
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("format") != CACHE_FORMAT \
                or entry.get("salt") != SALT \
                or entry.get("path") != path \
                or entry.get("env_hash") != env_hash:
            return None
        return entry

    def store(self, key, entry):
        """Atomically write one module entry (tmp file + rename)."""
        os.makedirs(self.root, exist_ok=True)
        target = self._path(key)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True)
        os.replace(tmp, target)
