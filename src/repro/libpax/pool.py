"""The user-facing libpax API (paper §3.1, Listing 1).

The Rust in the paper::

    let mut allocator = HWSnapshotter::<MyAllocator>::map_pool("./ht.pool");
    let persistent_ht = Persistent::<HashMap>::new(&allocator);
    persistent_ht.insert(1, 100);
    persistent_ht.persist();

maps onto::

    pool = map_pool("./ht.pool")
    ht = pool.persistent(HashMap)
    ht.put(1, 100)
    pool.persist()

``map_pool`` builds the whole simulated machine (host caches, link, PAX
device, PM), recovers the pool if a crash left an uncommitted epoch, and
wires an allocator into structure space. ``persistent`` either creates
the structure (empty pool) or re-attaches to the recovered one — the
application cannot tell which happened (paper §3.4).
"""

from contextlib import contextmanager

from repro.errors import PoolError, ProtocolError
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import PaxMachine
from repro.pm.pool import (
    ROOT_KIND_DIRECTORY,
    ROOT_KIND_NONE,
    ROOT_KIND_SINGLE,
)

_MASK64 = 0xFFFFFFFFFFFFFFFF


def name_hash(name):
    """FNV-1a hash of a structure name (directory key).

    64-bit, so accidental collisions between the handful of names one
    pool holds are astronomically unlikely; a collision raises at attach
    time because the structure magic will not match.
    """
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & _MASK64
    return h or 1


class PaxPool:
    """An open pool plus the machine that backs it."""

    def __init__(self, machine, auto_persist_log_fraction=None):
        self.machine = machine
        self._mem = machine.mem(core_id=0)
        self.allocator = PmAllocator.create_or_attach(
            self._mem, machine.heap_size)
        self._operations_in_flight = 0
        if auto_persist_log_fraction is not None \
                and not 0 < auto_persist_log_fraction <= 1:
            raise PoolError("auto-persist fraction must be in (0, 1]")
        #: Paper §3.2: "libpax can issue persist() periodically to limit
        #: undo log growth." When set, every operation() exit checks log
        #: fullness and snapshots past this fraction.
        self.auto_persist_log_fraction = auto_persist_log_fraction

    # -- Listing 1, line 1 -------------------------------------------------

    @classmethod
    def map_pool(cls, path=None, pool_size=64 * 1024 * 1024,
                 log_size=4 * 1024 * 1024, auto_persist_log_fraction=None,
                 **machine_kwargs):
        """Open (or create) a pool, running recovery if needed.

        ``path`` backs the pool with a real file; None keeps it in memory
        (tests and benchmarks). Remaining keyword arguments configure the
        :class:`~repro.libpax.machine.PaxMachine` (``link``,
        ``pax_config``, ``num_cores``, cache geometries, ...).
        """
        machine = PaxMachine(pool_size=pool_size, log_size=log_size,
                             backing_path=path, **machine_kwargs)
        return cls(machine,
                   auto_persist_log_fraction=auto_persist_log_fraction)

    # -- Listing 1, line 2 ----------------------------------------------------

    def persistent(self, structure_cls, **kwargs):
        """Create or recover the pool's root structure.

        ``structure_cls`` must provide ``create(mem, allocator, **kwargs)``
        and ``attach(mem, allocator, root)`` plus a ``root`` offset
        property — every class in :mod:`repro.structures` does.

        On a fresh pool the structure is created, an initial snapshot is
        committed, and the root pointer is published; on an existing pool
        the recovered structure is re-attached. Either way the caller gets
        a ready structure (paper: "there is no difference between
        constructing a new persistent map and recovering one").
        """
        pool = self.machine.pool
        if pool.root_kind == ROOT_KIND_DIRECTORY:
            raise PoolError(
                "this pool holds named roots; use persistent_named()")
        root = pool.root_ptr
        if root != 0:
            return structure_cls.attach(self._mem, self.allocator, root)
        structure = structure_cls.create(self._mem, self.allocator, **kwargs)
        # Commit the initialized (empty) structure before publishing its
        # root: a crash in between re-creates from scratch instead of
        # attaching to rolled-back garbage.
        self.persist()
        pool.root_ptr = structure.root
        pool.root_kind = ROOT_KIND_SINGLE
        return structure

    def persistent_named(self, name, structure_cls, **kwargs):
        """Create or recover one of several named structures in this pool.

        A pool either holds one anonymous root (:meth:`persistent`) or a
        directory of named roots — the two styles cannot mix. Each named
        structure gets its own heap allocations; all share the pool's
        snapshot: one ``persist()`` commits them together, and recovery
        restores them together.
        """
        pool = self.machine.pool
        if pool.root_kind == ROOT_KIND_SINGLE:
            raise PoolError(
                "this pool holds a single anonymous root; use persistent()")
        directory = self._root_directory(create=True)
        key = name_hash(name)
        root = directory.get(key, 0)
        if root:
            return structure_cls.attach(self._mem, self.allocator, root)
        structure = structure_cls.create(self._mem, self.allocator, **kwargs)
        # Same publish discipline as persistent(): the snapshot containing
        # the initialized structure commits before the directory points at
        # it, so a crash in between only leaks, never dangles.
        self.persist()
        directory.put(key, structure.root)
        self.persist()
        return structure

    def named_roots(self):
        """Return ``{name_hash: root_offset}`` of the directory (empty if
        this pool uses a single anonymous root)."""
        if self.machine.pool.root_kind != ROOT_KIND_DIRECTORY:
            return {}
        return self._root_directory(create=False).to_dict()

    def _root_directory(self, create):
        from repro.structures.hashmap import HashMap
        pool = self.machine.pool
        if pool.root_ptr != 0 and pool.root_kind == ROOT_KIND_DIRECTORY:
            return HashMap.attach(self._mem, self.allocator, pool.root_ptr)
        if not create:
            raise PoolError("pool has no named-root directory")
        directory = HashMap.create(self._mem, self.allocator, capacity=16)
        self.persist()
        pool.root_ptr = directory.root
        pool.root_kind = ROOT_KIND_DIRECTORY
        return directory

    def reattach_named(self, name, structure_cls):
        """Re-attach a named structure after :meth:`restart`."""
        directory = self._root_directory(create=False)
        root = directory.get(name_hash(name), 0)
        if not root:
            raise PoolError("pool has no structure named %r" % (name,))
        return structure_cls.attach(self._mem, self.allocator, root)

    # -- Listing 1, line 6 -------------------------------------------------------

    @contextmanager
    def operation(self):
        """Mark a logical operation in progress (paper §3.5).

        "Application code must ensure that persist() is only called when
        no thread is modifying the data structure, otherwise persisted
        snapshots may still include partial effects from ongoing
        operations." This guard turns that contract violation into a
        loud error instead of a silently-torn snapshot::

            with pool.operation():
                ht.put(1, 100)
            pool.persist()          # fine here, error inside the block
        """
        self._operations_in_flight += 1
        try:
            yield self
        finally:
            self._operations_in_flight -= 1
        if not self._operations_in_flight \
                and self.auto_persist_log_fraction is not None:
            self.maybe_persist(self.auto_persist_log_fraction)

    @property
    def log_fullness(self):
        """Fraction of undo-log capacity consumed (durable + pending)."""
        device = self.machine.device
        used = device.region.used_entries + device.undo.pending_count
        return used / device.region.capacity_entries

    def maybe_persist(self, threshold=0.8):
        """Snapshot now if the undo log has crossed ``threshold`` fullness.

        The §3.2 log-growth valve. A no-op (returns False) while an
        operation is in flight — persisting then would violate §3.5 — or
        below the threshold.
        """
        if self._operations_in_flight or self.log_fullness < threshold:
            return False
        self.persist()
        return True

    def _check_quiescent(self):
        if self._operations_in_flight:
            raise ProtocolError(
                "persist() called with %d operation(s) in progress; the "
                "snapshot would contain partial effects (paper §3.5)"
                % self._operations_in_flight)

    def persist(self):
        """Commit a crash-consistent snapshot; returns the blocking ns."""
        self._check_quiescent()
        return self.machine.persist()

    def persist_async(self):
        """Pipelined snapshot (paper §6): block only for the snoop phase.

        The returned handle's ``committed`` attribute flips once the
        epoch is durable; ``persist_barrier()`` forces completion.
        """
        self._check_quiescent()
        return self.machine.persist_async()

    def persist_barrier(self):
        """Wait until every pipelined snapshot has committed."""
        return self.machine.persist_barrier()

    # -- accessors -------------------------------------------------------------------

    def mem(self, core_id=0):
        """Structure-space accessor bound to ``core_id``."""
        return self.machine.mem(core_id)

    @property
    def committed_epoch(self):
        """Epoch of the durable snapshot."""
        return self.machine.pool.committed_epoch

    @property
    def undo_log_entries(self):
        """Durable undo records in the open epoch (log growth metric)."""
        return self.machine.device.region.used_entries

    # -- crash testing ------------------------------------------------------------------

    def crash(self):
        """Simulate power loss."""
        self.machine.crash()

    def restart(self, recovery_deadline_ns=None):
        """Reboot + recover; re-attaches the allocator. Returns the report.

        A crash that predates the very first persist rolls the allocator
        header itself away — recovery then re-creates it (the pool is
        genuinely empty in that case). ``recovery_deadline_ns`` is the
        recovery-time SLO: past it, :class:`~repro.errors.RecoveryTimeout`
        (see :meth:`PaxMachine.restart`).
        """
        report = self.machine.restart(
            recovery_deadline_ns=recovery_deadline_ns)
        self.allocator = PmAllocator.create_or_attach(
            self._mem, self.machine.heap_size)
        return report

    def reattach_root(self, structure_cls):
        """Re-attach the root structure after :meth:`restart`."""
        root = self.machine.pool.root_ptr
        if root == 0:
            raise PoolError("pool has no published root structure")
        return structure_cls.attach(self._mem, self.allocator, root)

    def close(self):
        """Flush to the backing file (if any)."""
        self.machine.close()

    def __repr__(self):
        return "PaxPool(epoch=%d)" % self.committed_epoch


def map_pool(path=None, **kwargs):
    """Module-level convenience mirroring the paper's ``map_pool``."""
    return PaxPool.map_pool(path, **kwargs)
