"""The flow-checker catalogue: persist-order, det-taint, pm-escape.

Each checker upgrades a syntactic ``repro.lint`` rule with actual
control- and data-flow reasoning:

``persist-order``
    The static counterpart of PaxSan's dynamic ``san-missing-undo``: in
    ``structures/`` and ``baselines/`` code, a PM store issued through
    an accessor must be *dominated* by an open tx/persist gate — on
    every path, not just the one a workload happened to execute.
``det-taint``
    Upgrades ``sim-determinism`` from import-matching to taint
    propagation: a value *derived* from wall-clock, ambient entropy,
    ``id()``, or unordered-container iteration must not flow into
    simulated state (clock advances, RNG seeds, message scheduling),
    however many assignments or helper calls it passes through.
``pm-escape``
    Replaces ``pm-direct-write``'s alias blindness: a raw device object
    (``PmDevice`` & co) may not leave its owning module — public
    returns, public attributes, or foreign-module calls — unless it is
    wrapped in a ``repro.mem.accessor`` type or handed to a sanctioned
    owner subsystem first.
"""

import ast

from repro.staticcheck.dataflow import ForwardAnalysis, TOP
from repro.staticcheck.engine import checker


def _name_of(expr):
    """Simple name of an expression: ``x`` -> "x", ``a.b`` -> "b"."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _event_exprs(kind, node):
    """The expressions evaluated by one CFG event, in source order."""
    if kind == "stmt":
        return [node]
    if kind == "test":
        return [node]
    if kind == "for":
        return [node.iter]
    if kind == "with-enter":
        return [item.context_expr for item in node.items]
    return []


# ---------------------------------------------------------------------------
# persist-order
# ---------------------------------------------------------------------------

#: Store verbs on an accessor-like receiver (plus any ``write_uNN``).
_STORE_VERBS = frozenset({"write", "write_bytes", "memset", "memcpy"})

#: Receiver names that identify an accessor / device / address space.
_ACCESSOR_NAMES = frozenset({
    "mem", "_mem", "accessor", "_accessor", "acc", "tx", "_tx",
    "inner", "_inner", "space", "_space", "pm", "_pm", "device", "media",
})

#: ``StructLayout`` views: ``view.set(...)`` is a PM store too.
_VIEW_SET_RECEIVERS = frozenset({"hdr", "_hdr", "view", "header"})

#: Calls opening a transaction gate.
_GATE_OPEN_ATTRS = frozenset({
    "begin", "begin_tx", "tx_begin", "start_tx", "open_tx"})

#: Logging a pre-image (WAL/undo append) also gates the following stores.
_GATE_LOG_ATTRS = frozenset({"append", "log_line", "tx_add"})
_GATE_LOG_RECEIVERS = frozenset({
    "wal", "_wal", "log", "_log", "undo", "_undo", "journal", "_journal"})

#: Calls closing every open gate.
_GATE_CLOSE_ATTRS = frozenset({
    "end", "commit", "tx_end", "end_tx", "abort", "rollback"})

#: ``with x.transaction():`` style context-manager gates.
_WITH_GATE_NAMES = frozenset({"transaction", "tx", "atomic", "guard"})

#: Pseudo-token meaning "whatever gate the caller may hold at the call
#: site" — the interprocedural boundary fact. It is *not* a real gate:
#: a store covered only by ``@entry`` is safe iff every caller calls in
#: gated, which is the summary question ``interproc.py`` answers.
ENTRY_TOKEN = "@entry"
_ENTRY_SET = frozenset({ENTRY_TOKEN})


def _bound_store_names(func):
    """Local names bound to a store method (``write = self._write_u64``)."""
    bound = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Attribute):
            verb = value.attr.lstrip("_")
            if verb in _STORE_VERBS or verb.startswith("write_"):
                bound.add(target.id)
    return bound


def _is_store_call(call, bound_stores):
    """True if ``call`` issues a PM store through an accessor."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in bound_stores
    if not isinstance(func, ast.Attribute):
        return False
    receiver = _name_of(func.value)
    verb = func.attr.lstrip("_")
    if verb in _STORE_VERBS or verb.startswith("write_"):
        if receiver in _ACCESSOR_NAMES:
            return True
        if receiver == "self" and func.attr.startswith("_write"):
            return True
    if func.attr == "set" and receiver in _VIEW_SET_RECEIVERS:
        return True
    return False


def _gate_delta(call):
    """The gate effect of one call: "open", "close", or None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _GATE_OPEN_ATTRS:
        return "open"
    if func.attr in _GATE_CLOSE_ATTRS:
        return "close"
    if func.attr in _GATE_LOG_ATTRS \
            and _name_of(func.value) in _GATE_LOG_RECEIVERS:
        return "open"
    return None


def _with_opens_gate(node):
    """True if a ``with`` statement's context expression is a tx gate."""
    for item in node.items:
        expr = item.context_expr
        call = expr if isinstance(expr, ast.Call) else None
        target = call.func if call is not None else expr
        name = _name_of(target)
        if name in _WITH_GATE_NAMES:
            return True
    return False


class _GateAnalysis(ForwardAnalysis):
    """Must-analysis: the set of gate tokens open on *every* path.

    Per-function use keeps the historical contract: ``report`` collects
    the bare store ``ast.Call`` nodes not covered by any token (the
    fixer's ``placement.py`` consumes exactly that shape).

    The interprocedural layer turns on two extensions:

    * ``entry_gate=True`` seeds the boundary with :data:`ENTRY_TOKEN`,
      so a store covered *only* by the caller's hypothetical gate still
      lands in ``report`` but is also recorded in ``entry_covered`` —
      "safe iff every caller calls in gated";
    * ``resolver`` supplies callee summaries — ``resolver.opens(call)``
      treats a call to a must-open project function as a gate-open, and
      ``resolver.defers_store(call)`` suppresses a store verb that
      resolves to a project function (the callee body is then the thing
      being judged, in its own right).

    When ``call_sites`` is set to a list, every call is appended as
    ``(call, gatedness)`` with gatedness ``"yes"`` (a real token is
    open), ``"entry"`` (only ``@entry``), or ``"no"``; ``store_calls``
    accumulates the ids of every store call seen.
    """

    def __init__(self, bound_stores, report=None, resolver=None,
                 entry_gate=False):
        self._bound_stores = bound_stores
        self._resolver = resolver
        self._entry_gate = entry_gate
        self._entry_set = _ENTRY_SET if entry_gate else frozenset()
        #: When set, uncovered store call nodes are appended here
        #: during the post-solve reporting walk.
        self.report = report
        #: ids of reported calls whose only cover was ``@entry``.
        self.entry_covered = set()
        #: When set to a list, ``(call, gatedness)`` for every call.
        self.call_sites = None
        #: ids of every store call walked (gated or not).
        self.store_calls = set()

    def boundary(self):
        return self._entry_set

    def meet(self, left, right):
        return left & right

    def transfer(self, fact, kind, node):
        if kind == "with-enter":
            if _with_opens_gate(node):
                return fact | {"with:%d" % node.lineno}
            return fact
        if kind == "with-exit":
            return frozenset(t for t in fact
                             if t != "with:%d" % node.lineno)
        if kind == "except":
            # An exception may have interrupted the gated region at any
            # point; trust nothing (not even the caller's gate).
            return frozenset()
        for expr in _event_exprs(kind, node):
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call):
                    continue
                is_store = _is_store_call(call, self._bound_stores)
                if is_store and self._resolver is not None \
                        and self._resolver.defers_store(call):
                    is_store = False
                real = fact - self._entry_set
                if self.call_sites is not None:
                    gated = "yes" if real else ("entry" if fact else "no")
                    self.call_sites.append((call, gated))
                if is_store:
                    self.store_calls.add(id(call))
                    if self.report is not None and not real:
                        self.report.append(call)
                        if fact:
                            self.entry_covered.add(id(call))
                delta = _gate_delta(call)
                if delta is None and self._resolver is not None \
                        and self._resolver.opens(call):
                    delta = "open"
                if delta == "open":
                    fact = fact | {"tx"}
                elif delta == "close":
                    fact = frozenset()
        return fact


@checker("persist-order",
         "accessor stores in structures/baselines must be dominated by "
         "an open tx/persist gate")
def check_persist_order(ctx):
    """Flag PM stores not covered by a transaction gate on all paths.

    A gate opens at ``*.begin(...)`` / ``wal.append(...)`` / ``with
    x.transaction():`` and closes at ``*.end()`` / ``*.commit()`` (or
    when an exception handler is entered). The analysis is a forward
    *must* problem — a gate opened on only one arm of a branch does not
    cover the join — which is exactly the all-paths guarantee crash
    consistency needs and dynamic sanitizers cannot give.
    """
    if not ctx.has_segment("structures", "baselines"):
        return
    interproc = getattr(ctx, "interproc", None)
    for qualname, func in ctx.functions():
        bound_stores = _bound_store_names(func)
        cfg = ctx.cfg(func)
        resolver = None
        if interproc is not None:
            resolver = interproc.gate_resolver(ctx.path, qualname, func)
        entry_gate = interproc is not None
        solver = _GateAnalysis(bound_stores, resolver=resolver,
                               entry_gate=entry_gate)
        in_facts = solver.solve(cfg)
        reporter = _GateAnalysis(bound_stores, report=[], resolver=resolver,
                                 entry_gate=entry_gate)
        seen = set()
        for block in cfg.blocks:
            fact = in_facts.get(block, TOP)
            if fact is TOP:
                continue
            reporter.report = []
            reporter.block_out(fact, block)
            for call in reporter.report:
                location = (call.lineno, call.col_offset)
                if location in seen:
                    continue
                seen.add(location)
                if interproc is not None:
                    interproc.register_store(
                        ctx.path, call.lineno, call.col_offset, qualname,
                        entry_dep=id(call) in reporter.entry_covered)
                yield (call.lineno, call.col_offset,
                       "PM store through an accessor is not dominated by "
                       "an open tx/persist gate (static san-missing-undo)")


# ---------------------------------------------------------------------------
# det-taint
# ---------------------------------------------------------------------------

#: Modules any call into which yields a non-deterministic value.
_NONDET_MODULES = frozenset({"time", "random", "datetime", "secrets",
                             "uuid"})

#: Files fencing non-determinism behind seeded interfaces (mirrors the
#: ``sim-determinism`` lint sanction list).
_TAINT_SANCTIONED = ("sim/rng.py", "sim/clock.py", "perfbench/")

#: Sink receivers/attrs: calls that mutate simulated state.
_SINK_METHODS = {
    "advance": frozenset({"clock", "_clock"}),
    "tick": frozenset({"clock", "_clock"}),
    "seed": frozenset({"rng", "_rng"}),
    "reseed": frozenset({"rng", "_rng"}),
    "jump": frozenset({"rng", "_rng"}),
    "schedule": frozenset({"sim", "_sim", "scheduler", "_scheduler"}),
    "submit": frozenset({"bandwidth", "_bandwidth", "link", "_link"}),
    "record": frozenset({"bandwidth", "_bandwidth"}),
    "send": frozenset({"link", "_link", "bus", "_bus"}),
    "send_h2d": frozenset({"link", "_link"}),
    "send_d2h": frozenset({"link", "_link"}),
    "deliver": frozenset({"link", "_link", "bus", "_bus"}),
    "enqueue": frozenset({"queue", "_queue", "scheduler", "_scheduler"}),
}

#: Constructors whose arguments seed simulated state.
_SINK_CONSTRUCTORS = frozenset({
    "Rng", "SeededRng", "DeterministicRng", "SimClock", "Clock"})

_TAINT = "t"
_UNORDERED = "u"


def _unordered_literal(expr):
    """True for expressions producing hash-ordered containers."""
    if isinstance(expr, (ast.Set, ast.Dict)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset", "dict")
    return False


class _TaintAnalysis(ForwardAnalysis):
    """May-analysis: tagged names — ("t", x) tainted, ("u", x) unordered."""

    def __init__(self, ctx, summaries):
        self._ctx = ctx
        self._summaries = summaries

    def boundary(self):
        return frozenset()

    def meet(self, left, right):
        return left | right

    # -- source / taint predicates ---------------------------------------

    def _module_of(self, name):
        module = self._ctx.imports.get(name)
        if module is not None:
            return module
        # Unimported bare receiver named like the module (fixtures,
        # function-local imports the map already caught via ast.walk).
        if name in _NONDET_MODULES or name == "os":
            return name
        return None

    def _is_source_call(self, call):
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                return True
            module = self._ctx.imports.get(func.id)
            if module in _NONDET_MODULES:
                return True
            if module == "os" and "urandom" in func.id:
                return True
            return self._summary_tainted(("local", func.id))
        if isinstance(func, ast.Attribute):
            receiver = _name_of(func.value)
            module = self._module_of(receiver) if receiver else None
            if module in _NONDET_MODULES:
                return True
            if module == "os" and func.attr == "urandom":
                return True
        return False

    def _summary_tainted(self, callee):
        if self._summaries is None:
            return False
        return self._summaries.tainted(callee)

    def expr_tainted(self, expr, fact):
        """True if evaluating ``expr`` can yield a tainted value."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id == "sorted":
            # sorted() restores a deterministic order; only genuine value
            # taint inside the arguments survives.
            return any(self._value_taint_only(arg, fact)
                       for arg in expr.args)
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (_TAINT, node.id) in fact:
                return True
            if isinstance(node, ast.Call):
                if self._is_source_call(node):
                    return True
                if self._consumes_unordered(node, fact):
                    return True
        return False

    def _value_taint_only(self, expr, fact):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (_TAINT, node.id) in fact:
                return True
            if isinstance(node, ast.Call) and self._is_source_call(node):
                return True
        return False

    def _consumes_unordered(self, call, fact):
        """iter()/list()/tuple() over, or .pop() on, an unordered name."""
        func = call.func
        if isinstance(func, ast.Name) and func.id in ("iter", "list",
                                                      "tuple", "next"):
            return any(isinstance(arg, ast.Name)
                       and (_UNORDERED, arg.id) in fact
                       for arg in call.args)
        if isinstance(func, ast.Attribute) and func.attr == "pop":
            receiver = func.value
            return isinstance(receiver, ast.Name) \
                and (_UNORDERED, receiver.id) in fact
        return False

    def iter_tainted(self, iter_expr, fact):
        """Taint for a loop target: tainted iterable or unordered order."""
        if isinstance(iter_expr, ast.Call) \
                and isinstance(iter_expr.func, ast.Name) \
                and iter_expr.func.id == "sorted":
            return any(self._value_taint_only(arg, fact)
                       for arg in iter_expr.args)
        if isinstance(iter_expr, ast.Name) \
                and (_UNORDERED, iter_expr.id) in fact:
            return True
        if _unordered_literal(iter_expr):
            return True
        return self.expr_tainted(iter_expr, fact)

    # -- transfer ---------------------------------------------------------

    @staticmethod
    def _target_names(target):
        names = []
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
        return names

    def transfer(self, fact, kind, node):
        if kind == "except":
            if node.name:
                fact = frozenset(t for t in fact if t[1] != node.name)
            return fact
        if kind == "for":
            tainted = self.iter_tainted(node.iter, fact)
            for name in self._target_names(node.target):
                fact = frozenset(t for t in fact if t[1] != name)
                if tainted:
                    fact = fact | {(_TAINT, name)}
            return fact
        if kind == "with-enter":
            for item in node.items:
                if item.optional_vars is None:
                    continue
                tainted = self.expr_tainted(item.context_expr, fact)
                for name in self._target_names(item.optional_vars):
                    if tainted:
                        fact = fact | {(_TAINT, name)}
            return fact
        if kind != "stmt":
            return fact

        if isinstance(node, ast.Assign):
            tainted = self.expr_tainted(node.value, fact)
            unordered = _unordered_literal(node.value) or (
                isinstance(node.value, ast.Name)
                and (_UNORDERED, node.value.id) in fact)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    fact = frozenset(t for t in fact if t[1] != target.id)
                    if tainted:
                        fact = fact | {(_TAINT, target.id)}
                    if unordered:
                        fact = fact | {(_UNORDERED, target.id)}
                else:
                    for name in self._target_names(target):
                        if tainted and isinstance(target, (ast.Tuple,
                                                           ast.List)):
                            fact = fact | {(_TAINT, name)}
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) \
                    and self.expr_tainted(node.value, fact):
                fact = fact | {(_TAINT, node.target.id)}
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None and isinstance(node.target, ast.Name):
                fact = frozenset(t for t in fact if t[1] != node.target.id)
                if self.expr_tainted(node.value, fact):
                    fact = fact | {(_TAINT, node.target.id)}
        return fact

    # -- sinks ------------------------------------------------------------

    def sink_findings(self, fact, kind, node):
        """Findings for tainted values reaching sinks in one event."""
        for expr in _event_exprs(kind, node):
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call):
                    continue
                for finding in self._check_sink_call(call, fact):
                    yield finding
        if kind == "stmt" and isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and "seed" in target.attr \
                        and self.expr_tainted(node.value, fact):
                    yield (node.lineno, node.col_offset,
                           "non-deterministic value stored into %r; seeds "
                           "must come from config or sim.rng"
                           % target.attr)

    def _check_sink_call(self, call, fact):
        tainted_args = [arg for arg in call.args
                        if self.expr_tainted(arg, fact)]
        tainted_kw = [kw for kw in call.keywords
                      if kw.arg is not None
                      and self.expr_tainted(kw.value, fact)]
        if not tainted_args and not tainted_kw:
            return
        for kw in tainted_kw:
            if kw.arg == "seed":
                yield (call.lineno, call.col_offset,
                       "non-deterministic value flows into seed=; "
                       "determinism taint (use sim.rng / sim.clock)")
                return
        func = call.func
        if isinstance(func, ast.Name) and func.id in _SINK_CONSTRUCTORS:
            yield (call.lineno, call.col_offset,
                   "non-deterministic value flows into %s(); simulated "
                   "state must be seeded deterministically" % func.id)
            return
        if isinstance(func, ast.Attribute):
            receivers = _SINK_METHODS.get(func.attr)
            if receivers and _name_of(func.value) in receivers:
                yield (call.lineno, call.col_offset,
                       "non-deterministic value flows into simulated "
                       "state via .%s(); determinism taint" % func.attr)


def _module_sanctioned_for_taint(key):
    return key.endswith("sim.rng") or key.endswith("sim.clock") \
        or ".perfbench" in key or key.endswith("perfbench")


class NameTaintSummaries:
    """Name-keyed taint oracle (the historical per-function behaviour).

    ``tainted(callee)`` answers by bare function name — conservative
    against same-named functions in different modules; the
    interprocedural oracle in ``interproc.py`` resolves identity
    through the call graph instead.
    """

    __slots__ = ("names",)

    def __init__(self, names):
        self.names = names

    def tainted(self, callee):
        """True if the callee descriptor's bare name is tainted."""
        return callee[1] in self.names

    def __contains__(self, name):      # keeps `"f" in summaries` working
        return name in self.names


def _taint_summaries(ctx):
    """Oracle for "does this function return a tainted value?".

    Computed once per ProjectIndex and cached on it: a function is
    taint-returning if it has a value-returning ``return`` and its body
    contains a direct non-determinism source or a call to a function
    already in the set. Iterated to fixpoint over the call graph.
    """
    project = ctx.project
    if project is None:
        return None
    cached = getattr(project, "_taint_summaries", None)
    if cached is not None:
        return cached

    def returns_value(func):
        return any(isinstance(n, ast.Return) and n.value is not None
                   for n in ast.walk(func))

    def has_direct_source(module, func):
        analysis = _TaintAnalysis(
            _ModuleImportsShim(module), None)
        return any(isinstance(n, ast.Call) and analysis._is_source_call(n)
                   for n in ast.walk(func))

    tainted = set()
    infos = []
    for module in project.modules.values():
        if _module_sanctioned_for_taint(module.key):
            continue
        for info in set(module.functions.values()):
            infos.append((module, info))
            if returns_value(info.node) \
                    and has_direct_source(module, info.node):
                tainted.add(info.node.name)

    for _round in range(10):
        changed = False
        for module, info in infos:
            if info.node.name in tainted:
                continue
            if not returns_value(info.node):
                continue
            for callee in info.calls:
                resolved = project.resolve(module, callee)
                if resolved is not None and resolved.node.name in tainted:
                    tainted.add(info.node.name)
                    changed = True
                    break
        if not changed:
            break
    oracle = NameTaintSummaries(tainted)
    project._taint_summaries = oracle
    return oracle


class _ModuleImportsShim:
    """Adapter giving _TaintAnalysis an ``imports`` map for a ModuleInfo."""

    def __init__(self, module):
        self.imports = module.imports
        self.project = None


@checker("det-taint",
         "no wall-clock/entropy/iteration-order taint may reach "
         "simulated state")
def check_det_taint(ctx):
    """Track non-determinism through assignments into sim-state sinks.

    Sources: calls into ``time`` / ``random`` / ``datetime`` /
    ``secrets`` / ``uuid`` / ``os.urandom``, ``id()``, iteration over
    hash-ordered containers, and calls to project functions that
    (transitively) return such values. Sinks: clock advances, RNG
    seeding, scheduler/link submission, ``seed=`` keywords, and
    ``*seed*`` attribute stores. ``sorted(...)`` launders iteration-
    order taint (that is the approved fix), but not value taint.
    """
    if ctx.in_package(*_TAINT_SANCTIONED):
        return
    interproc = getattr(ctx, "interproc", None)
    summaries = None
    if interproc is not None:
        summaries = interproc.taint_oracle(ctx.path)
    if summaries is None:
        summaries = _taint_summaries(ctx)
    for _qualname, func in ctx.functions():
        cfg = ctx.cfg(func)
        analysis = _TaintAnalysis(ctx, summaries)
        in_facts = analysis.solve(cfg)
        seen = set()
        for block in cfg.blocks:
            fact = in_facts.get(block, TOP)
            if fact is TOP:
                continue
            for kind, node in block.events:
                for finding in analysis.sink_findings(fact, kind, node):
                    location = (finding[0], finding[1])
                    if location not in seen:
                        seen.add(location)
                        yield finding
                fact = analysis.transfer(fact, kind, node)


# ---------------------------------------------------------------------------
# pm-escape
# ---------------------------------------------------------------------------

#: Constructors producing a raw PM/DRAM device object.
_RAW_CONSTRUCTORS = frozenset({
    "PmDevice", "DramDevice", "MemoryDevice", "FaultyPmDevice"})

#: Accessor wrappers that make a raw device safe to hand out.
_ACCESSOR_WRAPPERS = frozenset({
    "RawAccessor", "OffsetAccessor", "CountingAccessor"})

#: Modules that legitimately own raw devices; handing a device *to* them
#: (or code living *in* them) is not an escape.
_OWNER_SEGMENTS = ("pm", "mem", "libpax", "faults")
_OWNER_MODULE_PREFIXES = (
    "repro.pm", "repro.mem", "repro.libpax", "repro.faults")


class _EscapeAnalysis(ForwardAnalysis):
    """May-analysis: local names currently bound to a raw device.

    ``params`` seeds the boundary — the interprocedural summary pass
    uses it to ask "if every parameter were a raw device, would this
    function leak one?". ``callee_safe`` (a ``call -> bool`` predicate)
    discharges foreign-call escapes whose resolved callee is known not
    to leak its parameters.
    """

    def __init__(self, ctx, params=(), callee_safe=None):
        self._ctx = ctx
        self._params = frozenset(params)
        self._callee_safe = callee_safe

    def boundary(self):
        return self._params

    def meet(self, left, right):
        return left | right

    def _is_raw_expr(self, expr, fact):
        if isinstance(expr, ast.Name):
            return expr.id in fact
        if isinstance(expr, ast.Call):
            name = _name_of(expr.func)
            return name in _RAW_CONSTRUCTORS
        return False

    def transfer(self, fact, kind, node):
        if kind != "stmt" or not isinstance(node, ast.Assign):
            return fact
        raw = self._is_raw_expr(node.value, fact)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if raw:
                    fact = fact | {target.id}
                else:
                    fact = fact - {target.id}
        return fact

    # -- escapes ----------------------------------------------------------

    def _sanctioned_call(self, call):
        """True if ``call`` may legitimately consume a raw device: an
        accessor wrapper, or a constructor/function imported from an
        owner subsystem (ownership transfer)."""
        name = _name_of(call.func)
        if name in _ACCESSOR_WRAPPERS:
            return True
        if isinstance(call.func, ast.Name):
            module = self._ctx.imports.get(call.func.id)
            if module is not None \
                    and module.startswith(_OWNER_MODULE_PREFIXES):
                return True
        return False

    def _raw_refs(self, expr, fact):
        """Raw names referenced by ``expr`` outside wrapper calls."""
        if expr is None:
            return []
        found = []
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call) and self._sanctioned_call(node):
                continue
            if isinstance(node, ast.Name) and node.id in fact:
                found.append(node)
                continue
            stack.extend(ast.iter_child_nodes(node))
        return found

    def _callee_module(self, call):
        if isinstance(call.func, ast.Name):
            return self._ctx.imports.get(call.func.id)
        return None

    def escape_findings(self, fact, kind, node, func_public):
        if kind != "stmt":
            return
        if isinstance(node, ast.Return):
            if func_public and self._raw_refs(node.value, fact):
                yield (node.lineno, node.col_offset,
                       "raw PM device escapes via public return; wrap it "
                       "in a repro.mem.accessor type first")
            return
        if isinstance(node, ast.Assign):
            raw = self._is_raw_expr(node.value, fact) \
                or bool(self._raw_refs(node.value, fact))
            if raw:
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and _name_of(target.value) == "self" \
                            and not target.attr.startswith("_"):
                        yield (node.lineno, node.col_offset,
                               "raw PM device stored on public attribute "
                               "%r; keep it private or wrap it in an "
                               "accessor" % target.attr)
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Yield):
            if func_public and self._raw_refs(node.value.value, fact):
                yield (node.lineno, node.col_offset,
                       "raw PM device escapes via public yield; wrap it "
                       "in a repro.mem.accessor type first")
            return
        # Foreign-module calls taking a raw device argument.
        for call in ast.walk(node):
            if not isinstance(call, ast.Call) or self._sanctioned_call(call):
                continue
            module = self._callee_module(call)
            if module is None:
                continue
            if self._callee_safe is not None and self._callee_safe(call):
                continue
            args = list(call.args) + [kw.value for kw in call.keywords]
            for arg in args:
                if self._raw_refs(arg, fact):
                    yield (call.lineno, call.col_offset,
                           "raw PM device passed to %s (module %s) without "
                           "an accessor wrapper"
                           % (_name_of(call.func), module))
                    break


@checker("pm-escape",
         "raw PM devices must not escape their owning module unwrapped")
def check_pm_escape(ctx):
    """Flag raw device objects leaking out of non-owner modules.

    Tracks aliases through assignments (the blindness of the syntactic
    ``pm-direct-write`` rule), and accepts three legitimate exits: a
    ``repro.mem.accessor`` wrapper call, handing the device to an owner
    subsystem (``repro.pm`` / ``repro.mem`` / ``repro.libpax`` /
    ``repro.faults``), or keeping it on a private attribute.
    """
    if ctx.has_segment(*_OWNER_SEGMENTS):
        return
    interproc = getattr(ctx, "interproc", None)
    callee_safe = None
    if interproc is not None:
        callee_safe = interproc.escape_oracle(ctx.path)
    for qualname, func in ctx.functions():
        func_public = not func.name.startswith("_")
        cfg = ctx.cfg(func)
        analysis = _EscapeAnalysis(ctx, callee_safe=callee_safe)
        in_facts = analysis.solve(cfg)
        seen = set()
        for block in cfg.blocks:
            fact = in_facts.get(block, TOP)
            if fact is TOP:
                continue
            for kind, node in block.events:
                for finding in analysis.escape_findings(
                        fact, kind, node, func_public):
                    location = (finding[0], finding[1])
                    if location not in seen:
                        seen.add(location)
                        yield finding
                fact = analysis.transfer(fact, kind, node)
