"""Unit tests: MemDevicePort and PersistPipeline internals."""

import pytest

from repro.core.config import PaxConfig
from repro.core.device import PaxDevice
from repro.cxl.link import CxlLink
from repro.cxl.port import MemDevicePort
from repro.pm.device import PmDevice
from repro.pm.pool import Pool
from repro.sim.clock import SimClock
from repro.sim.latency import default_model

VPM_BASE = 1 << 32


def build(**config):
    pm = PmDevice("pm", 1 << 20)
    pool = Pool.format(pm, log_size=96 * 256)
    device = PaxDevice(pool, default_model(),
                       config=PaxConfig(**config), vpm_base=VPM_BASE)
    port = MemDevicePort(CxlLink("cxl", SimClock(), 35.0, 63e9), device)
    return port, device, pool


class StubSnoop:
    """Host stand-in; ``dirty`` maps phys addr -> data it will surrender."""

    def __init__(self, dirty=None):
        self.dirty = dirty or {}

    def snoop_shared(self, addr):
        return self.dirty.get(addr), 10.0


class TestMemDevicePort:
    def test_read_line(self):
        port, _device, pool = build()
        pool.device.write(pool.data_base, b"MEMDATA!" + b"\x00" * 56)
        data, latency = port.read_line(VPM_BASE)
        assert data[:8] == b"MEMDATA!"
        assert latency >= 70.0
        assert port.stats.get("mem_reads") == 1

    def test_write_line_logs_and_buffers(self):
        port, device, pool = build()
        latency = port.write_line(VPM_BASE, b"\x55" * 64)
        assert latency > 0
        assert device.stats.get("lines_logged") == 1
        assert device.writeback.peek(device.to_pool(VPM_BASE)) == b"\x55" * 64
        # Not yet on PM: the gate holds until the record drains.
        assert pool.device.read(pool.data_base, 1) != b"\x55"

    def test_repeat_writes_dedup_log(self):
        port, device, _pool = build()
        port.write_line(VPM_BASE, b"\x01" * 64)
        port.write_line(VPM_BASE, b"\x02" * 64)
        assert device.stats.get("lines_logged") == 1
        assert device.writeback.peek(device.to_pool(VPM_BASE)) == b"\x02" * 64

    def test_persist_mem_commits(self):
        port, device, pool = build()
        port.write_line(VPM_BASE, b"\x77" * 64)
        device.persist_mem()
        assert pool.committed_epoch == 1
        assert pool.device.read(pool.data_base, 1) == b"\x77"

    def test_mem_wr_pre_image_rolls_back(self):
        from repro.core.recovery import recover_pool
        port, device, pool = build()
        pool.device.write(pool.data_base, b"ORIG" + b"\x00" * 60)
        port.write_line(VPM_BASE, b"NEW!" + b"\x00" * 60)
        device.undo.pump()
        device.writeback.drain_budget(1024)
        assert pool.device.read(pool.data_base, 4) == b"NEW!"
        device.on_crash()
        recover_pool(pool)
        assert pool.device.read(pool.data_base, 4) == b"ORIG"


class TestPipelineUnits:
    def test_flight_satisfied_when_lines_reach_pm(self):
        # Slow log drain keeps the record volatile, so the snooped dirty
        # line parks in the buffer and the flight stays open.
        _port, device, pool = build(log_drain_bps=1e-6)
        from repro.cxl import messages as msg
        device.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        flight, _ns = device.persist_async(
            StubSnoop(dirty={VPM_BASE: b"\x99" * 64}))
        assert not flight.committed
        device.undo.pump()
        device.writeback.drain_budget(10_000)
        device.pipeline.poll()
        assert flight.committed
        assert pool.committed_epoch == flight.epoch
        assert pool.device.read(pool.data_base, 1) == b"\x99"

    def test_rewind_only_at_quiescence(self):
        _port, device, pool = build()
        from repro.cxl import messages as msg
        device.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        flight, _ns = device.persist_async(StubSnoop())
        # The next epoch is already dirty: no rewind after this commit.
        device.handle_message(msg.RdOwn(VPM_BASE + 128, need_data=True))
        device.undo.pump()
        device.pipeline.poll()
        assert flight.committed
        assert device.region.used_entries > 0     # not rewound
        # Quiesce: the open epoch commits via a blocking persist, which
        # rewinds.
        device.persist(StubSnoop())
        assert device.region.used_entries == 0

    def test_depth_counts_outstanding_flights(self):
        _port, device, _pool = build(log_drain_bps=1e-6)
        from repro.cxl import messages as msg
        device.handle_message(msg.RdOwn(VPM_BASE, need_data=True))
        device.persist_async(StubSnoop(dirty={VPM_BASE: b"\x01" * 64}))
        device.handle_message(msg.RdOwn(VPM_BASE + 64, need_data=True))
        device.persist_async(
            StubSnoop(dirty={VPM_BASE + 64: b"\x02" * 64}))
        assert device.pipeline.depth == 2
        device.pipeline.complete_all()
        assert device.pipeline.depth == 0
