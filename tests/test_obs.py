"""Unit tests for the observability layer: ring buffer, tracer, metrics
registry, exporters, and the ``python -m repro.obs`` CLI exit contract."""

import json

import pytest

from repro.baselines import make_backend
from repro.errors import ConfigError
from repro.obs import (
    CATEGORIES,
    EVENT_INSTANT,
    EVENT_SPAN,
    MetricsRegistry,
    ObsTracer,
    RingBuffer,
    TeeTracer,
    chrome_trace,
    event_to_dict,
    prometheus_name,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.cli import main, summarize_events
from repro.sanitizer.base import Tracer
from repro.util.stats import StatGroup


class FakeClock:
    def __init__(self, now_ns=0):
        self.now_ns = now_ns


def _event(i):
    return (EVENT_INSTANT, "store", "store", i, 0, {"line": i})


# -- ring buffer ------------------------------------------------------------

def test_ring_keeps_everything_below_capacity():
    ring = RingBuffer(8)
    for i in range(5):
        ring.append(_event(i))
    assert len(ring) == 5
    assert ring.dropped == 0
    assert [e[3] for e in ring.events()] == [0, 1, 2, 3, 4]


def test_ring_wraparound_keeps_newest_oldest_first():
    ring = RingBuffer(4)
    for i in range(11):
        ring.append(_event(i))
    assert len(ring) == 4
    assert ring.total == 11
    assert ring.dropped == 7
    assert [e[3] for e in ring.events()] == [7, 8, 9, 10]


def test_ring_wrap_exactly_at_capacity_boundary():
    ring = RingBuffer(4)
    for i in range(8):
        ring.append(_event(i))
    # total is a multiple of capacity: the cut is at slot 0.
    assert [e[3] for e in ring.events()] == [4, 5, 6, 7]


def test_ring_clear_and_bad_capacity():
    ring = RingBuffer(4)
    ring.append(_event(1))
    ring.clear()
    assert len(ring) == 0 and ring.events() == []
    with pytest.raises(ConfigError):
        RingBuffer(0)


# -- tracer -----------------------------------------------------------------

def test_tracer_stamps_simulated_time():
    clock = FakeClock(500)
    tracer = ObsTracer(clock=clock, capacity=16)
    tracer.instant("snoop", "snoop-shared", {"line": 64})
    clock.now_ns = 900
    tracer.on_span("link", "h2d", None, 25, {"bytes": 64})
    tracer.on_span("load", "miss", 100, 50)
    events = tracer.events()
    assert events[0] == (EVENT_INSTANT, "snoop", "snoop-shared", 500, 0,
                         {"line": 64})
    assert events[1] == (EVENT_SPAN, "link", "h2d", 900, 25, {"bytes": 64})
    assert events[2] == (EVENT_SPAN, "load", "miss", 100, 50, None)


def test_tracer_disabled_records_nothing():
    tracer = ObsTracer(clock=FakeClock(), capacity=16)
    tracer.enabled = False
    tracer.instant("store", "store")
    tracer.on_span("load", "miss", 0, 10)
    tracer.on_store(128)
    tracer.on_epoch_commit(3)
    assert tracer.events() == []


def test_tracer_protocol_hooks_map_onto_categories():
    tracer = ObsTracer(clock=FakeClock(), capacity=64)
    tracer.on_store(64)
    tracer.on_log_record(4096, 7, 2)
    tracer.on_log_durable(7)
    tracer.on_epoch_commit(2)
    tracer.on_snoop("invalidate", 64, True)
    tracer.on_clwb(64, 2)
    tracer.on_fence()
    tracer.on_machine_crash()
    tracer.on_machine_restart()
    counts = tracer.counts_by_category()
    assert counts == {"store": 1, "undo-append": 1, "drain": 1,
                      "epoch-commit": 1, "snoop": 1, "writeback": 2,
                      "recovery": 2}
    assert set(counts) <= set(CATEGORIES)


def test_tee_tracer_fans_out_to_all_children():
    a = ObsTracer(clock=FakeClock(1), capacity=8)
    b = ObsTracer(clock=FakeClock(2), capacity=8)
    tee = TeeTracer([a, b])
    tee.on_store(64)
    tee.on_span("recovery", "recover-pool", 5, 0, None)
    assert len(a.ring) == len(b.ring) == 2
    assert isinstance(tee, Tracer)


# -- exporters --------------------------------------------------------------

def test_jsonl_round_trip_with_cell_tag(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    events = [(EVENT_SPAN, "link", "h2d", 10, 5, {"bytes": 64}),
              (EVENT_INSTANT, "drain", "undo-durable", 20, 0, None)]
    write_jsonl(events, path, extra={"cell": "store_heavy/pax"})
    records = read_jsonl(path)
    assert len(records) == 2
    assert records[0]["cat"] == "link" and records[0]["dur_ns"] == 5
    assert all(r["cell"] == "store_heavy/pax" for r in records)
    assert "dur_ns" not in records[1]


def test_read_jsonl_rejects_bad_traces(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ConfigError):
        read_jsonl(str(empty))
    noheader = tmp_path / "noheader.jsonl"
    noheader.write_text('{"ph": "i", "ts_ns": 0}\n')
    with pytest.raises(ConfigError):
        read_jsonl(str(noheader))
    badline = tmp_path / "bad.jsonl"
    badline.write_text('{"schema": "repro.obs/1"}\nnot json\n')
    with pytest.raises(ConfigError):
        read_jsonl(str(badline))


def test_chrome_trace_is_valid_and_lanes_by_category():
    records = [event_to_dict((EVENT_SPAN, "store", "miss", 1000, 250,
                              {"line": 64})),
               event_to_dict((EVENT_INSTANT, "epoch-commit",
                              "epoch-advance", 2000, 0, {"epoch": 1}))]
    trace = chrome_trace(records)
    assert validate_chrome_trace(trace) == []
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert spans[0]["ts"] == 1.0 and spans[0]["dur"] == 0.25
    assert spans[0]["args"]["ts_ns"] == 1000
    names = {e["args"]["name"] for e in trace["traceEvents"]
             if e["ph"] == "M"}
    assert set(CATEGORIES) <= names
    lanes = {e["tid"] for e in trace["traceEvents"] if e["ph"] != "M"}
    assert len(lanes) == 2


def test_validate_chrome_trace_reports_problems():
    assert validate_chrome_trace([]) == \
        ["top level must be a JSON object, got list"]
    assert validate_chrome_trace({}) == ["traceEvents must be a list"]
    bad = {"traceEvents": [
        {"ph": "Q", "name": "x", "pid": 0, "tid": 0, "ts": 0},
        {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0},
        {"ph": "i", "pid": 0, "tid": "zero", "ts": 0},
    ]}
    problems = validate_chrome_trace(bad)
    assert any("unsupported phase" in p for p in problems)
    assert any("non-negative dur" in p for p in problems)
    assert any("integer tid" in p for p in problems)
    assert any("string name" in p for p in problems)


# -- metrics ----------------------------------------------------------------

def test_registry_rejects_non_statgroups():
    with pytest.raises(ConfigError):
        MetricsRegistry().register(object())


def test_registry_collects_counters_and_histogram_quantiles():
    group = StatGroup("widget")
    group.counter("spins").add(3)
    hist = group.histogram("spin_ns")
    for value in (10, 20, 30, 40):
        hist.record(value)
    registry = MetricsRegistry(clock=FakeClock(777))
    registry.register(group, component="test")
    samples = registry.collect()
    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))
    assert by_name["repro_widget_spins"][0][1] == 3
    assert by_name["repro_widget_spin_ns_count"][0][1] == 4
    assert by_name["repro_widget_spin_ns_sum"][0][1] == 100
    quantiles = {labels["quantile"]: value
                 for labels, value in by_name["repro_widget_spin_ns"]}
    assert quantiles["0.5"] == 25.0
    record = registry.snapshot()
    assert record["sim_ns"] == 777 and registry.snapshots == [record]


def test_registry_register_machine_and_prometheus_text():
    backend = make_backend("pax")
    for i in range(32):
        backend.put(i % 8, i)
    registry = MetricsRegistry().register_machine(backend, cell="t/pax")
    text = registry.to_prometheus()
    assert 'cell="t/pax"' in text
    assert "repro_hierarchy_stores" in text
    assert "repro_cxl_h2d_messages" in text or "cxl" in text
    # Deterministic: rendering twice gives the same text.
    assert text == registry.to_prometheus()


def test_prometheus_name_sanitizes():
    assert prometheus_name("repro", "core0.l1", "hits") == \
        "repro_core0_l1_hits"
    assert prometheus_name("9lives").startswith("repro_")


# -- summarize aggregation --------------------------------------------------

def test_summarize_events_percentiles_and_epochs():
    records = [event_to_dict((EVENT_SPAN, "load", "miss", i * 10, i, None))
               for i in range(1, 101)]
    records.append(event_to_dict((EVENT_INSTANT, "epoch-commit",
                                  "epoch-advance", 50, 0, {"epoch": 1})))
    summary = summarize_events(records)
    load = summary["categories"]["load"]
    assert load["events"] == load["spans"] == 100
    assert load["p50_ns"] == pytest.approx(50.5)
    assert load["p99_ns"] == pytest.approx(99.0)   # 99.01 rounded to 1dp
    assert load["max_ns"] == 100
    assert [e["args"]["epoch"] for e in summary["epochs"]] == [1]


# -- CLI exit contract ------------------------------------------------------

def _write_trace(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    events = [(EVENT_SPAN, "store", "miss", 100, 25, {"line": 64}),
              (EVENT_INSTANT, "epoch-commit", "epoch-advance", 200, 0,
               {"epoch": 1})]
    write_jsonl(events, path)
    return path


def test_cli_summarize_prints_categories(tmp_path, capsys):
    path = _write_trace(tmp_path)
    assert main(["summarize", path]) == 0
    out = capsys.readouterr().out
    assert "store" in out and "epoch-commit timeline" in out
    assert main(["summarize", "--json", path]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["events"] == 2


def test_cli_convert_then_validate(tmp_path, capsys):
    path = _write_trace(tmp_path)
    chrome = str(tmp_path / "trace.json")
    assert main(["convert", path, "--to", "chrome", "-o", chrome]) == 0
    with open(chrome) as handle:
        assert validate_chrome_trace(json.load(handle)) == []
    assert main(["validate", chrome]) == 0
    assert main(["validate", path]) == 0      # JSONL flavour
    capsys.readouterr()


def test_cli_exit_1_on_invalid_chrome_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
    assert main(["validate", str(bad)]) == 1
    assert "unsupported phase" in capsys.readouterr().out


def test_cli_exit_2_on_unreadable_input(tmp_path, capsys):
    assert main(["summarize", str(tmp_path / "missing.jsonl")]) == 2
    notjson = tmp_path / "x.json"
    notjson.write_text("{")
    assert main(["validate", str(notjson)]) == 2
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["summarize", str(empty)]) == 2
    capsys.readouterr()


def test_cli_usage_error_without_subcommand():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_chrome_export_file_round_trip(tmp_path):
    path = _write_trace(tmp_path)
    out = str(tmp_path / "chrome.json")
    write_chrome_trace(read_jsonl(path), out)
    with open(out) as handle:
        obj = json.load(handle)
    assert validate_chrome_trace(obj) == []
    assert obj["otherData"]["schema"] == "repro.obs/1"
