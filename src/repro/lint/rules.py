"""The built-in rule catalogue.

Each rule is a generator decorated with :func:`repro.lint.engine.rule`;
it walks the file's AST (via :class:`~repro.lint.engine.LintContext`) and
yields ``(lineno, col, message)`` for every violation. Location/module
scoping lives here, suppression handling lives in the engine.
"""

import ast

from repro.lint.engine import iter_function_nodes, rule

#: Builtins whose ``raise`` the project bans: callers must be able to
#: catch ``ReproError`` and know they have a simulator failure, not a
#: Python one. ``NotImplementedError`` (abstract methods) and
#: ``StopIteration`` (protocol) stay legal.
_BANNED_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "RuntimeError", "IndexError", "IOError", "OSError", "ArithmeticError",
    "AttributeError", "AssertionError", "LookupError", "NameError",
    "ZeroDivisionError", "OverflowError", "BufferError",
})

#: Modules whose import makes a simulation non-reproducible: wall-clock
#: time and ambient entropy. Simulated time comes from ``repro.sim.clock``
#: and randomness from ``repro.sim.rng`` (seeded, replayable).
_NONDET_MODULES = frozenset({"time", "random", "datetime", "secrets"})

#: Files allowed to import the non-deterministic modules: the wrappers
#: that fence them off behind seeded/simulated interfaces, plus the
#: perfbench harness, which measures the simulator's *wall-clock* speed
#: and is non-deterministic by definition (its output never feeds back
#: into simulated results).
_NONDET_SANCTIONED = ("sim/rng.py", "sim/clock.py", "perfbench/")

#: Modules allowed to call ``*.write(...)`` on a PM device directly.
#: Everything else must go through the cache hierarchy or a transaction
#: accessor so write interposition (PaxSan, write-amp stats) sees it.
_PM_WRITE_SANCTIONED = (
    "pm/",
    "mem/",
    "faults/",
    "core/writeback.py",
    "core/recovery.py",
    "core/replication.py",
)

#: Receiver names that identify a PM device in a ``.write()`` call.
_DEVICE_NAMES = frozenset({"device", "pm", "media", "pm_device"})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)

#: Per-event methods on the simulator's critical path, by file suffix.
#: Inside these, ``stats.counter("...")`` / ``stats.histogram("...")``
#: is a string-keyed dict lookup paid on every simulated access; the
#: object must instead be bound to an attribute at construction time
#: (see docs/performance.md). Constructors are deliberately absent —
#: binding there is the fix.
_HOT_PATH_METHODS = {
    "cache/hierarchy.py": frozenset({
        "load", "store", "_access_line", "_hit_path", "_miss_path",
        "_charge", "_fill_l1", "_evict_from_l2", "_upgrade",
        "_invalidate_sharers", "_pull_from_core", "snoop_shared",
        "snoop_invalidate"}),
    "cache/cache.py": frozenset({"lookup", "peek", "insert", "remove"}),
    "cache/replacement.py": frozenset({
        "on_access", "on_insert", "on_remove", "victim"}),
    # Miss-path mechanisms sit on every LLC/HBM miss; their probe and
    # maintenance hooks run per simulated access.
    "cache/mechanisms.py": frozenset({
        "probe", "probe_and_extend", "on_demand_fill", "on_evict",
        "invalidate"}),
    "cache/homes.py": frozenset({"acquire", "writeback"}),
    "mem/physical.py": frozenset({"read", "write"}),
    "mem/layout.py": frozenset({"get", "set"}),
    "pm/device.py": frozenset({"write"}),
    "pm/log.py": frozenset({"append"}),
    "sim/bandwidth.py": frozenset({"record", "submit"}),
    "sim/clock.py": frozenset({"advance"}),
    "cxl/link.py": frozenset({"send_h2d", "send_d2h"}),
    "cxl/adapter.py": frozenset({"to_cxl", "check_response"}),
    "cxl/port.py": frozenset({
        "_transact", "read_line", "write_line", "snoop_shared",
        "snoop_invalidate"}),
    "core/device.py": frozenset({
        "handle_message", "background_tick", "_rd_shared", "_rd_own",
        "_dirty_evict", "_clean_evict", "_mem_rd", "_mem_wr",
        "_lookup_line"}),
    "core/undo.py": frozenset({
        "note_modification", "drain_one", "drain_budget"}),
    "core/writeback.py": frozenset({
        "buffer_line", "_evict_one", "drain_budget", "_write_to_pm"}),
    "core/hbm.py": frozenset({"get", "put", "invalidate"}),
    "structures/hashmap.py": frozenset({
        "put", "get", "remove", "_bucket_addr"}),
    "baselines/base.py": frozenset({"put", "get", "remove"}),
    # The replay interpreter exists to beat the per-access path on wall
    # clock; a string-keyed stat lookup inside it defeats the point.
    "replay/engine.py": frozenset({
        "_replay_fast", "_replay_generic", "_step"}),
    "replay/recorder.py": frozenset({"_emit"}),
}

#: Method names on a stats group whose call-per-event is the smell.
_STAT_FACTORIES = frozenset({"counter", "histogram"})


def _exception_name(node):
    """Name of the exception a ``raise`` node raises, or None."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


@rule("typed-errors",
      "raise ReproError subclasses, not bare builtin exceptions")
def check_typed_errors(ctx):
    """Flag ``raise ValueError(...)``-style raises of banned builtins.

    Bare ``raise`` (re-raise) and exceptions outside the banned set —
    project errors, ``NotImplementedError`` — pass.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        name = _exception_name(node)
        if name in _BANNED_EXCEPTIONS:
            yield (node.lineno, node.col_offset,
                   "raise a repro.errors type instead of builtin %s" % name)


@rule("pm-direct-write",
      "only sanctioned modules may write the PM device directly")
def check_pm_direct_write(ctx):
    """Flag ``device.write(...)`` / ``self.pm.write(...)`` calls outside
    the sanctioned module list.

    A direct media write bypasses the cache hierarchy, so the coherence
    model, the write-amplification stats, and PaxSan all lose sight of
    it — exactly the interposition argument the paper builds on.
    """
    if ctx.in_package(*_PM_WRITE_SANCTIONED):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "write":
            continue
        receiver = func.value
        if isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        elif isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        else:
            continue
        if receiver_name in _DEVICE_NAMES:
            yield (node.lineno, node.col_offset,
                   "direct PM write via %r bypasses the hierarchy; go "
                   "through stores or an accessor" % receiver_name)


@rule("sim-determinism",
      "no wall-clock or ambient randomness outside sim.clock / sim.rng")
def check_sim_determinism(ctx):
    """Flag imports of time/random/datetime/secrets outside the two
    sanctioned wrapper modules.

    Results must replay bit-for-bit from a seed; ambient time or entropy
    anywhere else silently breaks that.
    """
    if ctx.in_package(*_NONDET_SANCTIONED):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _NONDET_MODULES:
                    yield (node.lineno, node.col_offset,
                           "import of %r breaks determinism; use sim.clock"
                           " / sim.rng" % alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            root = (node.module or "").split(".")[0]
            if root in _NONDET_MODULES:
                yield (node.lineno, node.col_offset,
                       "import from %r breaks determinism; use sim.clock"
                       " / sim.rng" % node.module)


@rule("hot-path-stat-lookup",
      "no string-keyed stat lookups inside per-access hot paths")
def check_hot_path_stat_lookup(ctx):
    """Flag ``stats.counter("x")`` / ``stats.histogram("x")`` calls inside
    methods known to run once per simulated access.

    The get-or-create factories hash the name string on every call; on
    the per-access critical path that shows up directly in wall-clock
    throughput (measured by ``repro.perfbench``). The fix is to bind the
    returned object to an attribute in the constructor and bump that
    binding. Cold methods of the same classes (crash hooks, recovery
    scans, reports) may keep the readable string-keyed form.
    """
    hot_methods = None
    for suffix, methods in _HOT_PATH_METHODS.items():
        if ctx.in_package(suffix):
            hot_methods = methods
            break
    if hot_methods is None:
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name not in hot_methods:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            if callee.attr not in _STAT_FACTORIES:
                continue
            receiver = callee.value
            receiver_name = None
            if isinstance(receiver, ast.Attribute):
                receiver_name = receiver.attr
            elif isinstance(receiver, ast.Name):
                receiver_name = receiver.id
            if receiver_name != "stats":
                continue
            yield (node.lineno, node.col_offset,
                   "stat lookup by name inside hot method %s(); bind the "
                   "%s at construction time" % (func.name, callee.attr))


@rule("mutable-default",
      "no mutable default arguments")
def check_mutable_default(ctx):
    """Flag list/dict/set literals (and their constructors) used as
    parameter defaults — they are shared across calls.

    Uses :func:`~repro.lint.engine.iter_function_nodes`, so lambdas and
    functions nested inside other functions or decorated methods are
    checked, not just module-level ``def`` bodies.
    """
    for node in iter_function_nodes(ctx.tree):
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            bad = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set"))
            if bad:
                yield (default.lineno, default.col_offset,
                       "mutable default argument is shared across calls; "
                       "default to None")
