"""The redo-WAL baseline (paper §2's other WAL flavour).

Redo logging defers structure updates: inside a transaction, stores land
in a volatile per-line overlay; reads check the overlay first so the
transaction sees its own writes. At commit, every overlaid line's *new*
value is appended to the WAL (NT stores), one SFENCE orders the batch, the
commit cell is published, and only then are the lines applied in place
through the caches.

Fewer fences than undo logging (two per transaction instead of one per
logged line), at the price of overlay lookups on the read path — the
classic redo/undo trade the paper alludes to.

Recovery: a transaction whose id is <= the commit cell re-applies its WAL
entries (idempotent); newer entries are discarded — the structure was
never touched in place before commit, so discarding is rollback.
"""

from repro.baselines.base import StructureBackend
from repro.baselines.wal import DurableCells, Wal, WalLayout
from repro.errors import LogError
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HEAP_PHYS_BASE, HostMachine
from repro.mem.accessor import MemoryAccessor
from repro.pm.flush import FlushModel
from repro.util.bitops import split_lines
from repro.util.constants import CACHE_LINE_SIZE


class RedoTxAccessor(MemoryAccessor):
    """Write-set overlay: stores buffer per line until commit."""

    def __init__(self, inner):
        self._inner = inner
        self._tx_active = False
        self._overlay = {}            # line_addr -> bytearray(64)
        #: Optional tracer told about transaction boundaries.
        self.tracer = None

    def begin(self):
        """Open a transaction; clears the write-set overlay."""
        if self._tx_active:
            raise LogError("nested transactions are not supported")
        self._tx_active = True
        self._overlay.clear()
        if self.tracer is not None:
            self.tracer.on_tx_begin()

    @property
    def in_tx(self):
        """True while a transaction is open."""
        return self._tx_active

    def overlay_lines(self):
        """The write set: ``[(line_addr, bytes)]`` in first-touch order."""
        return [(addr, bytes(data)) for addr, data in self._overlay.items()]

    def end(self):
        """Close the transaction and drop the overlay."""
        self._tx_active = False
        self._overlay.clear()
        if self.tracer is not None:
            self.tracer.on_tx_end()

    def _overlay_line(self, line):
        data = self._overlay.get(line)
        if data is None:
            data = bytearray(self._inner.read(line, CACHE_LINE_SIZE))
            self._overlay[line] = data
        return data

    def read(self, addr, length):
        if not self._tx_active or not self._overlay:
            return self._inner.read(addr, length)
        out = bytearray()
        for line, offset, chunk in split_lines(addr, length):
            if line in self._overlay:
                out += self._overlay[line][offset:offset + chunk]
            else:
                out += self._inner.read(line + offset, chunk)
        return bytes(out)

    def write(self, addr, data):
        data = bytes(data)
        if not self._tx_active:
            self._inner.write(addr, data)
            return
        cursor = 0
        for line, offset, chunk in split_lines(addr, len(data)):
            overlay = self._overlay_line(line)
            overlay[offset:offset + chunk] = data[cursor:cursor + chunk]
            cursor += chunk

    def apply(self):
        """Commit phase: write the overlay in place (through the caches)."""
        for line, data in self._overlay.items():
            self._inner.write(line, bytes(data))


class RedoBackend(StructureBackend):
    """Redo-WAL hash table on PM."""

    name = "redo"
    crash_consistent = True

    def __init__(self, heap_size=64 * 1024 * 1024, wal_size=None,
                 capacity=1024, **machine_kwargs):
        super().__init__()
        self._machine = HostMachine(media="pm", heap_size=heap_size,
                                    **machine_kwargs)
        if wal_size is None:
            # Default: an eighth of the heap, capped at 4 MiB.
            wal_size = min(4 * 1024 * 1024, heap_size // 8)
        self._layout = WalLayout(heap_size, wal_size)
        self._flush = FlushModel(self._machine.clock, self._machine.latency)
        self._cells = DurableCells(self._machine, self._layout)
        self._wal = Wal(self._machine, self._layout, self._flush)
        self._tx = RedoTxAccessor(self._machine.mem())
        self._next_tx = self._cells.committed_tx + 1
        self._capacity = capacity
        if self._cells.root == 0:
            self._alloc = PmAllocator.create(self._tx, self._layout.arena_limit)
            self._bind_structure(self._tx, self._alloc, capacity=capacity)
            for line in self._machine.hierarchy.dirty_lines():
                self._flush.clwb(line - HEAP_PHYS_BASE, CACHE_LINE_SIZE)
                self._machine.hierarchy.writeback_line(line)
            self._flush.sfence()
            self._cells.root = self._map.root
            self._flush.sfence()
        else:
            self._alloc = PmAllocator.attach(self._tx)
            self._reattach_structure(self._tx, self._alloc, self._cells.root)

    @property
    def machine(self):
        return self._machine

    def attach_tracer(self, tracer):
        """Wire a sanitizer/tracer into the machine, WAL, and accessor."""
        self._machine.attach_tracer(tracer)
        self._flush.tracer = tracer
        self._wal.tracer = tracer
        self._cells.tracer = tracer
        self._tx.tracer = tracer
        tracer.on_backend_attach(self, self._layout)

    def _run_tx(self, operation):
        self._tx.begin()
        try:
            result = operation()
            write_set = self._tx.overlay_lines()
            # 1. Log every new value (NT stores pipeline; one fence).
            for line, data in write_set:
                self._wal.append(self._next_tx, line, data, fence=False)
            self._flush.sfence()
            # 2. Publish.
            self._cells.committed_tx = self._next_tx
            self._flush.sfence()
            # 3. Apply in place and persist the application so the WAL can
            # be reused for the next transaction.
            self._tx.apply()
            for line, _data in write_set:
                self._flush.clwb(line, CACHE_LINE_SIZE)
                self._machine.hierarchy.writeback_line(HEAP_PHYS_BASE + line)
            if write_set:
                self._flush.sfence()
        finally:
            self._tx.end()
        self._next_tx += 1
        self._wal.reset()
        return result

    def put(self, key, value):
        self._c_puts.value += 1
        return self._run_tx(lambda: self._map.put(key, value))

    def remove(self, key):
        self._c_removes.value += 1
        return self._run_tx(lambda: self._map.remove(key))

    def get(self, key, default=None):
        self._c_gets.value += 1
        return self._map.get(key, default)

    def persist(self):
        """Transactions are durable at commit; nothing extra to do."""

    def restart(self):
        """Reboot; re-apply committed WAL entries, discard uncommitted."""
        self._machine.restart()
        committed = self._cells.committed_tx
        replayed = 0
        for entry in self._wal.scan():
            if entry.epoch <= committed:
                data = entry.data.ljust(CACHE_LINE_SIZE, b"\x00")
                self._machine.space.write(HEAP_PHYS_BASE + entry.addr, data)
                replayed += 1
        self._wal.reset()
        self._next_tx = committed + 1
        self._alloc = PmAllocator.attach(self._tx)
        self._reattach_structure(self._tx, self._alloc, self._cells.root)
        return replayed

    @property
    def sfence_count(self):
        """Ordering stalls so far."""
        return self._flush.sfence_count

    @property
    def wal_bytes(self):
        """Bytes of redo log written."""
        return self._wal.stats.get("bytes")
