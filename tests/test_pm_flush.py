"""CLWB/SFENCE cost model."""

import pytest

from repro.pm.flush import FlushModel
from repro.sim.clock import SimClock
from repro.sim.latency import default_model


def flush_model():
    clock = SimClock()
    return FlushModel(clock, default_model()), clock


class TestFlushModel:
    def test_clwb_charges_per_line(self):
        flush, clock = flush_model()
        flush.clwb(0, 256)          # 4 lines
        lat = default_model()
        assert clock.now_ns == pytest.approx(4 * lat.software.clwb_ns)
        assert flush.stats.get("clwb_lines") == 4

    def test_clwb_unaligned_range(self):
        flush, _clock = flush_model()
        flush.clwb(60, 8)           # spans 2 lines
        assert flush.stats.get("clwb_lines") == 2

    def test_clwb_empty_range_free(self):
        flush, clock = flush_model()
        assert flush.clwb(0, 0) == 0.0
        assert clock.now_ns == 0

    def test_sfence_includes_pm_drain(self):
        flush, clock = flush_model()
        flush.sfence()
        lat = default_model()
        expected = lat.software.sfence_ns + lat.media.pm_write_ns
        assert clock.now_ns == pytest.approx(expected)
        assert flush.sfence_count == 1

    def test_persist_range_combines(self):
        flush, clock = flush_model()
        total = flush.persist_range(0, 64)
        assert clock.now_ns == pytest.approx(total)
        assert flush.stats.get("clwb_lines") == 1
        assert flush.sfence_count == 1
