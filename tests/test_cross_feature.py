"""Cross-feature integration: extensions composed with each other."""

import pytest

from repro.core.replication import NetworkLink, ReplicaTarget, Replicator
from repro.pm.device import PmDevice
from repro.pm.pool import Pool
from repro.structures import BTree, HashMap
from repro.tools.inspect import inspect_pool
from tests.conftest import make_pax_pool, small_cache_kwargs

POOL_SIZE = 4 * 1024 * 1024
LOG_SIZE = 256 * 1024


class TestReplicationWithNamedRoots:
    def test_failover_recovers_directory_and_structures(self):
        pool = make_pax_pool()
        replica = ReplicaTarget(
            Pool.format(PmDevice("replica", POOL_SIZE), log_size=LOG_SIZE))
        replicator = Replicator(pool.machine, replica,
                                link=NetworkLink(pool.machine.clock),
                                mode="sync")
        users = pool.persistent_named("users", HashMap, capacity=64)
        index = pool.persistent_named("index", BTree)
        for key in range(15):
            users.put(key, key)
            index.put(key, key * 2)
        pool.persist()
        pool.crash()
        standby = replicator.failover(pool_size=POOL_SIZE,
                                      log_size=LOG_SIZE,
                                      **small_cache_kwargs())
        users2 = standby.reattach_named("users", HashMap)
        index2 = standby.reattach_named("index", BTree)
        assert users2.to_dict() == {key: key for key in range(15)}
        assert index2.to_dict() == {key: key * 2 for key in range(15)}
        index2.check_order()


class TestInspectorWithNamedRoots:
    def test_reports_directory_kind(self, tmp_path):
        path = str(tmp_path / "named.pool")
        pool = make_pax_pool(path=path)
        pool.persistent_named("a", HashMap, capacity=64)
        pool.persistent_named("b", BTree)
        pool.persist()
        pool.machine.pool.sync()
        info = inspect_pool(path)
        assert info["root_kind"] == "named-root directory"
        assert not info["needs_recovery"]


class TestPipelineWithMemModeGuard:
    def test_mem_mode_pool_auto_persist_valve_works(self):
        from repro.pm.log import ENTRY_SIZE
        pool = make_pax_pool(protocol="cxl.mem",
                             log_size=(60 * ENTRY_SIZE // 64 + 1) * 64,
                             auto_persist_log_fraction=0.5)
        table = pool.persistent(HashMap, capacity=64)
        for key in range(80):
            with pool.operation():
                table.put(key, key)
        # In mem mode, records accrue only at write-back; CLWB sweeps in
        # persist flush them. The valve may or may not have fired — what
        # matters is the workload completed and commits are consistent.
        pool.persist()
        pool.crash()
        pool.restart()
        assert pool.reattach_root(HashMap).to_dict() \
            == {key: key for key in range(80)}


class TestHybridWithMachineReport:
    def test_report_renders_for_hybrid(self):
        from repro.analysis.machine_report import machine_report
        from repro.baselines import make_backend
        backend = make_backend("hybrid", pool_size=POOL_SIZE,
                               log_size=LOG_SIZE, capacity=64,
                               **small_cache_kwargs())
        for key in range(20):
            backend.put(key, key)
        backend.persist()
        report = machine_report(backend.machine)
        assert "PAX device" in report
        assert "medium (pm0)" in report
