"""LossyLink: bounded retransmit, backoff accounting, and semantic
transparency — a lossy link changes latency, never contents."""

import pytest

from repro.cxl import LossyLink
from repro.errors import LinkError
from repro.faults import LinkFaultSpec
from repro.sim.rng import DeterministicRng
from repro.structures import HashMap
from repro.workloads.ycsb import YcsbWorkload
from tests.conftest import make_pax_pool


class StubLink:
    """Fixed-latency inner link for unit tests."""

    name = "stub"
    one_way_ns = 10.0

    def send_h2d(self, _message):
        return 10.0

    def send_d2h(self, _message):
        return 10.0


class AlwaysDrop:
    """An rng whose random() always lands under any nonzero drop rate."""

    def random(self):
        return 0.0


class TestLossyLinkUnit:
    def test_zero_drop_rate_is_transparent(self):
        link = LossyLink(StubLink(), LinkFaultSpec(drop_rate=0.0))
        assert link.send_h2d("msg") == 10.0
        assert link.round_trip("req", "resp") == 20.0
        assert link.stats.counter("drops").value == 0
        assert link.stats.counter("messages").value == 3

    def test_gives_up_after_max_retries(self):
        spec = LinkFaultSpec(drop_rate=0.5, timeout_ns=100.0,
                             backoff_base_ns=10.0, max_retries=3)
        link = LossyLink(StubLink(), spec, rng=AlwaysDrop())
        with pytest.raises(LinkError):
            link.send_h2d("msg")
        # max_retries + 1 attempts all dropped; backoff/timeout charged
        # only for the retries actually scheduled.
        assert link.stats.counter("drops").value == 4
        assert link.stats.counter("timeout_ns").value == 300
        assert link.stats.counter("backoff_ns").value == 10 + 20 + 40

    def test_backoff_is_exponential_and_capped(self):
        spec = LinkFaultSpec(drop_rate=0.5, timeout_ns=0.0,
                             backoff_base_ns=100.0, backoff_cap_ns=250.0,
                             max_retries=4)
        link = LossyLink(StubLink(), spec, rng=AlwaysDrop())
        with pytest.raises(LinkError):
            link.send_d2h("msg")
        # 100, 200, then capped at 250 twice.
        assert link.stats.counter("backoff_ns").value == 100 + 200 + 250 + 250

    def test_retry_penalty_lands_in_returned_latency(self):
        class DropOnce:
            def __init__(self):
                self.calls = 0

            def random(self):
                self.calls += 1
                return 0.0 if self.calls == 1 else 1.0

        spec = LinkFaultSpec(drop_rate=0.5, timeout_ns=100.0,
                             backoff_base_ns=25.0)
        link = LossyLink(StubLink(), spec, rng=DropOnce())
        # One drop: wire time for the dropped attempt (10) + timeout (100)
        # + first backoff (25) + successful attempt (10).
        assert link.send_h2d("msg") == 145.0
        assert link.stats.counter("retries").value == 1

    def test_seeded_runs_are_reproducible(self):
        spec = LinkFaultSpec(drop_rate=0.3, seed=77)
        latencies = []
        for _ in range(2):
            link = LossyLink(StubLink(), spec)
            latencies.append([link.send_h2d(i) for i in range(200)])
        assert latencies[0] == latencies[1]
        assert any(lat > 10.0 for lat in latencies[0])   # some retried


class TestLossyLinkEndToEnd:
    def run_ycsb(self, link_faults):
        pool = make_pax_pool(link_faults=link_faults)
        table = pool.persistent(HashMap, capacity=64)
        workload = YcsbWorkload(mix="A", record_count=48, op_count=150,
                                seed=9)
        for op in workload.load_trace() + workload.run_trace():
            if op.kind == "put":
                table.put(op.key, op.value)
            elif op.kind == "get":
                table.get(op.key)
        pool.persist()
        return pool, table.to_dict()

    def test_ycsb_a_contents_identical_to_lossless(self):
        _pool, clean = self.run_ycsb(None)
        pool, lossy = self.run_ycsb(LinkFaultSpec(drop_rate=0.01, seed=13))
        assert lossy == clean
        stats = pool.machine.link.stats
        assert stats.counter("drops").value > 0
        assert stats.counter("retries").value > 0
        assert stats.counter("backoff_ns").value > 0
        # Bounded retries: every drop was eventually retransmitted.
        assert isinstance(pool.machine.link, LossyLink)

    def test_lossy_run_is_slower_than_lossless(self):
        clean_pool, _ = self.run_ycsb(None)
        lossy_pool, _ = self.run_ycsb(LinkFaultSpec(drop_rate=0.02, seed=13))
        assert lossy_pool.machine.now_ns > clean_pool.machine.now_ns

    def test_restart_keeps_link_lossy_without_replaying_drops(self):
        pool, _ = self.run_ycsb(LinkFaultSpec(drop_rate=0.05, seed=21))
        drops_before = pool.machine.link.stats.counter("drops").value
        pool.crash()
        pool.restart()
        assert isinstance(pool.machine.link, LossyLink)
        table = pool.reattach_root(HashMap)
        for key in range(64):
            table.put(key, key)
        pool.persist()
        # The rebuilt wrapper continues the machine's drop sequence (a
        # restart must not rewind the rng and replay identical faults);
        # its fresh stats group counts the post-restart drops.
        assert pool.machine.link.stats.counter("drops").value > 0
        assert pool.machine.link.stats.counter("drops").value != drops_before
