"""Per-checker positive/negative fixtures, inline: gate dominance on
branches/loops/aliases (persist-order), taint propagation and the
sorted() launder (det-taint), and alias-aware escape detection
(pm-escape)."""

import textwrap

import pytest

from repro.errors import LintError
from repro.staticcheck import all_checkers, check_source

STRUCTURES = "src/repro/structures/fixture.py"
SIM = "src/repro/sim/fixture.py"
TOOLS = "src/repro/tools/fixture.py"


def findings_for(source, path, selected=None):
    return [(f.rule_id, f.lineno)
            for f in check_source(path, textwrap.dedent(source),
                                  selected=selected)]


def test_checker_catalogue_is_registered():
    checkers = all_checkers()
    assert {"persist-order", "det-taint", "pm-escape"} <= set(checkers)
    for checker_obj in checkers.values():
        assert checker_obj.summary


def test_unknown_selected_checker_raises():
    with pytest.raises(LintError):
        check_source("x.py", "pass\n", selected=["no-such-checker"])


# -- persist-order ----------------------------------------------------------

def test_persist_ungated_store_is_flagged():
    source = """
        class S:
            def put(self, k, v):
                self._mem.write_u64(k, v)
    """
    assert findings_for(source, STRUCTURES) == [("persist-order", 4)]


def test_persist_gated_store_is_clean():
    source = """
        class S:
            def put(self, k, v):
                self._tx.begin(k)
                self._mem.write_u64(k, v)
                self._tx.end()
    """
    assert findings_for(source, STRUCTURES) == []


def test_persist_gate_on_one_branch_does_not_dominate():
    source = """
        class S:
            def put(self, k, v, durable):
                if durable:
                    self._tx.begin(k)
                self._mem.write_u64(k, v)
    """
    assert findings_for(source, STRUCTURES) == [("persist-order", 6)]


def test_persist_gate_on_both_branches_dominates():
    source = """
        class S:
            def put(self, k, v, fast):
                if fast:
                    self._tx.begin(k)
                else:
                    self._tx.begin_tx(k)
                self._mem.write_u64(k, v)
                self._tx.end()
    """
    assert findings_for(source, STRUCTURES) == []


def test_persist_with_transaction_gates_the_body():
    source = """
        class S:
            def put(self, k, v):
                with self._tx.transaction():
                    self._mem.write_u64(k, v)
    """
    assert findings_for(source, STRUCTURES) == []


def test_persist_store_after_with_block_is_flagged():
    source = """
        class S:
            def put(self, k, v):
                with self._tx.transaction():
                    self._mem.write_u64(k, v)
                self._mem.write_u64(0, k)
    """
    assert findings_for(source, STRUCTURES) == [("persist-order", 6)]


def test_persist_wal_append_opens_the_gate():
    source = """
        class S:
            def put(self, k, v):
                self._wal.append(k, v)
                self._mem.write_u64(k, v)
    """
    assert findings_for(source, STRUCTURES) == []


def test_persist_commit_closes_the_gate():
    source = """
        class S:
            def put(self, k, v):
                self._tx.begin(k)
                self._mem.write_u64(k, v)
                self._tx.commit()
                self._mem.write_u64(0, k)
    """
    assert findings_for(source, STRUCTURES) == [("persist-order", 7)]


def test_persist_exception_handler_trusts_no_gate():
    source = """
        class S:
            def put(self, k, v):
                try:
                    self._tx.begin(k)
                    self._mem.write_u64(k, v)
                except KeyError:
                    self._mem.write_u64(8, k)
                self._tx.end()
    """
    assert findings_for(source, STRUCTURES) == [("persist-order", 8)]


def test_persist_bound_store_alias_is_tracked():
    source = """
        class S:
            def put(self, k, v):
                write = self._write_u64
                write(k, v)
    """
    assert findings_for(source, STRUCTURES) == [("persist-order", 5)]


def test_persist_loop_keeps_gate_over_back_edge():
    source = """
        class S:
            def fill(self, n):
                self._tx.begin(0)
                for i in range(n):
                    self._mem.write_u64(i, i)
                self._tx.end()
    """
    assert findings_for(source, STRUCTURES) == []


def test_persist_scoped_to_structures_and_baselines():
    source = """
        class S:
            def put(self, k, v):
                self._mem.write_u64(k, v)
    """
    assert findings_for(source, "src/repro/core/fixture.py") == []
    assert findings_for(source,
                        "src/repro/baselines/fixture.py") \
        == [("persist-order", 4)]


def test_persist_suppression_uses_shared_syntax():
    source = (
        "class S:\n"
        "    def put(self, k, v):\n"
        "        self._mem.write_u64(k, v)"
        "  # lint: ignore[persist-order]\n"
    )
    assert check_source(STRUCTURES, source) == []


# -- det-taint --------------------------------------------------------------

def test_taint_flows_through_assignments():
    source = """
        import time

        def drive(clock):
            start = time.time()
            delay = start * 2
            clock.advance(delay)
    """
    assert findings_for(source, SIM) == [("det-taint", 7)]


def test_taint_direct_source_argument():
    source = """
        import time

        def drive(clock):
            clock.advance(time.time())
    """
    assert findings_for(source, SIM) == [("det-taint", 5)]


def test_taint_os_urandom_into_rng_seed():
    source = """
        import os

        def reseed(rng):
            raw = os.urandom(8)
            rng.seed(raw)
    """
    assert findings_for(source, SIM) == [("det-taint", 6)]


def test_taint_id_into_scheduler():
    source = """
        def plan(scheduler, obj):
            token = id(obj)
            scheduler.schedule(token)
    """
    assert findings_for(source, SIM) == [("det-taint", 4)]


def test_taint_seed_keyword_is_a_sink_anywhere():
    source = """
        import time

        def boot(machine_cls):
            return machine_cls(seed=time.time_ns())
    """
    assert findings_for(source, SIM) == [("det-taint", 5)]


def test_taint_set_iteration_order():
    source = """
        def replay(events, link):
            pending = set(events)
            for message in pending:
                link.send(message)
    """
    assert findings_for(source, SIM) == [("det-taint", 5)]


def test_taint_sorted_launders_iteration_order():
    source = """
        def replay(events, link):
            pending = set(events)
            for message in sorted(pending):
                link.send(message)
    """
    assert findings_for(source, SIM) == []


def test_taint_sorted_does_not_launder_value_taint():
    source = """
        import time

        def drive(clock):
            stamps = [time.time()]
            for stamp in sorted(stamps):
                clock.advance(stamp)
    """
    assert findings_for(source, SIM) == [("det-taint", 7)]


def test_taint_reassignment_kills_the_fact():
    source = """
        import time

        def drive(clock):
            stamp = time.time()
            stamp = 0
            clock.advance(stamp)
    """
    assert findings_for(source, SIM) == []


def test_taint_untainted_sink_arguments_are_clean():
    source = """
        def drive(clock, sim_clock):
            clock.advance(sim_clock.now() * 2)

        def reseed(rng, seed):
            rng.seed(seed)
    """
    assert findings_for(source, SIM) == []


def test_taint_sanctioned_wrapper_modules_are_exempt():
    source = """
        import time

        def drive(clock):
            clock.advance(time.time())
    """
    assert findings_for(source, "src/repro/sim/rng.py") == []
    assert findings_for(source, "src/repro/sim/clock.py") == []


# -- pm-escape --------------------------------------------------------------

def test_escape_public_return_is_flagged():
    source = """
        from repro.pm.device import PmDevice

        def open_pool(path):
            device = PmDevice(path, size_bytes=64)
            return device
    """
    assert findings_for(source, TOOLS) == [("pm-escape", 6)]


def test_escape_private_return_is_clean():
    source = """
        from repro.pm.device import PmDevice

        def _open_pool(path):
            device = PmDevice(path, size_bytes=64)
            return device
    """
    assert findings_for(source, TOOLS) == []


def test_escape_wrapped_return_is_clean():
    source = """
        from repro.mem.accessor import RawAccessor
        from repro.pm.device import PmDevice

        def open_pool(path):
            device = PmDevice(path, size_bytes=64)
            return RawAccessor(device)
    """
    assert findings_for(source, TOOLS) == []


def test_escape_public_attribute_is_flagged():
    source = """
        from repro.pm.device import PmDevice

        class Pool:
            def open(self, path):
                self.device = PmDevice(path, size_bytes=64)
    """
    assert findings_for(source, TOOLS) == [("pm-escape", 6)]


def test_escape_private_attribute_is_clean():
    source = """
        from repro.pm.device import PmDevice

        class Pool:
            def open(self, path):
                self._device = PmDevice(path, size_bytes=64)
    """
    assert findings_for(source, TOOLS) == []


def test_escape_follows_aliases_to_foreign_calls():
    source = """
        from repro.pm.device import PmDevice
        from repro.workloads.ycsb import run_workload

        def benchmark(path):
            device = PmDevice(path, size_bytes=64)
            handle = device
            run_workload(handle)
    """
    assert findings_for(source, TOOLS) == [("pm-escape", 8)]


def test_escape_owner_module_handoff_is_clean():
    source = """
        from repro.libpax.machine import HostMachine
        from repro.pm.device import PmDevice

        def build(path):
            device = PmDevice(path, size_bytes=64)
            return HostMachine(pm_device=device)
    """
    assert findings_for(source, TOOLS) == []


def test_escape_reassignment_clears_the_alias():
    source = """
        from repro.pm.device import PmDevice
        from repro.workloads.ycsb import run_workload

        def benchmark(path, accessor):
            handle = PmDevice(path, size_bytes=64)
            handle = accessor
            run_workload(handle)
    """
    assert findings_for(source, TOOLS) == []


def test_escape_owner_modules_are_exempt():
    source = """
        from repro.pm.device import PmDevice

        def open_pool(path):
            device = PmDevice(path, size_bytes=64)
            return device
    """
    assert findings_for(source, "src/repro/mem/fixture.py") == []
    assert findings_for(source, "src/repro/pm/fixture.py") == []
