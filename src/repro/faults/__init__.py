"""Fault injection beyond clean crashes.

The crash injector (:mod:`repro.crashtest.injector`) cuts execution at an
exact store boundary but leaves every durable byte pristine — the undo
log, the epoch record, and the CXL link are assumed perfect. This package
removes those assumptions:

* :class:`FaultyPmDevice` — a PM device that journals recent writes so a
  crash can *tear* the in-flight one (persist a prefix of the payload)
  and that exposes media bit-flips.
* :class:`FaultPlan` / :class:`FaultInjector` — a declarative fault mix
  (torn writes, bit-flips by region, lossy link) applied at crash time,
  composing with the existing :class:`~repro.crashtest.CrashInjector`.
* :class:`~repro.cxl.lossy.LossyLink` (re-exported here) — drop/delay
  wrapper around :class:`~repro.cxl.link.CxlLink` with bounded
  retransmit and exponential backoff.

See ``docs/faults.md`` for the fault model and the recovery guarantees
each fault class gets.
"""

from repro.cxl.lossy import LossyLink
from repro.faults.device import FaultyPmDevice
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BIT_FLIP_REGIONS,
    WINDOW_KINDS,
    BitFlipSpec,
    FaultPlan,
    FaultTimeline,
    FaultWindow,
    LinkFaultSpec,
)

__all__ = [
    "BIT_FLIP_REGIONS",
    "BitFlipSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultTimeline",
    "FaultWindow",
    "FaultyPmDevice",
    "LinkFaultSpec",
    "LossyLink",
    "WINDOW_KINDS",
]
