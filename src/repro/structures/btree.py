"""A B-tree (u64 -> u64) over a memory accessor.

An ordered-index counterpart to the hash map: node splits touch many
lines across three nodes, making it a stress case for snapshot
consistency. This is the classic CLRS B-tree — every key (with its value)
lives in exactly one node — with single-pass preemptive-split insertion,
so no parent pointers are needed.

Node layout (one 192 B allocation)::

    nkeys | is_leaf | keys[7] | values[7] | children[8]

``MAX_KEYS`` = 7 (fanout 8). Deletion implements the full CLRS algorithm
(borrow from siblings or merge, recursing with a guaranteed-non-minimal
child).
"""

from repro.errors import ReproError
from repro.mem.layout import StructLayout

BTREE_MAGIC = 0x5041584254523031     # "PAXBTR01"

MAX_KEYS = 7
#: Minimum keys in any non-root node: t - 1 where t = ceil((MAX_KEYS+1)/2).
MIN_KEYS = (MAX_KEYS + 1) // 2 - 1

_HEADER = StructLayout("btree_header", [
    ("magic", "u64"),
    ("root_node", "u64"),
    ("count", "u64"),
])

_NODE = StructLayout("btree_node", [
    ("nkeys", "u64"),
    ("is_leaf", "u64"),
    ("keys", "u64:%d" % MAX_KEYS),
    ("values", "u64:%d" % MAX_KEYS),
    ("children", "u64:%d" % (MAX_KEYS + 1)),
])


class BTree:
    """Ordered u64 -> u64 map with range iteration and deletion."""

    def __init__(self, mem, allocator, root):
        self._mem = mem
        self._alloc = allocator
        self.root = root
        self._hdr = _HEADER.view(mem, root)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, mem, allocator):
        """Allocate and initialize an empty tree."""
        root = allocator.alloc(_HEADER.size)
        hdr = _HEADER.view(mem, root)
        instance = cls(mem, allocator, root)
        leaf = instance._new_node(is_leaf=True)
        hdr.set("root_node", leaf)
        hdr.set("count", 0)
        hdr.set("magic", BTREE_MAGIC)
        return instance

    @classmethod
    def attach(cls, mem, allocator, root):
        """Bind to an existing tree at ``root``."""
        instance = cls(mem, allocator, root)
        if instance._hdr.get("magic") != BTREE_MAGIC:
            raise ReproError("no B-tree at offset 0x%x" % root)
        return instance

    def _new_node(self, is_leaf):
        node = self._alloc.alloc(_NODE.size)
        view = _NODE.view(self._mem, node)
        view.set("nkeys", 0)
        view.set("is_leaf", 1 if is_leaf else 0)
        return node

    def _view(self, node):
        return _NODE.view(self._mem, node)

    # -- search ------------------------------------------------------------------

    def get(self, key, default=None):
        """Return the value for ``key`` (or ``default``)."""
        node = self._hdr.get("root_node")
        while True:
            view = self._view(node)
            nkeys = view.get("nkeys")
            index = 0
            while index < nkeys and view.get("keys", index=index) < key:
                index += 1
            if index < nkeys and view.get("keys", index=index) == key:
                return view.get("values", index=index)
            if view.get("is_leaf"):
                return default
            node = view.get("children", index=index)

    def __contains__(self, key):
        return self.get(key) is not None

    def __len__(self):
        return self._hdr.get("count")

    # -- insert ---------------------------------------------------------------------

    def put(self, key, value):
        """Insert or update; returns True if a new key was inserted."""
        root_node = self._hdr.get("root_node")
        if self._view(root_node).get("nkeys") == MAX_KEYS:
            new_root = self._new_node(is_leaf=False)
            self._view(new_root).set("children", root_node, index=0)
            self._split_child(new_root, 0)
            self._hdr.set("root_node", new_root)
            root_node = new_root
        inserted = self._insert_nonfull(root_node, key, value)
        if inserted:
            self._hdr.set("count", len(self) + 1)
        return inserted

    def _split_child(self, parent, child_index):
        """Split the full child at ``child_index`` of non-full ``parent``."""
        parent_view = self._view(parent)
        child = parent_view.get("children", index=child_index)
        child_view = self._view(child)
        is_leaf = bool(child_view.get("is_leaf"))
        sibling = self._new_node(is_leaf=is_leaf)
        sibling_view = self._view(sibling)
        mid = MAX_KEYS // 2
        mid_key = child_view.get("keys", index=mid)
        mid_value = child_view.get("values", index=mid)
        moved = 0
        for index in range(mid + 1, MAX_KEYS):
            sibling_view.set("keys", child_view.get("keys", index=index),
                             index=moved)
            sibling_view.set("values", child_view.get("values", index=index),
                             index=moved)
            moved += 1
        if not is_leaf:
            for index in range(mid + 1, MAX_KEYS + 1):
                sibling_view.set("children",
                                 child_view.get("children", index=index),
                                 index=index - (mid + 1))
        sibling_view.set("nkeys", moved)
        child_view.set("nkeys", mid)
        parent_keys = parent_view.get("nkeys")
        for index in range(parent_keys, child_index, -1):
            parent_view.set("keys", parent_view.get("keys", index=index - 1),
                            index=index)
            parent_view.set("values",
                            parent_view.get("values", index=index - 1),
                            index=index)
        for index in range(parent_keys + 1, child_index + 1, -1):
            parent_view.set("children",
                            parent_view.get("children", index=index - 1),
                            index=index)
        parent_view.set("keys", mid_key, index=child_index)
        parent_view.set("values", mid_value, index=child_index)
        parent_view.set("children", sibling, index=child_index + 1)
        parent_view.set("nkeys", parent_keys + 1)

    def _insert_nonfull(self, node, key, value):
        while True:
            view = self._view(node)
            nkeys = view.get("nkeys")
            index = 0
            while index < nkeys and view.get("keys", index=index) < key:
                index += 1
            if index < nkeys and view.get("keys", index=index) == key:
                view.set("values", value, index=index)
                return False
            if view.get("is_leaf"):
                for shift in range(nkeys, index, -1):
                    view.set("keys", view.get("keys", index=shift - 1),
                             index=shift)
                    view.set("values", view.get("values", index=shift - 1),
                             index=shift)
                view.set("keys", key, index=index)
                view.set("values", value, index=index)
                view.set("nkeys", nkeys + 1)
                return True
            child = view.get("children", index=index)
            if self._view(child).get("nkeys") == MAX_KEYS:
                self._split_child(node, index)
                separator = view.get("keys", index=index)
                if key == separator:
                    view.set("values", value, index=index)
                    return False
                if key > separator:
                    index += 1
            node = view.get("children", index=index)

    # -- delete (CLRS full algorithm) ----------------------------------------------

    def remove(self, key):
        """Delete ``key``; returns True if it was present."""
        if self.get(key) is None:
            return False
        root_node = self._hdr.get("root_node")
        self._delete(root_node, key)
        root_view = self._view(root_node)
        if root_view.get("nkeys") == 0 and not root_view.get("is_leaf"):
            # Shrink the tree: the root's sole child becomes the root.
            self._hdr.set("root_node", root_view.get("children", index=0))
            self._alloc.free(root_node, _NODE.size)
        self._hdr.set("count", len(self) - 1)
        return True

    def _delete(self, node, key):
        view = self._view(node)
        nkeys = view.get("nkeys")
        index = 0
        while index < nkeys and view.get("keys", index=index) < key:
            index += 1
        if index < nkeys and view.get("keys", index=index) == key:
            if view.get("is_leaf"):
                self._remove_at_leaf(view, index, nkeys)
                return
            self._delete_internal(node, index, key)
            return
        if view.get("is_leaf"):
            raise ReproError("key %d vanished mid-delete" % key)
        child_index = index
        child = self._ensure_rich_child(node, child_index)
        self._delete(child, key)

    @staticmethod
    def _remove_at_leaf(view, index, nkeys):
        for shift in range(index, nkeys - 1):
            view.set("keys", view.get("keys", index=shift + 1), index=shift)
            view.set("values", view.get("values", index=shift + 1),
                     index=shift)
        view.set("nkeys", nkeys - 1)

    def _delete_internal(self, node, index, key):
        view = self._view(node)
        left = view.get("children", index=index)
        right = view.get("children", index=index + 1)
        if self._view(left).get("nkeys") > MIN_KEYS:
            pred_key, pred_value = self._max_of(left)
            view.set("keys", pred_key, index=index)
            view.set("values", pred_value, index=index)
            self._delete(left, pred_key)
        elif self._view(right).get("nkeys") > MIN_KEYS:
            succ_key, succ_value = self._min_of(right)
            view.set("keys", succ_key, index=index)
            view.set("values", succ_value, index=index)
            self._delete(right, succ_key)
        else:
            self._merge_children(node, index)
            self._delete(left, key)

    def _max_of(self, node):
        while True:
            view = self._view(node)
            nkeys = view.get("nkeys")
            if view.get("is_leaf"):
                return (view.get("keys", index=nkeys - 1),
                        view.get("values", index=nkeys - 1))
            node = view.get("children", index=nkeys)

    def _min_of(self, node):
        while True:
            view = self._view(node)
            if view.get("is_leaf"):
                return view.get("keys", index=0), view.get("values", index=0)
            node = view.get("children", index=0)

    def _ensure_rich_child(self, node, child_index):
        """Make sure child has > MIN_KEYS keys before descending into it."""
        view = self._view(node)
        child = view.get("children", index=child_index)
        if self._view(child).get("nkeys") > MIN_KEYS:
            return child
        nkeys = view.get("nkeys")
        if child_index > 0:
            left = view.get("children", index=child_index - 1)
            if self._view(left).get("nkeys") > MIN_KEYS:
                self._rotate_right(node, child_index - 1)
                return child
        if child_index < nkeys:
            right = view.get("children", index=child_index + 1)
            if self._view(right).get("nkeys") > MIN_KEYS:
                self._rotate_left(node, child_index)
                return child
        # Merge with a sibling; the merged node is the left one.
        if child_index < nkeys:
            self._merge_children(node, child_index)
            return child
        self._merge_children(node, child_index - 1)
        return view.get("children", index=child_index - 1)

    def _rotate_right(self, node, sep_index):
        """Move a key from the left sibling up, and the separator down."""
        view = self._view(node)
        left = view.get("children", index=sep_index)
        right = view.get("children", index=sep_index + 1)
        left_view = self._view(left)
        right_view = self._view(right)
        right_keys = right_view.get("nkeys")
        for shift in range(right_keys, 0, -1):
            right_view.set("keys", right_view.get("keys", index=shift - 1),
                           index=shift)
            right_view.set("values", right_view.get("values", index=shift - 1),
                           index=shift)
        if not right_view.get("is_leaf"):
            for shift in range(right_keys + 1, 0, -1):
                right_view.set("children",
                               right_view.get("children", index=shift - 1),
                               index=shift)
        right_view.set("keys", view.get("keys", index=sep_index), index=0)
        right_view.set("values", view.get("values", index=sep_index), index=0)
        left_keys = left_view.get("nkeys")
        if not right_view.get("is_leaf"):
            right_view.set("children",
                           left_view.get("children", index=left_keys), index=0)
        view.set("keys", left_view.get("keys", index=left_keys - 1),
                 index=sep_index)
        view.set("values", left_view.get("values", index=left_keys - 1),
                 index=sep_index)
        left_view.set("nkeys", left_keys - 1)
        right_view.set("nkeys", right_keys + 1)

    def _rotate_left(self, node, sep_index):
        """Move a key from the right sibling up, and the separator down."""
        view = self._view(node)
        left = view.get("children", index=sep_index)
        right = view.get("children", index=sep_index + 1)
        left_view = self._view(left)
        right_view = self._view(right)
        left_keys = left_view.get("nkeys")
        left_view.set("keys", view.get("keys", index=sep_index),
                      index=left_keys)
        left_view.set("values", view.get("values", index=sep_index),
                      index=left_keys)
        if not left_view.get("is_leaf"):
            left_view.set("children", right_view.get("children", index=0),
                          index=left_keys + 1)
        view.set("keys", right_view.get("keys", index=0), index=sep_index)
        view.set("values", right_view.get("values", index=0), index=sep_index)
        right_keys = right_view.get("nkeys")
        for shift in range(right_keys - 1):
            right_view.set("keys", right_view.get("keys", index=shift + 1),
                           index=shift)
            right_view.set("values", right_view.get("values", index=shift + 1),
                           index=shift)
        if not right_view.get("is_leaf"):
            for shift in range(right_keys):
                right_view.set("children",
                               right_view.get("children", index=shift + 1),
                               index=shift)
        right_view.set("nkeys", right_keys - 1)
        left_view.set("nkeys", left_keys + 1)

    def _merge_children(self, node, sep_index):
        """Merge children around separator ``sep_index`` into the left one."""
        view = self._view(node)
        left = view.get("children", index=sep_index)
        right = view.get("children", index=sep_index + 1)
        left_view = self._view(left)
        right_view = self._view(right)
        left_keys = left_view.get("nkeys")
        right_keys = right_view.get("nkeys")
        left_view.set("keys", view.get("keys", index=sep_index),
                      index=left_keys)
        left_view.set("values", view.get("values", index=sep_index),
                      index=left_keys)
        for index in range(right_keys):
            left_view.set("keys", right_view.get("keys", index=index),
                          index=left_keys + 1 + index)
            left_view.set("values", right_view.get("values", index=index),
                          index=left_keys + 1 + index)
        if not left_view.get("is_leaf"):
            for index in range(right_keys + 1):
                left_view.set("children",
                              right_view.get("children", index=index),
                              index=left_keys + 1 + index)
        left_view.set("nkeys", left_keys + 1 + right_keys)
        nkeys = view.get("nkeys")
        for shift in range(sep_index, nkeys - 1):
            view.set("keys", view.get("keys", index=shift + 1), index=shift)
            view.set("values", view.get("values", index=shift + 1),
                     index=shift)
        for shift in range(sep_index + 1, nkeys):
            view.set("children", view.get("children", index=shift + 1),
                     index=shift)
        view.set("nkeys", nkeys - 1)
        self._alloc.free(right, _NODE.size)

    # -- iteration ------------------------------------------------------------------

    def items(self, lo=None, hi=None):
        """Yield ``(key, value)`` pairs in key order, within ``[lo, hi]``."""
        for key, value in self._walk(self._hdr.get("root_node")):
            if lo is not None and key < lo:
                continue
            if hi is not None and key > hi:
                return
            yield key, value

    def _walk(self, node):
        view = self._view(node)
        nkeys = view.get("nkeys")
        if view.get("is_leaf"):
            for index in range(nkeys):
                yield (view.get("keys", index=index),
                       view.get("values", index=index))
            return
        for index in range(nkeys):
            yield from self._walk(view.get("children", index=index))
            yield (view.get("keys", index=index),
                   view.get("values", index=index))
        yield from self._walk(view.get("children", index=nkeys))

    def keys(self):
        """Yield keys in order."""
        for key, _value in self.items():
            yield key

    def to_dict(self):
        """Materialize as a Python dict (verification helper)."""
        return dict(self.items())

    def check_order(self):
        """Verify in-order keys are strictly increasing; raises otherwise."""
        previous = None
        for key in self.keys():
            if previous is not None and key <= previous:
                raise ReproError("B-tree order violated: %d after %d"
                                 % (key, previous))
            previous = key
        return True

    def __repr__(self):
        return "BTree(root=0x%x, len=%d)" % (self.root, len(self))
