"""Volatile data-structure code reused black-box across all backends."""

from repro.structures.blobmap import BlobMap
from repro.structures.btree import BTree
from repro.structures.hashmap import HashMap
from repro.structures.linkedlist import PersistentList
from repro.structures.ringbuffer import RingBuffer
from repro.structures.vector import PersistentVector

__all__ = [
    "BlobMap",
    "BTree",
    "HashMap",
    "PersistentList",
    "PersistentVector",
    "RingBuffer",
]
