"""Simulated clients: deterministic request streams over sim-time.

Each client owns a YCSB-derived operation script (get/put/remove with
periodic persist requests — the durability acknowledgements of a
group-commit store), a forked :class:`~repro.sim.rng.DeterministicRng`
for its think times and retry jitter, and a tiny state machine: it has at
most one request outstanding, and on a typed failure it backs off and
retries the *same* operation until its attempt budget runs out.

Nothing here reads wall-clock or ambient entropy: adding a client, or
reordering completions, never perturbs another client's key stream
(each stream is an independent RNG fork).
"""

from repro.errors import ConfigError, ServeError
from repro.sim.rng import DeterministicRng
from repro.workloads.ycsb import YcsbWorkload


class Request:
    """One in-flight client request.

    ``submitted_ns`` is stamped at first submission of the current
    attempt; latency is measured from there to completion, so a retried
    request's reported latency covers only the attempt that succeeded —
    the queueing/backoff cost of failed attempts shows up in the error
    counters, not the latency histogram.
    """

    __slots__ = ("client_id", "seq", "kind", "key", "value",
                 "submitted_ns", "enqueued_ns", "attempt",
                 "waiting_shards", "failed")

    def __init__(self, client_id, seq, kind, key=None, value=None):
        self.client_id = client_id
        self.seq = seq
        self.kind = kind
        self.key = key
        self.value = value
        self.submitted_ns = 0.0
        self.enqueued_ns = 0.0
        self.attempt = 0
        #: Shard batchers this persist request is still parked in
        #: (group commit fans a persist out to every shard it must cover).
        self.waiting_shards = 0
        #: Set when the request failed while parked (crash): flushes skip it.
        self.failed = False

    def __repr__(self):
        return "Request(c%d#%d %s key=%r)" % (
            self.client_id, self.seq, self.kind, self.key)


class RetryPolicy:
    """Deterministic exponential backoff with jitter for client retries.

    The schedule mirrors the link layer's
    (:class:`~repro.cxl.lossy.LossyLink`): ``base * 2^attempt`` capped at
    ``cap``, with up to ``jitter`` of each step shaved off by the
    caller's RNG so retrying clients do not stampede in lockstep.
    """

    def __init__(self, base_ns=50_000.0, cap_ns=5_000_000.0, jitter=0.5,
                 max_attempts=8):
        if base_ns <= 0 or cap_ns < base_ns:
            raise ConfigError("retry backoff needs 0 < base_ns <= cap_ns")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigError("retry jitter must be in [0, 1]")
        if max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        self.base_ns = base_ns
        self.cap_ns = cap_ns
        self.jitter = jitter
        self.max_attempts = max_attempts

    def backoff_ns(self, attempt, rng):
        """Backoff before retry number ``attempt`` (0-based)."""
        step = min(self.base_ns * (2 ** attempt), self.cap_ns)
        if self.jitter:
            step -= step * self.jitter * rng.random()
        return step


def build_client_script(mix, record_count, op_count, seed,
                        delete_fraction=0.05, persist_every=8):
    """One client's operation list: ``(kind, key, value)`` tuples.

    Derived from a :class:`~repro.workloads.ycsb.YcsbWorkload` run trace;
    a ``delete_fraction`` of updates become removes (YCSB has no deletes,
    serving drills need them), and a persist request — the group-commit
    durability ack — is issued after every ``persist_every`` mutations
    and once at the end of the script.
    """
    workload = YcsbWorkload(mix=mix, record_count=record_count,
                            op_count=op_count, seed=seed)
    rng = DeterministicRng(seed).fork("script")
    script = []
    mutations = 0
    for op in workload.run_trace():
        if op.kind == "put":
            if delete_fraction and rng.random() < delete_fraction:
                script.append(("remove", op.key, None))
            else:
                script.append(("put", op.key, op.value))
            mutations += 1
            if persist_every and mutations % persist_every == 0:
                script.append(("persist", None, None))
        else:
            script.append(("get", op.key, None))
    if not script or script[-1][0] != "persist":
        script.append(("persist", None, None))
    return script


class SimClient:
    """One closed-loop client: at most one outstanding request."""

    def __init__(self, client_id, script, rng, retry_policy,
                 mean_gap_ns=2_000.0):
        self.client_id = client_id
        self.script = script
        self.rng = rng
        self.retry = retry_policy
        self.mean_gap_ns = mean_gap_ns
        self.cursor = 0
        self.attempt = 0
        self.next_arrival_ns = self._think_gap()
        #: Ops abandoned after the retry budget; the drill's error budget.
        self.abandoned = 0

    def _think_gap(self):
        """Uniform jittered think time with the configured mean."""
        return self.mean_gap_ns * 2.0 * self.rng.random()

    @property
    def done(self):
        """True when the client's script is exhausted."""
        return self.cursor >= len(self.script)

    def ready(self, now_ns):
        """True if this client wants to submit a request at ``now_ns``."""
        return not self.done and self.next_arrival_ns <= now_ns

    def make_request(self, seq, now_ns):
        """Materialize the current script op as a :class:`Request`."""
        kind, key, value = self.script[self.cursor]
        request = Request(self.client_id, seq, kind, key, value)
        request.submitted_ns = now_ns
        request.attempt = self.attempt
        return request

    def on_success(self, now_ns):
        """The outstanding request completed: move to the next op."""
        self.cursor += 1
        self.attempt = 0
        self.next_arrival_ns = now_ns + self._think_gap()

    def on_failure(self, error, now_ns):
        """The outstanding request failed with typed ``error``.

        Retryable (any :class:`~repro.errors.ServeError`) failures back
        off and re-issue the same op until the attempt budget is spent;
        then the op is abandoned and the script moves on. Returns True
        if the op will be retried.
        """
        if isinstance(error, ServeError) \
                and self.attempt + 1 < self.retry.max_attempts:
            self.attempt += 1
            self.next_arrival_ns = now_ns + self.retry.backoff_ns(
                self.attempt, self.rng)
            return True
        self.abandoned += 1
        self.cursor += 1
        self.attempt = 0
        self.next_arrival_ns = now_ns + self._think_gap()
        return False
