"""A set-associative cache array.

Stores :class:`~repro.cache.line.CacheLine` objects; no coherence state
(see :mod:`repro.cache.coherence`) and no timing (the hierarchy charges
latency). Evictions are returned to the caller, which decides where the
victim goes (next level, home, or nowhere).
"""

from dataclasses import dataclass

from repro.cache.line import CacheLine
from repro.cache.replacement import make_policy
from repro.errors import ConfigError
from repro.util.constants import CACHE_LINE_SIZE, is_power_of_two
from repro.util.stats import StatGroup

#: log2(line size), hoisted so set indexing is a shift, not a division.
_LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1


@dataclass
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    policy: str = "lru"

    @property
    def num_sets(self):
        """Number of sets this geometry yields."""
        return self.size_bytes // (self.ways * CACHE_LINE_SIZE)

    def validate(self, name):
        """Raise :class:`ConfigError` on an impossible geometry."""
        if self.size_bytes <= 0 or self.ways <= 0:
            raise ConfigError("%s: size and ways must be positive" % name)
        if self.size_bytes % (self.ways * CACHE_LINE_SIZE) != 0:
            raise ConfigError("%s: size must divide into ways x lines" % name)
        if not is_power_of_two(self.num_sets):
            raise ConfigError("%s: number of sets must be a power of two" % name)
        return self


class SetAssociativeCache:
    """A data array of ``num_sets`` sets, each holding up to ``ways`` lines."""

    def __init__(self, name, config):
        config.validate(name)
        self.name = name
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets = [dict() for _ in range(self.num_sets)]
        self._policies = [make_policy(config.policy) for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1
        self.stats = StatGroup(name)
        # Per-access counters bound once (hot-path-stat-lookup rule).
        self._c_hits = self.stats.counter("hits")
        self._c_misses = self.stats.counter("misses")
        self._c_evictions = self.stats.counter("evictions")
        self._c_invalidations = self.stats.counter("invalidations")

    def _index(self, line_addr):
        return (line_addr >> _LINE_SHIFT) & self._set_mask

    def lookup(self, line_addr):
        """Return the resident line (refreshing recency) or None."""
        index = (line_addr >> _LINE_SHIFT) & self._set_mask
        line = self._sets[index].get(line_addr)
        if line is not None:
            self._policies[index].on_access(line_addr)
            self._c_hits.value += 1
        else:
            self._c_misses.value += 1
        return line

    def peek(self, line_addr):
        """Return the resident line without touching recency or stats."""
        return self._sets[(line_addr >> _LINE_SHIFT) & self._set_mask] \
            .get(line_addr)

    def insert(self, line):
        """Insert ``line``; return the evicted victim line or None.

        If the line address is already resident, its entry is replaced in
        place (data merged by the caller beforehand) and nothing is
        evicted.
        """
        index = (line.addr >> _LINE_SHIFT) & self._set_mask
        bucket = self._sets[index]
        policy = self._policies[index]
        victim = None
        if line.addr in bucket:
            policy.on_access(line.addr)
        else:
            if len(bucket) >= self.ways:
                victim_addr = policy.victim()
                victim = bucket.pop(victim_addr)
                policy.on_remove(victim_addr)
                self._c_evictions.add(1)
            policy.on_insert(line.addr)
        bucket[line.addr] = line
        return victim

    def remove(self, line_addr):
        """Remove and return the line (None if absent)."""
        index = (line_addr >> _LINE_SHIFT) & self._set_mask
        line = self._sets[index].pop(line_addr, None)
        if line is not None:
            self._policies[index].on_remove(line_addr)
            self._c_invalidations.add(1)
        return line

    def clear(self):
        """Drop every line (crash / reset)."""
        for index in range(self.num_sets):
            self._sets[index].clear()
            self._policies[index] = make_policy(self.config.policy)

    def lines(self):
        """Iterate over all resident lines (no recency effect)."""
        for bucket in self._sets:
            yield from bucket.values()

    def __len__(self):
        return sum(len(bucket) for bucket in self._sets)

    def __contains__(self, line_addr):
        return self.peek(line_addr) is not None

    def __repr__(self):
        return "SetAssociativeCache(%s, %d/%d lines)" % (
            self.name, len(self), self.num_sets * self.ways)


def make_line(line_addr, data, dirty=False):
    """Convenience constructor matching :class:`CacheLine`."""
    return CacheLine(line_addr, data, dirty)
