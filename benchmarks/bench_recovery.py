"""abl-recovery: recovery time vs uncommitted-epoch size (paper §3.4).

Recovery cost is proportional to the durable undo records of the
interrupted epoch. Sweeps the number of unpersisted mutations before the
crash and reports records rolled back plus recovery wall time (simulated
work is byte-copying, so we report the record count and measured Python
time as a proxy).
"""

import time

from benchmarks.conftest import bench_backend
from repro.analysis.report import Table
from repro.workloads.keys import KeySequence

RECORDS = 4000
SWEEP = (0, 100, 500, 2000)


def run_point(unpersisted_ops):
    backend = bench_backend("pax")
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        backend.put(load.next(), index)
    backend.persist()
    expected = backend.to_dict()
    keys = KeySequence(RECORDS, "uniform", seed=2)
    for index in range(unpersisted_ops):
        backend.put(keys.next(), index + RECORDS)
    # Give background draining time so records are durable (worst case
    # for recovery: everything must be rolled back).
    backend.machine.clock.advance(50_000_000)
    backend.crash()
    wall_start = time.perf_counter()
    rolled_back = backend.restart()
    wall = time.perf_counter() - wall_start
    assert backend.to_dict() == expected
    return {"rolled_back": rolled_back, "wall_s": wall}


def run():
    return {n: run_point(n) for n in SWEEP}


def test_recovery_scales_with_epoch_size(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-recovery: rollback work vs uncommitted ops",
                  ["unpersisted ops", "records rolled back",
                   "recovery wall (ms)"])
    for n in SWEEP:
        table.add_row(n, results[n]["rolled_back"],
                      results[n]["wall_s"] * 1e3)
    table.show()
    assert results[0]["rolled_back"] == 0
    counts = [results[n]["rolled_back"] for n in SWEEP]
    assert counts == sorted(counts)
    assert results[2000]["rolled_back"] > results[100]["rolled_back"]
