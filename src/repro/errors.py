"""Exception hierarchy for the PAX reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one base class. Subclasses are grouped by the
subsystem that raises them.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AddressError(ReproError):
    """An access targeted an unmapped, misaligned, or out-of-range address."""


class ProtectionError(ReproError):
    """A store hit a read-only page (used by the mprotect baseline)."""

    def __init__(self, addr, message=None):
        self.addr = addr
        super().__init__(message or "write to protected page at 0x%x" % addr)


class PoolError(ReproError):
    """A pool file is missing, corrupt, or version-incompatible."""


class LogError(ReproError):
    """The undo log is corrupt or an append exceeded its capacity."""


class AllocationError(ReproError):
    """The persistent allocator could not satisfy a request."""


class ProtocolError(ReproError):
    """A coherence/CXL message violated the protocol state machine."""


class CrashedError(ReproError):
    """An operation was attempted on a machine that has simulated a crash."""


class LinkError(ReproError):
    """A link-level transfer failed permanently (retransmit budget spent)."""


class RecoveryError(ReproError):
    """Recovery could not restore a consistent snapshot.

    Carries the partial :class:`~repro.core.recovery.RecoveryReport` (when
    one exists) so callers can see how far recovery got — how many records
    were valid, where the log went bad, which epoch slots survived —
    before the error was raised.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class ConfigError(ReproError):
    """A component was constructed with invalid configuration."""


class FaultPlanError(ConfigError):
    """A fault plan or chaos timeline is structurally invalid.

    Raised at *build* time — an overlapping or zero-width fault window,
    an unknown window kind, a window missing its payload — so a bad
    drill schedule fails before any traffic is admitted, never mid-run.
    """


class RecoveryTimeout(ReproError):
    """Recovery finished, but took longer than its deadline.

    The pool *is* consistent when this is raised — rollback always runs
    to completion (aborting mid-rollback would leave a torn snapshot).
    The timeout is an SLO signal for serving harnesses: recovery blew
    its budget. Carries the full
    :class:`~repro.core.recovery.RecoveryReport` (including
    ``elapsed_ns``) so callers can see where the time went.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class ServeError(ReproError):
    """Base class for serving-harness request failures (:mod:`repro.serve`).

    Subclasses are the typed verdicts a request can fail with; clients
    decide retry behaviour by type, never by string matching.
    """


class Overload(ServeError):
    """A request was rejected at admission: the bounded queue is full."""


class ServeTimeout(ServeError):
    """A request waited past its deadline before the server reached it."""


class ReadOnlyError(ServeError):
    """A write was rejected while the harness is degraded to read-only
    mode (device or link marked unhealthy)."""


class ServeUnavailable(ServeError):
    """A request was in flight when the machine crashed; the client may
    retry after recovery."""


class StructureError(ReproError, IndexError):
    """A persistent data structure was asked for something it cannot do
    (pop from empty, index out of range, enqueue to a full ring).

    Also an :class:`IndexError` so the structures keep Python's container
    protocol (``__getitem__`` ends iteration with IndexError) while still
    being catchable as :class:`ReproError`.
    """


class StatsError(ReproError):
    """A statistics or reporting primitive was misused (e.g. a counter
    asked to decrease, or a table row with the wrong arity)."""


class SimulationError(ReproError):
    """Simulated-time machinery was misused (clock moved backwards,
    negative transfer sizes, a stopwatch stopped before starting)."""


class SanitizerError(ReproError):
    """PaxSan detected a persist-ordering violation.

    Raised by :mod:`repro.sanitizer` when the dynamic persist-state
    machine observes an illegal transition — a store reaching PM with no
    undo record covering it, an epoch committed while modified lines were
    still volatile, or a flush/fence ordering inversion. Carries the rule
    id, the offending line address, and the epoch/transaction so findings
    are located, not just described.
    """

    def __init__(self, rule, message, addr=None, epoch=None):
        self.rule = rule
        self.addr = addr
        self.epoch = epoch
        where = ""
        if addr is not None:
            where += " [line 0x%x]" % addr
        if epoch is not None:
            where += " [epoch %d]" % epoch
        super().__init__("%s: %s%s" % (rule, message, where))


class LintError(ReproError):
    """The static linter was misconfigured (unknown rule id, bad plugin,
    unreadable target). Lint *findings* are data, not exceptions."""


class TraceError(ReproError):
    """Base class for trace record/replay failures (repro.replay)."""


class TraceFormatError(TraceError):
    """A trace file is unreadable: bad magic, unsupported version,
    truncated columns, or a CRC mismatch. Raised on load, never on
    replay — a trace that decodes is replayable by construction."""


class TraceUnsupportedError(TraceError):
    """The workload did something recording cannot capture faithfully
    (crash/restart, pipelined persists, store hooks). Callers should
    fall back to the per-access path; see docs/performance.md."""
