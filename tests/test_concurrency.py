"""Interleaved execution: coherence under concurrency, and the §3.5 hazard."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.concurrency import InterleavedRunner
from repro.errors import ReproError
from repro.structures import HashMap
from repro.structures.hashmap import HashMap as HashMapClass
from tests.conftest import make_pax_pool


class TestScheduler:
    def test_two_threads_complete(self, pax_pool):
        runner = InterleavedRunner(pax_pool.machine, seed=1)
        log = []
        runner.spawn("a", lambda mem: log.append(("a", mem.read_u64(4096))))
        runner.spawn("b", lambda mem: log.append(("b", mem.read_u64(4160))))
        runner.run()
        assert runner.all_done
        assert sorted(name for name, _v in log) == ["a", "b"]

    def test_interleaving_is_deterministic(self):
        def trace_for(seed):
            pool = make_pax_pool()
            runner = InterleavedRunner(pool.machine, seed=seed)
            order = []

            def worker(tag):
                def fn(mem):
                    for index in range(5):
                        mem.write_u64(4096 + hash(tag) % 7 * 512
                                      + index * 64, index)
                        order.append(tag)
                return fn

            runner.spawn("x", worker("x"))
            runner.spawn("y", worker("y"))
            runner.run()
            return order

        assert trace_for(7) == trace_for(7)
        assert trace_for(7) != trace_for(8) or True   # usually differs

    def test_thread_exception_surfaces(self, pax_pool):
        runner = InterleavedRunner(pax_pool.machine, seed=1)

        def boom(mem):
            mem.read_u64(4096)
            raise ValueError("worker exploded")

        runner.spawn("bad", boom)
        with pytest.raises(ValueError):
            runner.run()

    def test_duplicate_name_rejected(self, pax_pool):
        runner = InterleavedRunner(pax_pool.machine, seed=1)
        runner.spawn("a", lambda mem: None)
        with pytest.raises(ReproError):
            runner.spawn("a", lambda mem: None)

    def test_run_until_pauses_world(self, pax_pool):
        runner = InterleavedRunner(pax_pool.machine, seed=1)
        progress = {"count": 0}

        def worker(mem):
            for index in range(20):
                mem.write_u64(4096 + index * 64, index)
                progress["count"] += 1

        runner.spawn("w", worker)
        runner.run_until(lambda: progress["count"] >= 5)
        paused_at = progress["count"]
        assert 5 <= paused_at < 20
        runner.run()
        assert progress["count"] == 20


class TestConcurrentStructureUse:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10000))
    def test_interleaved_workers_never_see_garbage(self, seed):
        # The structure itself is NOT thread-safe (the paper §3.5 requires
        # thread-safe code, which a plain chained map is not): racing
        # inserts may lose a node or a count update. What *memory
        # coherence* must still guarantee, under every interleaving, is
        # value integrity: every key that survives maps to the value some
        # worker wrote, no invented keys, and iteration agrees with get().
        pool = make_pax_pool(num_cores=2)
        table = pool.persistent(HashMap, capacity=256)
        runner = InterleavedRunner(pool.machine, seed=seed)

        def worker(base, core):
            def fn(mem):
                view = HashMapClass(mem, pool.allocator, table.root)
                for key in range(base, base + 15):
                    view.put(key, key)
            return fn

        runner.spawn("w0", worker(0, 0), core_id=0)
        runner.spawn("w1", worker(1000, 1000), core_id=1)
        runner.run()
        valid_keys = set(range(15)) | set(range(1000, 1015))
        seen = {}
        for key, value in table.items():
            assert key in valid_keys, "invented key %d" % key
            assert value == key, "corrupted value for key %d" % key
            assert key not in seen, "duplicate key %d" % key
            seen[key] = value
        for key, value in seen.items():
            assert table.get(key) == value
        # Each worker's own writes are never lost wholesale.
        assert len(seen) >= 15

    def test_same_key_last_writer_wins_some_order(self, pax_pool):
        pool = pax_pool
        table = pool.persistent(HashMap, capacity=64)
        table.put(7, 0)
        runner = InterleavedRunner(pool.machine, seed=3)
        runner.spawn("a", lambda mem: HashMapClass(
            mem, pool.allocator, table.root).put(7, 111))
        runner.spawn("b", lambda mem: HashMapClass(
            mem, pool.allocator, table.root).put(7, 222))
        runner.run()
        assert table.get(7) in (111, 222)


class TestSection35Hazard:
    def test_persist_mid_operation_snapshots_partial_effects(self):
        # The exact failure §3.5 warns about, made visible: freeze a put()
        # half-way, persist (bypassing the libpax guard), crash, recover —
        # the snapshot contains a half-applied operation.
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=64)
        for key in range(5):
            table.put(key, key)
        pool.persist()
        runner = InterleavedRunner(pool.machine, seed=2)
        progress = {"accesses": 0}

        def mutator(mem):
            view = HashMapClass(mem, pool.allocator, table.root)
            view.put(99, 990)
            progress["accesses"] += 1

        runner.spawn("m", mutator)
        # Advance a handful of raw memory accesses: inside put(), before
        # completion.
        for _ in range(6):
            runner.step("m")
        assert progress["accesses"] == 0      # op still in flight
        pool.persist()                        # §3.5 contract violation!
        runner.cancel()
        pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        # The snapshot is NOT the pre-op state: partial effects (an
        # allocated-but-unlinked node, or a bumped allocator pointer)
        # were persisted. We assert the observable signature: the
        # allocator high-water mark moved beyond the committed base even
        # though key 99 never became visible.
        assert recovered.get(99) is None
        assert pool.allocator.bump > 0
        # And the guard exists precisely to prevent this:
        with pool.operation():
            with pytest.raises(Exception):
                pool.persist()
