"""Host-side and device-side protocol ports.

:class:`DevicePort` is what the host cache hierarchy talks to: it owns the
link and the adapter, converts bus ops into CXL requests, delivers them to
the device's message handler, validates the response against the protocol,
and returns ``(payload, total_latency_ns)``.

:class:`HostSnoopPort` is the reverse direction: the device uses it during
``persist()`` to issue SnpData/SnpInv to the host and receive the host's
snoop response, with link latency charged both ways.
"""

from repro.cxl import messages as msg
from repro.cxl.adapter import BusOp, CxlAdapter
from repro.util.stats import StatGroup


class DevicePort:
    """Host -> device request path."""

    def __init__(self, link, device):
        self.link = link
        self.device = device
        self.adapter = CxlAdapter()
        self.stats = StatGroup("device_port")
        # Per-transaction counter bound once (hot-path-stat-lookup rule).
        self._c_transactions = self.stats.counter("transactions")

    def _transact(self, op, addr, data=None):
        request = self.adapter.to_cxl(op, addr, data)
        latency = self.link.send_h2d(request)
        response, service_ns = self.device.handle_message(request)
        self.adapter.check_response(request, response)
        latency += service_ns
        latency += self.link.send_d2h(response)
        self._c_transactions.add(1)
        return response, latency

    def read_shared(self, addr):
        """Load miss; returns ``(line_data, latency_ns)``."""
        response, latency = self._transact(BusOp.READ_MISS, addr)
        return response.data, latency

    def read_own(self, addr, need_data):
        """Store miss or upgrade; returns ``(line_data_or_None, latency_ns)``."""
        op = BusOp.WRITE_MISS if need_data else BusOp.WRITE_UPGRADE
        response, latency = self._transact(op, addr)
        payload = response.data if isinstance(response, msg.DataResponse) else None
        return payload, latency

    def evict_dirty(self, addr, data):
        """Dirty LLC victim travels to the device; returns latency_ns."""
        _response, latency = self._transact(BusOp.EVICT_DIRTY, addr, data)
        return latency

    def evict_clean(self, addr):
        """Clean-eviction hint; returns latency_ns."""
        _response, latency = self._transact(BusOp.EVICT_CLEAN, addr)
        return latency


class MemDevicePort:
    """Host -> device path for a CXL.mem device (paper §6).

    No coherence vocabulary: just line reads and line writes. The device
    cannot snoop back — there is no device-to-host request channel in
    CXL.mem — which is exactly the visibility gap §6 discusses.
    """

    def __init__(self, link, device):
        self.link = link
        self.device = device
        self.stats = StatGroup("mem_device_port")
        # Per-access counters bound once (hot-path-stat-lookup rule).
        self._c_mem_reads = self.stats.counter("mem_reads")
        self._c_mem_writes = self.stats.counter("mem_writes")

    def read_line(self, addr):
        """MemRd; returns ``(line_data, latency_ns)``."""
        request = msg.MemRd(addr)
        latency = self.link.send_h2d(request)
        response, service_ns = self.device.handle_message(request)
        latency += service_ns + self.link.send_d2h(response)
        self._c_mem_reads.add(1)
        return response.data, latency

    def write_line(self, addr, data):
        """MemWr; returns latency_ns."""
        request = msg.MemWr(addr, data)
        latency = self.link.send_h2d(request)
        response, service_ns = self.device.handle_message(request)
        latency += service_ns + self.link.send_d2h(response)
        self._c_mem_writes.add(1)
        return latency


class HostSnoopPort:
    """Device -> host snoop path (used by ``persist()``)."""

    def __init__(self, link, hierarchy):
        self.link = link
        self.hierarchy = hierarchy
        self.stats = StatGroup("host_snoop_port")
        # Per-snoop counters bound once (hot-path-stat-lookup rule).
        self._c_snp_data = self.stats.counter("snp_data")
        self._c_dirty_pulls = self.stats.counter("dirty_pulls")
        self._c_snp_inv = self.stats.counter("snp_inv")

    def snoop_shared(self, addr):
        """Issue SnpData; returns ``(data_or_None, latency_ns)``.

        ``data`` is the host's modified copy if any cache held the line
        dirty, else None (the device's own copy is current).
        """
        request = msg.SnpData(addr)
        latency = self.link.send_d2h(request)
        fresh = self.hierarchy.snoop_shared(addr)
        response = msg.SnpResponse(addr, fresh)
        latency += self.link.send_h2d(response)
        self._c_snp_data.add(1)
        if fresh is not None:
            self._c_dirty_pulls.add(1)
        return fresh, latency

    def snoop_invalidate(self, addr):
        """Issue SnpInv; returns ``(data_or_None, latency_ns)``."""
        request = msg.SnpInv(addr)
        latency = self.link.send_d2h(request)
        fresh = self.hierarchy.snoop_invalidate(addr)
        response = msg.SnpResponse(addr, fresh)
        latency += self.link.send_h2d(response)
        self._c_snp_inv.add(1)
        return fresh, latency
