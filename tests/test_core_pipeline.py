"""Pipelined (overlapping-epoch) persist — the §6 extension."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import PaxConfig
from repro.structures import HashMap
from tests.conftest import make_pax_pool


def slow_drain_pool():
    """A pool whose device drains so slowly that nothing becomes durable
    without explicit simulated idle time — makes pipelining observable."""
    return make_pax_pool(pax_config=PaxConfig(log_drain_bps=2e4,
                                              writeback_drain_bps=2e4))


class TestBasicPipelining:
    def test_async_persist_blocks_less_than_blocking(self):
        pool_a = slow_drain_pool()
        pool_b = slow_drain_pool()
        table_a = pool_a.persistent(HashMap, capacity=64)
        table_b = pool_b.persistent(HashMap, capacity=64)
        for key in range(100):
            table_a.put(key, key)
            table_b.put(key, key)
        start_a = pool_a.machine.now_ns
        pool_a.persist()
        blocking_ns = pool_a.machine.now_ns - start_a
        start_b = pool_b.machine.now_ns
        pool_b.persist_async()
        async_ns = pool_b.machine.now_ns - start_b
        assert async_ns < blocking_ns

    def test_commit_completes_in_background(self):
        pool = slow_drain_pool()
        table = pool.persistent(HashMap, capacity=64)
        for key in range(20):
            table.put(key, key)
        epoch_before = pool.committed_epoch
        flight = pool.persist_async()
        assert not flight.committed
        assert pool.committed_epoch == epoch_before
        # Simulated time passes; background draining retires the epoch.
        pool.machine.clock.advance(5_000_000_000)
        assert flight.committed
        assert pool.committed_epoch > epoch_before

    def test_barrier_forces_commit(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        for key in range(20):
            table.put(key, key)
        flight = pax_pool.persist_async()
        pax_pool.persist_barrier()
        assert flight.committed

    def test_mutations_continue_during_flight(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        for key in range(20):
            table.put(key, key)
        pax_pool.persist_async()
        # The application keeps mutating the next epoch immediately.
        for key in range(20, 40):
            table.put(key, key)
        pax_pool.persist_barrier()
        pax_pool.persist()
        assert len(table) == 40

    def test_epochs_commit_in_order(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        flights = []
        for batch in range(3):
            for key in range(batch * 10, batch * 10 + 10):
                table.put(key, key)
            flights.append(pax_pool.persist_async())
        pax_pool.persist_barrier()
        assert all(flight.committed for flight in flights)
        assert flights[0].epoch < flights[1].epoch < flights[2].epoch

    def test_blocking_persist_is_a_barrier(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        table.put(1, 1)
        flight = pax_pool.persist_async()
        table.put(2, 2)
        pax_pool.persist()
        assert flight.committed


class TestPipelinedCrashConsistency:
    def test_crash_with_uncommitted_flight_rolls_back(self):
        pool = slow_drain_pool()
        table = pool.persistent(HashMap, capacity=64)
        for key in range(10):
            table.put(key, key)
        pool.persist()
        snapshot = dict(table.to_dict())
        for key in range(10, 20):
            table.put(key, key)
        flight = pool.persist_async()   # snooped, not yet committed
        assert not flight.committed
        pool.crash()                    # records still volatile
        pool.restart()
        recovered = pool.reattach_root(HashMap)
        # The flight's epoch never committed: its data must be gone.
        assert recovered.to_dict() == snapshot

    def test_crash_after_background_commit_keeps_flight(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        for key in range(10):
            table.put(key, key)
        flight = pax_pool.persist_async()
        pax_pool.machine.clock.advance(50_000_000)
        assert flight.committed
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(HashMap)
        assert recovered.to_dict() == {key: key for key in range(10)}

    def test_overlapping_write_to_same_line(self, pax_pool):
        # Epoch N persists key 1 = A; epoch N+1 overwrites it before N's
        # value ever reaches PM. Crash before N+1 commits must recover A.
        table = pax_pool.persistent(HashMap, capacity=64)
        table.put(1, 111)
        flight = pax_pool.persist_async()
        table.put(1, 222)            # same line, next epoch
        pax_pool.machine.clock.advance(50_000_000)
        assert flight.committed
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(HashMap)
        assert recovered.get(1) == 111

    def test_two_uncommitted_epochs_roll_back(self, pax_pool):
        table = pax_pool.persistent(HashMap, capacity=64)
        table.put(1, 1)
        pax_pool.persist()
        # Starve the background (no clock advance beyond op costs): stack
        # two snooped-but-uncommitted epochs, then crash.
        table.put(2, 2)
        pax_pool.persist_async()
        table.put(3, 3)
        pax_pool.persist_async()
        # Make some (but not necessarily all) records durable.
        pax_pool.machine.device.undo.pump()
        pax_pool.crash()
        pax_pool.restart()
        recovered = pax_pool.reattach_root(HashMap)
        # Nothing committed after epoch of key 1... unless pumping allowed
        # background retirement — accept either consistent outcome:
        state = recovered.to_dict()
        assert state in ({1: 1}, {1: 1, 2: 2}, {1: 1, 2: 2, 3: 3})
        # But never a torn subset like {1: 1, 3: 3}.
        assert not (3 in state and 2 not in state)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(advance_ns=st.integers(0, 20_000_000),
           batches=st.integers(1, 4))
    def test_property_prefix_of_async_epochs(self, advance_ns, batches):
        pool = make_pax_pool()
        table = pool.persistent(HashMap, capacity=64)
        snapshots = [dict()]
        for batch in range(batches):
            for key in range(batch * 5, batch * 5 + 5):
                table.put(key, key)
            pool.persist_async()
            state = dict(snapshots[-1])
            state.update({key: key for key in range(batch * 5,
                                                    batch * 5 + 5)})
            snapshots.append(state)
        pool.machine.clock.advance(advance_ns)
        pool.crash()
        pool.restart()
        recovered = pool.reattach_root(HashMap).to_dict()
        # Recovered state is exactly some prefix of the async snapshots.
        assert recovered in snapshots
