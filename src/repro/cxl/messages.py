"""CXL.cache message vocabulary.

The subset of CXL 2.0 semantics PAX needs (paper §3-4), as typed message
objects. Directions follow the paper's usage:

Host-to-device (the device is the home of all vPM addresses):

* :class:`RdShared` — a load missed the host LLC; the host wants an
  S-state copy.
* :class:`RdOwn` — the host will modify a line. ``need_data`` is False for
  an S->M permission upgrade where the host already holds the bytes. This
  is the message that gives the device its chance to undo-log (§3.1).
* :class:`DirtyEvict` — the host LLC evicts a modified vPM line; the data
  travels to the device, which buffers it until its undo entry is durable.
* :class:`CleanEvict` — address-only notification of a clean eviction.

Device-to-host:

* :class:`DataResponse` — completion carrying line data plus the granted
  MESI state (``GO-S`` / ``GO-M`` in CXL terms, folded into one message).
* :class:`Go` — data-less completion (upgrade acks, evict acks).
* :class:`SnpData` — the device wants the current value and a downgrade
  to S in all host caches; issued per logged line during ``persist()``
  (§3.3, CXL 2.0 §3.2.4.3).
* :class:`SnpInv` — the device wants the line invalidated everywhere.

Every message is line-granular: ``addr`` must be 64-byte aligned.
"""

from dataclasses import dataclass
from typing import Optional

from repro.errors import ProtocolError
from repro.util.bitops import is_aligned
from repro.util.constants import CACHE_LINE_SIZE

#: Bytes on the wire for an address-only message (header + addr + CRC).
HEADER_BYTES = 16
#: Bytes on the wire for a message carrying one line of data.
DATA_BYTES = HEADER_BYTES + CACHE_LINE_SIZE


def _check_line_addr(addr):
    if not is_aligned(addr, CACHE_LINE_SIZE):
        raise ProtocolError("CXL messages are line-granular; 0x%x is not "
                            "64-byte aligned" % addr)


class Message:
    """Base class; ``wire_bytes`` sizes the link-bandwidth charge."""

    wire_bytes = HEADER_BYTES

    @property
    def name(self):
        """The message's protocol name (its class name)."""
        return type(self).__name__


# -- host-to-device ---------------------------------------------------------

@dataclass
class RdShared(Message):
    """Host load miss: request an S copy of ``addr``."""

    addr: int

    def __post_init__(self):
        _check_line_addr(self.addr)


@dataclass
class RdOwn(Message):
    """Host store: request M on ``addr``; ``need_data`` False = upgrade."""

    addr: int
    need_data: bool = True

    def __post_init__(self):
        _check_line_addr(self.addr)


@dataclass
class DirtyEvict(Message):
    """Host LLC eviction of a modified line; carries the data."""

    addr: int
    data: bytes
    wire_bytes = DATA_BYTES

    def __post_init__(self):
        _check_line_addr(self.addr)
        self.data = bytes(self.data)
        if len(self.data) != CACHE_LINE_SIZE:
            raise ProtocolError("DirtyEvict carries exactly one line")


@dataclass
class CleanEvict(Message):
    """Host LLC eviction of a clean line (address-only hint)."""

    addr: int

    def __post_init__(self):
        _check_line_addr(self.addr)


@dataclass
class MemRd(Message):
    """CXL.mem read: the device is plain memory; no coherence state.

    Used by the CXL.mem-mode PAX (paper §6): the host memory controller
    treats device memory like local DRAM, so the device never learns who
    caches what.
    """

    addr: int

    def __post_init__(self):
        _check_line_addr(self.addr)


@dataclass
class MemWr(Message):
    """CXL.mem write: a dirty line (or CLWB) arriving at the device."""

    addr: int
    data: bytes
    wire_bytes = DATA_BYTES

    def __post_init__(self):
        _check_line_addr(self.addr)
        self.data = bytes(self.data)
        if len(self.data) != CACHE_LINE_SIZE:
            raise ProtocolError("MemWr carries exactly one line")


# -- device-to-host ---------------------------------------------------------

@dataclass
class DataResponse(Message):
    """Completion with data and a granted state ('S' or 'M')."""

    addr: int
    data: bytes
    state: str
    wire_bytes = DATA_BYTES

    def __post_init__(self):
        _check_line_addr(self.addr)
        self.data = bytes(self.data)
        if len(self.data) != CACHE_LINE_SIZE:
            raise ProtocolError("DataResponse carries exactly one line")
        if self.state not in ("S", "M"):
            raise ProtocolError("granted state must be S or M")


@dataclass
class Go(Message):
    """Data-less completion; ``state`` is the granted state ('M') or None."""

    addr: int
    state: Optional[str] = None

    def __post_init__(self):
        _check_line_addr(self.addr)


@dataclass
class SnpData(Message):
    """Device-to-host: downgrade to S and forward the current value."""

    addr: int

    def __post_init__(self):
        _check_line_addr(self.addr)


@dataclass
class SnpInv(Message):
    """Device-to-host: invalidate every cached copy."""

    addr: int

    def __post_init__(self):
        _check_line_addr(self.addr)


@dataclass
class SnpResponse(Message):
    """Host reply to a snoop; ``data`` is None when no copy was dirty."""

    addr: int
    data: Optional[bytes] = None

    def __post_init__(self):
        _check_line_addr(self.addr)
        if self.data is not None:
            self.data = bytes(self.data)
            if len(self.data) != CACHE_LINE_SIZE:
                raise ProtocolError("SnpResponse data must be one line")
            self.wire_bytes = DATA_BYTES

    @property
    def was_dirty(self):
        """True if the host surrendered modified data."""
        return self.data is not None


HOST_TO_DEVICE = (RdShared, RdOwn, DirtyEvict, CleanEvict)
DEVICE_TO_HOST = (DataResponse, Go, SnpData, SnpInv)
