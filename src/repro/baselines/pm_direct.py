"""PM Direct — persistent memory with **no** crash consistency.

The "PM Direct" line in Figure 2b: the hash table lives on PM behind the
host memory controller, accessed like DRAM. Whatever dirty lines happen to
have been evicted are durable; everything else is lost, and a crash
mid-operation can leave the structure torn. This is the performance target
PAX aims to match while *adding* crash consistency (paper §5).

``persist()`` is a no-op by design — the scheme has no durability point.
An eADR variant (``eadr=True``) flushes caches on power loss, which makes
individual stores durable but still provides **no atomicity** across the
multiple stores of one operation; the crash tests demonstrate exactly that
distinction.
"""

from repro.baselines.base import StructureBackend
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HostMachine


class PmDirectBackend(StructureBackend):
    """Hash table directly on PM; fast and unsafe."""

    name = "pm_direct"
    crash_consistent = False

    def __init__(self, heap_size=64 * 1024 * 1024, capacity=1024, eadr=False,
                 **machine_kwargs):
        super().__init__()
        self._machine = HostMachine(media="pm", heap_size=heap_size,
                                    **machine_kwargs)
        self._mem = self._machine.mem()
        self._alloc = PmAllocator.create(self._mem, heap_size)
        self._bind_structure(self._mem, self._alloc, capacity=capacity)
        self.eadr = eadr

    @property
    def machine(self):
        return self._machine

    def crash(self):
        if self.eadr:
            # eADR: the power-fail domain includes the caches, so dirty
            # lines reach PM — but nothing makes multi-store operations
            # atomic.
            self._machine.hierarchy.flush_all()
        self._machine.crash()

    def restart(self):
        """Reboot and re-attach to whatever PM contains — possibly garbage.

        There is no recovery procedure; this models an application naively
        reopening its pool. Callers must treat the result as untrusted.
        """
        self._machine.restart()
        try:
            self._alloc = PmAllocator.attach(self._mem)
            self._reattach_structure(self._mem, self._alloc, self._map.root)
            return True
        except Exception:
            return False
