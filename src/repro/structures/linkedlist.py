"""A doubly-linked list of u64 over a memory accessor.

Linked structures stress crash consistency differently from arrays: a
single logical operation rewires several pointers in distinct cache
lines, so a crash can strand half-linked nodes. The crash tests verify
that snapshots never expose such states through PAX.

Layout::

    header: magic | head | tail | count
    node:   value | prev | next
"""

from repro.errors import ReproError, StructureError
from repro.mem.layout import StructLayout
from repro.util.constants import NULL_ADDR

LIST_MAGIC = 0x5041584C53543031     # "PAXLST01"

_HEADER = StructLayout("list_header", [
    ("magic", "u64"),
    ("head", "u64"),
    ("tail", "u64"),
    ("count", "u64"),
])

_NODE = StructLayout("list_node", [
    ("value", "u64"),
    ("prev", "u64"),
    ("next", "u64"),
])


class PersistentList:
    """Doubly-linked u64 list with O(1) push/pop at both ends."""

    def __init__(self, mem, allocator, root):
        self._mem = mem
        self._alloc = allocator
        self.root = root
        self._hdr = _HEADER.view(mem, root)

    @classmethod
    def create(cls, mem, allocator):
        """Allocate and initialize an empty list."""
        root = allocator.alloc(_HEADER.size)
        hdr = _HEADER.view(mem, root)
        hdr.set("head", NULL_ADDR)
        hdr.set("tail", NULL_ADDR)
        hdr.set("count", 0)
        hdr.set("magic", LIST_MAGIC)
        return cls(mem, allocator, root)

    @classmethod
    def attach(cls, mem, allocator, root):
        """Bind to an existing list at ``root``."""
        instance = cls(mem, allocator, root)
        if instance._hdr.get("magic") != LIST_MAGIC:
            raise ReproError("no list at offset 0x%x" % root)
        return instance

    def __len__(self):
        return self._hdr.get("count")

    def _new_node(self, value, prev, next_):
        node = self._alloc.alloc(_NODE.size)
        view = _NODE.view(self._mem, node)
        view.set("value", value)
        view.set("prev", prev)
        view.set("next", next_)
        return node

    def push_front(self, value):
        """Prepend ``value``."""
        head = self._hdr.get("head")
        node = self._new_node(value, NULL_ADDR, head)
        if head != NULL_ADDR:
            _NODE.view(self._mem, head).set("prev", node)
        else:
            self._hdr.set("tail", node)
        self._hdr.set("head", node)
        self._hdr.set("count", len(self) + 1)

    def push_back(self, value):
        """Append ``value``."""
        tail = self._hdr.get("tail")
        node = self._new_node(value, tail, NULL_ADDR)
        if tail != NULL_ADDR:
            _NODE.view(self._mem, tail).set("next", node)
        else:
            self._hdr.set("head", node)
        self._hdr.set("tail", node)
        self._hdr.set("count", len(self) + 1)

    def pop_front(self):
        """Remove and return the first value."""
        head = self._hdr.get("head")
        if head == NULL_ADDR:
            raise StructureError("pop from empty list")
        view = _NODE.view(self._mem, head)
        value = view.get("value")
        next_node = view.get("next")
        self._hdr.set("head", next_node)
        if next_node != NULL_ADDR:
            _NODE.view(self._mem, next_node).set("prev", NULL_ADDR)
        else:
            self._hdr.set("tail", NULL_ADDR)
        self._alloc.free(head, _NODE.size)
        self._hdr.set("count", len(self) - 1)
        return value

    def pop_back(self):
        """Remove and return the last value."""
        tail = self._hdr.get("tail")
        if tail == NULL_ADDR:
            raise StructureError("pop from empty list")
        view = _NODE.view(self._mem, tail)
        value = view.get("value")
        prev_node = view.get("prev")
        self._hdr.set("tail", prev_node)
        if prev_node != NULL_ADDR:
            _NODE.view(self._mem, prev_node).set("next", NULL_ADDR)
        else:
            self._hdr.set("head", NULL_ADDR)
        self._alloc.free(tail, _NODE.size)
        self._hdr.set("count", len(self) - 1)
        return value

    def __iter__(self):
        node = self._hdr.get("head")
        while node != NULL_ADDR:
            view = _NODE.view(self._mem, node)
            yield view.get("value")
            node = view.get("next")

    def to_list(self):
        """Materialize as a Python list (verification helper)."""
        return list(self)

    def check_links(self):
        """Verify prev/next symmetry and count; raises on corruption.

        Used by the crash checker: a torn snapshot of a half-linked node
        fails here.
        """
        count = 0
        prev = NULL_ADDR
        node = self._hdr.get("head")
        while node != NULL_ADDR:
            view = _NODE.view(self._mem, node)
            if view.get("prev") != prev:
                raise ReproError("broken prev link at node 0x%x" % node)
            prev = node
            node = view.get("next")
            count += 1
        if prev != self._hdr.get("tail"):
            raise ReproError("tail pointer does not match last node")
        if count != len(self):
            raise ReproError("count %d != linked nodes %d" % (len(self), count))
        return count

    def __repr__(self):
        return "PersistentList(root=0x%x, len=%d)" % (self.root, len(self))
