"""Latency model validation and the paper's constants."""

import pytest

from repro.errors import ConfigError
from repro.sim.latency import (
    Bandwidth,
    CacheLatency,
    LatencyModel,
    default_model,
)


class TestDefaults:
    def test_default_model_validates(self):
        model = default_model()
        assert model.media.pm_read_ns == 305.0       # FAST '20
        assert model.bandwidth.pm_write_bps == 14e9  # paper §5.1
        assert model.bandwidth.cxl_bps == 63e9       # paper §5.1

    def test_cache_levels_ordered(self):
        model = default_model()
        assert model.cache.l1_ns < model.cache.l2_ns < model.cache.llc_ns

    def test_page_fault_cost_exceeds_one_microsecond(self):
        # Paper §1: "more than 1 us per trap".
        assert default_model().software.page_fault_ns > 1000


class TestValidation:
    def test_unordered_cache_latency_rejected(self):
        with pytest.raises(ConfigError):
            CacheLatency(l1_ns=10, l2_ns=5, llc_ns=20).validate()

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            Bandwidth(dram_bps=0).validate()

    def test_negative_media_rejected(self):
        model = LatencyModel()
        model.media.pm_read_ns = -1
        with pytest.raises(ConfigError):
            model.validate()


class TestLinkLookup:
    def test_round_trip_doubles_one_way(self):
        model = default_model()
        assert model.device_round_trip_ns("cxl") == 2 * model.link.cxl_ns

    def test_smp_is_free(self):
        assert default_model().device_round_trip_ns("smp") == 0

    def test_enzian_slower_than_cxl(self):
        model = default_model()
        assert model.link.enzian_ns > model.link.cxl_ns

    def test_unknown_link_rejected(self):
        with pytest.raises(ConfigError):
            default_model().link_one_way_ns("infiniband")
