"""Declarative fault plans.

A :class:`FaultPlan` says *what* goes wrong around a crash; the
:class:`~repro.faults.injector.FaultInjector` makes it happen. Plans are
plain frozen dataclasses so a fuzz iteration's plan can be printed
verbatim when it finds a counter-example.

The bit-flip fault model is deliberately scoped to the bytes the
crash-consistency machinery can do something about (detect, or mask by
rollback):

``log``
    A durable undo-log entry that is *not* the tail. Its CRC breaks and
    valid entries follow, so recovery must detect it and raise.
``epoch``
    One of the two epoch-record slots. The CRC breaks and the surviving
    slot carries the pool.
``logged_data``
    A data-region line that has a live undo record. Rollback rewrites
    the whole line, masking the flip.

Flips in unlogged data lines are undetectable by an undo-log scheme
(they would need data-region checksums) and are out of scope — see
``docs/faults.md``.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError, FaultPlanError

BIT_FLIP_REGIONS = ("log", "epoch", "logged_data")

#: Kinds a :class:`FaultWindow` can schedule over a serving drill.
WINDOW_KINDS = ("crash", "link-storm")


@dataclass(frozen=True)
class LinkFaultSpec:
    """Loss/delay behaviour for a :class:`~repro.cxl.lossy.LossyLink`.

    A dropped message costs the sender ``timeout_ns`` (it must conclude
    the message is gone) plus an exponential backoff before the
    retransmit; after ``max_retries`` consecutive drops of one message
    the link gives up with :class:`~repro.errors.LinkError`.
    """

    drop_rate: float = 0.01
    delay_rate: float = 0.0
    delay_ns: float = 500.0
    timeout_ns: float = 2_000.0
    backoff_base_ns: float = 500.0
    backoff_cap_ns: float = 64_000.0
    max_retries: int = 8
    #: Fraction of each backoff randomly shaved off (0 = fixed
    #: exponential schedule, 1 = full jitter down to zero). Jitter draws
    #: come from the link's own :class:`~repro.sim.rng.DeterministicRng`,
    #: so a jittered schedule still replays bit-for-bit from the seed.
    jitter: float = 0.0
    seed: int = 42

    def validate(self):
        """Raise :class:`ConfigError` on nonsensical parameters."""
        if not 0.0 <= self.drop_rate < 1.0:
            raise ConfigError("drop_rate must be in [0, 1)")
        if not 0.0 <= self.delay_rate < 1.0:
            raise ConfigError("delay_rate must be in [0, 1)")
        if min(self.delay_ns, self.timeout_ns, self.backoff_base_ns,
               self.backoff_cap_ns) < 0:
            raise ConfigError("link fault latencies cannot be negative")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("backoff jitter must be in [0, 1]")
        return self


@dataclass(frozen=True)
class BitFlipSpec:
    """``flips`` single-bit media faults in one target region."""

    region: str
    flips: int = 1

    def validate(self):
        """Raise :class:`ConfigError` on an unknown region or zero flips."""
        if self.region not in BIT_FLIP_REGIONS:
            raise ConfigError("bit-flip region must be one of %r, not %r"
                              % (BIT_FLIP_REGIONS, self.region))
        if self.flips < 1:
            raise ConfigError("a BitFlipSpec must flip at least one bit")
        return self


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong at (and after) the next crash.

    ``torn_write`` tears the PM write in flight at crash time: only a
    random prefix of its payload becomes durable. ``bitflips`` are media
    faults applied between the crash and recovery. ``link`` makes the
    CXL link lossy for the whole run (not just around the crash).
    """

    torn_write: bool = False
    bitflips: Tuple[BitFlipSpec, ...] = field(default_factory=tuple)
    link: Optional[LinkFaultSpec] = None
    seed: int = 42

    def validate(self):
        """Validate every constituent spec; returns self for chaining."""
        for spec in self.bitflips:
            spec.validate()
        if self.link is not None:
            self.link.validate()
        return self

    @property
    def is_benign(self):
        """True if the plan injects no faults at all (clean-crash mode)."""
        return (not self.torn_write and not self.bitflips
                and self.link is None)

    @classmethod
    def random(cls, rng, allow_link=True):
        """Draw a random fault mix from ``rng`` (a DeterministicRng).

        Used by the fuzz harness: roughly half the plans tear the
        in-flight write, each bit-flip region appears independently, and
        a third of the plans add a lossy link.
        """
        bitflips = []
        roll = rng.random()
        if roll < 0.20:
            bitflips.append(BitFlipSpec("log"))
        elif roll < 0.40:
            bitflips.append(BitFlipSpec("epoch"))
        elif roll < 0.60:
            bitflips.append(BitFlipSpec("logged_data",
                                        flips=rng.randint(1, 3)))
        link = None
        if allow_link and rng.random() < 0.30:
            link = LinkFaultSpec(drop_rate=0.005 + 0.045 * rng.random(),
                                 delay_rate=0.05 * rng.random(),
                                 seed=rng.randint(0, 2**31 - 1))
        return cls(torn_write=rng.random() < 0.5,
                   bitflips=tuple(bitflips),
                   link=link,
                   seed=rng.randint(0, 2**31 - 1)).validate()

    def describe(self):
        """One-line human summary (fuzz failure messages)."""
        parts = []
        if self.torn_write:
            parts.append("torn-write")
        for spec in self.bitflips:
            parts.append("flip:%s x%d" % (spec.region, spec.flips))
        if self.link is not None:
            parts.append("lossy-link(drop=%.3f)" % self.link.drop_rate)
        return " + ".join(parts) if parts else "clean-crash"


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled disturbance over a serving drill.

    ``start``/``end`` are *request ticks* — the count of requests the
    harness has served — so a window lands at the same point of the
    workload on every replay regardless of latency parameters. The
    interval is half-open, ``[start, end)``.

    ``kind`` selects the payload:

    ``crash``
        A crash/recover cycle fires inside the window; ``plan`` (a
        :class:`FaultPlan`) says how dirty the failure is.
    ``link-storm``
        The CXL link runs under ``link`` (a :class:`LinkFaultSpec`,
        typically a much higher drop rate) while the window is open.
    """

    kind: str
    start: int
    end: int
    plan: Optional["FaultPlan"] = None
    link: Optional[LinkFaultSpec] = None

    def validate(self):
        """Raise :class:`FaultPlanError` on a malformed window."""
        if self.kind not in WINDOW_KINDS:
            raise FaultPlanError("fault window kind must be one of %r, "
                                 "not %r" % (WINDOW_KINDS, self.kind))
        if self.start < 0:
            raise FaultPlanError("fault window cannot start before tick 0 "
                                 "(got %d)" % self.start)
        if self.end <= self.start:
            raise FaultPlanError(
                "zero-width fault window [%d, %d): end must exceed start"
                % (self.start, self.end))
        if self.kind == "crash" and self.plan is not None:
            self.plan.validate()
        if self.kind == "link-storm":
            if self.link is None:
                raise FaultPlanError(
                    "link-storm window [%d, %d) needs a LinkFaultSpec"
                    % (self.start, self.end))
            self.link.validate()
        return self

    def contains(self, tick):
        """True if ``tick`` falls inside the half-open window."""
        return self.start <= tick < self.end

    def describe(self):
        """One-line human summary."""
        detail = ""
        if self.kind == "crash" and self.plan is not None:
            detail = " " + self.plan.describe()
        elif self.kind == "link-storm":
            detail = " drop=%.3f" % self.link.drop_rate
        return "%s[%d,%d)%s" % (self.kind, self.start, self.end, detail)


@dataclass(frozen=True)
class FaultTimeline:
    """The full chaos schedule for one drill: a set of fault windows.

    Structural problems — an overlap between two windows of the same
    kind, a zero-width window — are caught here, by :meth:`build` /
    :meth:`validate`, with a typed :class:`~repro.errors.FaultPlanError`.
    Catching them at build time matters because a drill discovers an
    overlap only when the second window opens, potentially hours into a
    long soak. Windows of *different* kinds may overlap (a crash during
    a link storm is a legitimate, interesting drill).
    """

    windows: Tuple[FaultWindow, ...] = field(default_factory=tuple)

    @classmethod
    def build(cls, windows):
        """Validate and freeze a timeline from an iterable of windows."""
        return cls(windows=tuple(windows)).validate()

    def validate(self):
        """Raise :class:`FaultPlanError` on bad windows or same-kind
        overlap; returns self for chaining."""
        for window in self.windows:
            window.validate()
        by_kind = {}
        for window in self.windows:
            by_kind.setdefault(window.kind, []).append(window)
        for kind in sorted(by_kind):
            ordered = sorted(by_kind[kind], key=lambda w: (w.start, w.end))
            for before, after in zip(ordered, ordered[1:]):
                if after.start < before.end:
                    raise FaultPlanError(
                        "overlapping %s windows: [%d, %d) and [%d, %d)"
                        % (kind, before.start, before.end,
                           after.start, after.end))
        return self

    def active(self, kind, tick):
        """The ``kind`` window containing ``tick``, or None.

        Same-kind windows are disjoint (validated), so at most one
        matches.
        """
        for window in self.windows:
            if window.kind == kind and window.contains(tick):
                return window
        return None

    def of_kind(self, kind):
        """Every window of ``kind``, ordered by start tick."""
        return sorted((w for w in self.windows if w.kind == kind),
                      key=lambda w: w.start)

    def describe(self):
        """One-line human summary (drill logs and failure messages)."""
        if not self.windows:
            return "no-faults"
        ordered = sorted(self.windows, key=lambda w: (w.start, w.end))
        return " + ".join(window.describe() for window in ordered)
