"""Pool file format.

A *pool* is the persistent container for one structure plus its undo log,
in the style of PMDK pools and the paper's ``map_pool("./ht.pool")``
(Listing 1). The layout, in device-relative offsets:

====================  =======================================================
``[0, 4096)``         superblock page: static header + the epoch cell
``[4096, 4096+L)``    undo log region (``L`` = ``log_size``)
``[4096+L, size)``    data region: allocator heap holding the structure
====================  =======================================================

The static header is CRC-protected and written once at format time. The
**epoch record** is a dual-slot, CRC-protected structure: committing a
snapshot writes ``{epoch, crc}`` into slot ``epoch % 2`` — the paper's
"writes the current epoch number to a special location" commit step
(§3.3), hardened against torn commits. Because consecutive commits
alternate slots (each slot lives in its own cache line), a crash that
tears the in-flight slot write leaves at most that one slot with a bad
CRC, and :meth:`Pool.open` falls back to the other slot — the previous
committed epoch — instead of bricking the pool. ``root_ptr`` and
``alloc_root`` are single-word cells updated atomically (PM guarantees
8-byte write atomicity).

All addresses stored inside the pool (root pointer, undo entry targets,
structure pointers) are **pool-relative offsets**, so a pool can be
remapped at any physical/virtual base across restarts.
"""

import struct

from repro.errors import PoolError
from repro.util.bitops import is_aligned
from repro.util.checksum import crc32c
from repro.util.constants import CACHE_LINE_SIZE, PAGE_SIZE

#: "PAXPOOL\0" little-endian.
POOL_MAGIC = 0x004C4F4F50584150
#: Version 2 replaced the single u64 epoch cell with the dual-slot
#: CRC-protected epoch record (torn-commit hardening).
POOL_VERSION = 2

#: Static header: magic, version, pool_size, log_base, log_size,
#: data_base, data_size  (7 x u64), then crc (u32).
_HEADER = struct.Struct("<7Q")
_HEADER_CRC_OFFSET = _HEADER.size

#: Single-word cells, each in its own cache line to avoid false sharing
#: between the epoch commit write and structure metadata updates.
ROOT_PTR_OFFSET = 3 * CACHE_LINE_SIZE
ALLOC_ROOT_OFFSET = 4 * CACHE_LINE_SIZE
ROOT_KIND_OFFSET = 5 * CACHE_LINE_SIZE

#: The two epoch-record slots, each in its own cache line so one torn
#: line write can never damage both.
EPOCH_SLOT_OFFSETS = (2 * CACHE_LINE_SIZE, 6 * CACHE_LINE_SIZE)

#: One epoch-record slot: epoch (u64) then crc32c over the epoch bytes.
_EPOCH_SLOT = struct.Struct("<QI")
EPOCH_SLOT_SIZE = _EPOCH_SLOT.size

#: Values of the root-kind cell.
ROOT_KIND_NONE = 0        # no root published yet
ROOT_KIND_SINGLE = 1      # root_ptr is one user structure
ROOT_KIND_DIRECTORY = 2   # root_ptr is the named-root directory

_U64 = struct.Struct("<Q")


def encode_epoch_record(epoch):
    """Serialize one epoch-record slot (fault tests tear these bytes)."""
    body = _U64.pack(epoch)
    return body + struct.pack("<I", crc32c(body))


def decode_epoch_record(blob):
    """Decode one slot; returns the epoch, or None if the CRC is bad."""
    if len(blob) < _EPOCH_SLOT.size:
        return None
    epoch, stored_crc = _EPOCH_SLOT.unpack_from(blob, 0)
    if stored_crc != crc32c(blob[:_U64.size]):
        return None
    return epoch


class Pool:
    """An open pool on a :class:`~repro.pm.device.PmDevice`."""

    def __init__(self, device, log_base, log_size, data_base, data_size):
        self.device = device
        self.log_base = log_base
        self.log_size = log_size
        self.data_base = data_base
        self.data_size = data_size
        #: Optional tracer told when the epoch record advances.
        self.tracer = None

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def format(cls, device, log_size=4 * 1024 * 1024):
        """Initialize a fresh pool over the whole device and return it."""
        if not is_aligned(log_size, CACHE_LINE_SIZE):
            raise PoolError("log size must be line-aligned")
        log_base = PAGE_SIZE
        data_base = log_base + log_size
        if data_base + PAGE_SIZE > device.size:
            raise PoolError(
                "device %s too small for a %d-byte log" % (device.name, log_size))
        data_size = device.size - data_base
        header = _HEADER.pack(POOL_MAGIC, POOL_VERSION, device.size,
                              log_base, log_size, data_base, data_size)
        device.write(0, header)
        device.write(_HEADER_CRC_OFFSET, struct.pack("<I", crc32c(header)))
        # Both epoch slots start valid at epoch 0: a torn first commit
        # must still leave one readable slot.
        record = encode_epoch_record(0)
        for slot_offset in EPOCH_SLOT_OFFSETS:
            device.write(slot_offset, record)
        device.write(ROOT_PTR_OFFSET, _U64.pack(0))
        device.write(ALLOC_ROOT_OFFSET, _U64.pack(0))
        device.write(ROOT_KIND_OFFSET, _U64.pack(ROOT_KIND_NONE))
        # Zero the first undo-log entry header so recovery scans stop
        # immediately on a freshly formatted pool.
        device.write(log_base, bytes(CACHE_LINE_SIZE))
        return cls(device, log_base, log_size, data_base, data_size)

    @classmethod
    def open(cls, device):
        """Open and validate an existing pool on ``device``."""
        header = device.read(0, _HEADER.size)
        (magic, version, pool_size, log_base, log_size,
         data_base, data_size) = _HEADER.unpack(header)
        if magic != POOL_MAGIC:
            raise PoolError("bad pool magic 0x%x on %s" % (magic, device.name))
        if version != POOL_VERSION:
            raise PoolError("unsupported pool version %d" % version)
        (stored_crc,) = struct.unpack(
            "<I", device.read(_HEADER_CRC_OFFSET, 4))
        if stored_crc != crc32c(header):
            raise PoolError("pool header checksum mismatch on %s" % device.name)
        if pool_size != device.size:
            raise PoolError(
                "pool was formatted for %d bytes, device has %d"
                % (pool_size, device.size))
        return cls(device, log_base, log_size, data_base, data_size)

    @classmethod
    def open_or_format(cls, device, log_size=4 * 1024 * 1024):
        """Open ``device`` as a pool, formatting it first if it is blank."""
        (magic,) = _U64.unpack(device.read(0, 8))
        if magic == POOL_MAGIC:
            return cls.open(device)
        return cls.format(device, log_size=log_size)

    # -- single-word durable cells ------------------------------------------

    def _read_cell(self, offset):
        return _U64.unpack(self.device.read(offset, 8))[0]

    def _write_cell(self, offset, value):
        # An aligned 8-byte store is atomic on PM hardware; writing the
        # device directly models that the commit write bypasses (or is
        # explicitly flushed past) the CPU caches.
        self.device.write(offset, _U64.pack(value))

    def epoch_record(self):
        """Read the dual-slot epoch record.

        Returns ``(epoch, slot_used, valid_slots)`` where ``valid_slots``
        is a per-slot CRC verdict tuple. When both slots are valid (the
        common case) the newer epoch wins; when a torn or corrupted commit
        has invalidated one slot, the survivor — the previous committed
        epoch — is used. Both slots invalid means the epoch record itself
        was corrupted (media fault), which no rollback can repair.
        """
        epochs = []
        for slot_offset in EPOCH_SLOT_OFFSETS:
            blob = self.device.read(slot_offset, _EPOCH_SLOT.size)
            epochs.append(decode_epoch_record(blob))
        valid = tuple(epoch is not None for epoch in epochs)
        if not any(valid):
            raise PoolError(
                "both epoch record slots are corrupt on %s; the pool's "
                "committed snapshot cannot be determined" % self.device.name)
        slot_used = max((epoch, index) for index, epoch in enumerate(epochs)
                        if epoch is not None)[1]
        return epochs[slot_used], slot_used, valid

    @property
    def committed_epoch(self):
        """Epoch number of the most recent durable snapshot."""
        return self.epoch_record()[0]

    def commit_epoch(self, epoch):
        """Durably advance the committed epoch (must be monotonic).

        Writes slot ``epoch % 2``, never the slot holding the previous
        epoch, so a crash that tears this write rolls the pool back to
        the prior committed snapshot instead of corrupting it.
        """
        current = self.committed_epoch
        if epoch <= current:
            raise PoolError(
                "epoch commit must advance: %d -> %d" % (current, epoch))
        if self.tracer is not None:
            self.tracer.on_epoch_commit(epoch)
            self.tracer.on_span("epoch-commit", "slot-write", None, 0,
                                {"epoch": epoch, "slot": epoch % 2})
        self.device.write(EPOCH_SLOT_OFFSETS[epoch % 2],
                          encode_epoch_record(epoch))

    @property
    def root_ptr(self):
        """Pool-relative offset of the structure root (0 = none)."""
        return self._read_cell(ROOT_PTR_OFFSET)

    @root_ptr.setter
    def root_ptr(self, offset):
        self._write_cell(ROOT_PTR_OFFSET, offset)

    @property
    def alloc_root(self):
        """Pool-relative offset of the allocator's persistent state."""
        return self._read_cell(ALLOC_ROOT_OFFSET)

    @alloc_root.setter
    def alloc_root(self, offset):
        self._write_cell(ALLOC_ROOT_OFFSET, offset)

    @property
    def root_kind(self):
        """What ``root_ptr`` points at (see ``ROOT_KIND_*``)."""
        return self._read_cell(ROOT_KIND_OFFSET)

    @root_kind.setter
    def root_kind(self, kind):
        if kind not in (ROOT_KIND_NONE, ROOT_KIND_SINGLE,
                        ROOT_KIND_DIRECTORY):
            raise PoolError("invalid root kind %r" % (kind,))
        self._write_cell(ROOT_KIND_OFFSET, kind)

    # -- helpers -------------------------------------------------------------

    @property
    def data_end(self):
        """One past the last data-region offset."""
        return self.data_base + self.data_size

    def contains_data(self, offset, length=1):
        """True if ``[offset, offset+length)`` is inside the data region."""
        return self.data_base <= offset and offset + length <= self.data_end

    def sync(self):
        """Flush the device to its backing file, if any."""
        self.device.sync()

    def __repr__(self):
        return "Pool(%s, epoch=%d, data=%d bytes)" % (
            self.device.name, self.committed_epoch, self.data_size)
