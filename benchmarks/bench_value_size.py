"""abl-valsize: value size scaling (8 B -> 1 KiB, YCSB-realistic).

The paper's microbenchmark uses 8 B values; production KV serving carries
hundreds of bytes to kilobytes, where per-op line counts — and therefore
undo records, snoops, and PM write traffic — scale up. This bench drives
the variable-size :class:`~repro.structures.blobmap.BlobMap` on PAX and
on PM-direct across value sizes and reports how the crash-consistency
overhead scales.
"""

from benchmarks.conftest import BENCH_CACHES
from repro.analysis.report import Table
from repro.libpax.allocator import PmAllocator
from repro.libpax.machine import HostMachine
from repro.libpax.pool import PaxPool
from repro.structures.blobmap import BlobMap
from repro.workloads.keys import KeySequence

HEAP = 64 * 1024 * 1024
RECORDS = 1500
OPS = 1000
GROUP = 64
SIZES = (8, 128, 1024)


def run_pax(value_size):
    pool = PaxPool.map_pool(pool_size=HEAP, log_size=16 * 1024 * 1024,
                            **BENCH_CACHES)
    table = pool.persistent(BlobMap, capacity=1 << 11)
    payload = b"v" * value_size
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        table.put(load.next(), payload)
    pool.persist()
    device = pool.machine.device
    records_before = device.undo.stats.get("records")
    keys = KeySequence(RECORDS, "uniform", seed=2)
    start = pool.machine.now_ns
    for index in range(OPS):
        table.put(keys.next(), payload)
        if (index + 1) % GROUP == 0:
            pool.persist()
    pool.persist()
    elapsed = pool.machine.now_ns - start
    return {
        "ns_per_op": elapsed / OPS,
        "undo_records_per_op":
            (device.undo.stats.get("records") - records_before) / OPS,
    }


def run_pm_direct(value_size):
    machine = HostMachine(media="pm", heap_size=HEAP, **BENCH_CACHES)
    mem = machine.mem()
    alloc = PmAllocator.create(mem, HEAP)
    table = BlobMap.create(mem, alloc, capacity=1 << 11)
    payload = b"v" * value_size
    load = KeySequence(RECORDS, "sequential", seed=1)
    for index in range(RECORDS):
        table.put(load.next(), payload)
    keys = KeySequence(RECORDS, "uniform", seed=2)
    start = machine.now_ns
    for index in range(OPS):
        table.put(keys.next(), payload)
    return {"ns_per_op": (machine.now_ns - start) / OPS}


def run():
    return {size: {"pax": run_pax(size), "pm_direct": run_pm_direct(size)}
            for size in SIZES}


def test_value_size_scaling(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table("abl-valsize: BlobMap put() vs value size",
                  ["value size", "pax ns/op", "pm_direct ns/op",
                   "pax overhead", "undo records/op"])
    for size in SIZES:
        pax_row = results[size]["pax"]
        direct_row = results[size]["pm_direct"]
        overhead = pax_row["ns_per_op"] / direct_row["ns_per_op"] - 1
        table.add_row("%d B" % size, pax_row["ns_per_op"],
                      direct_row["ns_per_op"],
                      "%.0f%%" % (100 * overhead),
                      pax_row["undo_records_per_op"])
    table.show()
    print("note: pax rows include group-commit persists (crash-consistent)"
          "; pm_direct has no durability point at all. At cache-resident"
          " sizes the gap is the persist amortization; at 1 KiB both are"
          " media-bound and PAX's HBM erases it.")
    # Bigger values touch more lines: undo records per op must grow...
    records = [results[size]["pax"]["undo_records_per_op"]
               for size in SIZES]
    assert records == sorted(records)
    assert records[-1] > records[0] * 3
    # ...and 1 KiB values cost more per op than 8 B values, everywhere.
    for name in ("pax", "pm_direct"):
        assert results[1024][name]["ns_per_op"] \
            > results[8][name]["ns_per_op"]
