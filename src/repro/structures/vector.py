"""A growable array of u64 over a memory accessor.

Volatile ``std::vector``-style code, persistence-oblivious like the hash
map. Growth reallocates and copies — another multi-store operation crash
consistency must survive.

Layout::

    header: magic | length | capacity | data_ptr
    data:   capacity contiguous u64 elements
"""

from repro.errors import ReproError, StructureError
from repro.mem.layout import StructLayout
from repro.util.constants import WORD_SIZE

VECTOR_MAGIC = 0x5041585645433031     # "PAXVEC01"

_HEADER = StructLayout("vector_header", [
    ("magic", "u64"),
    ("length", "u64"),
    ("capacity", "u64"),
    ("data", "u64"),
])


class PersistentVector:
    """Append-mostly u64 vector."""

    def __init__(self, mem, allocator, root):
        self._mem = mem
        self._alloc = allocator
        self.root = root
        self._hdr = _HEADER.view(mem, root)

    @classmethod
    def create(cls, mem, allocator, capacity=64):
        """Allocate and initialize an empty vector."""
        if capacity < 1:
            raise ReproError("capacity must be at least 1")
        root = allocator.alloc(_HEADER.size)
        data = allocator.alloc(capacity * WORD_SIZE)
        hdr = _HEADER.view(mem, root)
        hdr.set("length", 0)
        hdr.set("capacity", capacity)
        hdr.set("data", data)
        hdr.set("magic", VECTOR_MAGIC)
        return cls(mem, allocator, root)

    @classmethod
    def attach(cls, mem, allocator, root):
        """Bind to an existing vector at ``root``."""
        instance = cls(mem, allocator, root)
        if instance._hdr.get("magic") != VECTOR_MAGIC:
            raise ReproError("no vector at offset 0x%x" % root)
        return instance

    def _element_addr(self, index):
        length = self._hdr.get("length")
        if not 0 <= index < length:
            raise StructureError("index %d out of range (len=%d)" % (index, length))
        return self._hdr.get("data") + index * WORD_SIZE

    def __len__(self):
        return self._hdr.get("length")

    def __getitem__(self, index):
        return self._mem.read_u64(self._element_addr(index))

    def __setitem__(self, index, value):
        self._mem.write_u64(self._element_addr(index), value)

    def append(self, value):
        """Push ``value``, growing the backing array if needed."""
        length = self._hdr.get("length")
        capacity = self._hdr.get("capacity")
        if length == capacity:
            self._grow(capacity * 2)
        self._mem.write_u64(self._hdr.get("data") + length * WORD_SIZE, value)
        self._hdr.set("length", length + 1)

    def pop(self):
        """Remove and return the last element."""
        length = self._hdr.get("length")
        if length == 0:
            raise StructureError("pop from empty vector")
        value = self._mem.read_u64(self._hdr.get("data")
                                   + (length - 1) * WORD_SIZE)
        self._hdr.set("length", length - 1)
        return value

    def _grow(self, new_capacity):
        old_data = self._hdr.get("data")
        old_capacity = self._hdr.get("capacity")
        length = self._hdr.get("length")
        new_data = self._alloc.alloc(new_capacity * WORD_SIZE)
        self._mem.memcpy(new_data, old_data, length * WORD_SIZE)
        self._hdr.set("data", new_data)
        self._hdr.set("capacity", new_capacity)
        self._alloc.free(old_data, old_capacity * WORD_SIZE)

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def to_list(self):
        """Materialize as a Python list (verification helper)."""
        return list(self)

    def __repr__(self):
        return "PersistentVector(root=0x%x, len=%d)" % (self.root, len(self))
