"""The wall-clock regression harness: cell/matrix runs, report I/O, and
the compare grading logic (tolerant throughput, exact simulated time)."""

import copy

import pytest

from repro.errors import ConfigError
from repro.perfbench import (
    SCHEMA,
    compare,
    load_report,
    run_cell,
    run_matrix,
    write_report,
)
from repro.perfbench.__main__ import main

#: Tiny cell sizes: these tests check plumbing, not performance.
TINY = dict(ops=40, records=16)


class TestRunCell:
    def test_cell_shape(self):
        cell = run_cell("store_heavy", "dram", **TINY)
        assert cell["workload"] == "store_heavy"
        assert cell["backend"] == "dram"
        assert cell["ops"] == 40
        assert cell["wall_s"] > 0
        assert cell["ops_per_sec"] > 0
        assert cell["sim_ns"] > 0

    def test_sim_ns_is_deterministic_across_repeats(self):
        # repeats > 1 rebuilds the backend per attempt and asserts the
        # simulated time is identical — the harness's built-in
        # determinism check must accept a healthy simulator.
        cell = run_cell("mixed", "pm_direct", repeats=2, **TINY)
        single = run_cell("mixed", "pm_direct", repeats=1, **TINY)
        assert cell["sim_ns"] == single["sim_ns"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            run_cell("scan_heavy", "dram", **TINY)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ConfigError):
            run_cell("mixed", "dram", repeats=0, **TINY)


class TestMatrixAndReportIo:
    def test_matrix_and_roundtrip(self, tmp_path):
        seen = []
        report = run_matrix(workloads=("store_heavy",),
                            backends=("dram", "pm_direct"),
                            progress=seen.append, **TINY)
        assert report["schema"] == SCHEMA
        assert report["config"]["ops"] == 40
        assert len(report["results"]) == 2
        assert len(seen) == 2
        path = str(tmp_path / "bench.json")
        write_report(report, path)
        assert load_report(path) == report

    def test_load_rejects_foreign_json(self, tmp_path):
        path = str(tmp_path / "other.json")
        with open(path, "w") as handle:
            handle.write('{"schema": "something/else"}\n')
        with pytest.raises(ConfigError):
            load_report(path)


def _fake_report(ops_per_sec=1000.0, sim_ns=5000, ops=40):
    return {
        "schema": SCHEMA,
        "config": {"ops": ops, "records": 16, "seed": 42, "repeats": 1,
                   "workloads": ["store_heavy"], "backends": ["dram"]},
        "results": [{"workload": "store_heavy", "backend": "dram",
                     "ops": ops, "wall_s": ops / ops_per_sec,
                     "ops_per_sec": ops_per_sec, "sim_ns": sim_ns}],
    }


class TestCompare:
    def test_identical_reports_pass(self):
        report = _fake_report()
        assert compare(report, copy.deepcopy(report)) == []

    def test_slowdown_within_tolerance_passes(self):
        current = _fake_report(ops_per_sec=800.0)
        assert compare(current, _fake_report(), tolerance=0.30) == []

    def test_slowdown_beyond_tolerance_fails(self):
        current = _fake_report(ops_per_sec=500.0)
        problems = compare(current, _fake_report(), tolerance=0.30)
        assert len(problems) == 1
        assert "below" in problems[0]

    def test_sim_ns_drift_fails_even_when_faster(self):
        current = _fake_report(ops_per_sec=9999.0, sim_ns=5001)
        problems = compare(current, _fake_report())
        assert len(problems) == 1
        assert "behaviour" in problems[0]

    def test_sim_ns_not_compared_across_configs(self):
        # Different op counts legitimately change simulated time.
        current = _fake_report(sim_ns=9000, ops=80)
        assert compare(current, _fake_report()) == []

    def test_unmatched_cells_ignored(self):
        current = _fake_report()
        current["results"].append({"workload": "mixed", "backend": "pax",
                                   "ops": 40, "wall_s": 1.0,
                                   "ops_per_sec": 40.0, "sim_ns": 1})
        assert compare(current, _fake_report()) == []

    def test_bad_tolerance_rejected(self):
        report = _fake_report()
        with pytest.raises(ConfigError):
            compare(report, report, tolerance=1.5)


class TestCli:
    def test_run_and_compare_cycle(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        argv = ["--ops", "40", "--records", "16",
                "--workloads", "store_heavy", "--backends", "dram",
                "--out", out]
        assert main(argv) == 0
        # A fresh run on the same machine compares clean vs itself.
        assert main(argv + ["--compare", out]) == 0
        capsys.readouterr()

    def test_compare_fails_on_regression(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        argv = ["--ops", "40", "--records", "16",
                "--workloads", "store_heavy", "--backends", "dram",
                "--out", out]
        assert main(argv) == 0
        baseline = load_report(out)
        # Forge an impossible baseline: the fresh run must regress.
        for cell in baseline["results"]:
            cell["ops_per_sec"] *= 1e6
        forged = str(tmp_path / "forged.json")
        write_report(baseline, forged)
        assert main(argv + ["--compare", forged]) == 1
        assert "REGRESSION" in capsys.readouterr().err
