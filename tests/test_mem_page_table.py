"""Page table protections and the faulting accessor."""

import pytest

from repro.errors import ProtectionError
from repro.mem.accessor import RawAccessor
from repro.mem.address_space import AddressSpace
from repro.mem.page_table import FaultingAccessor, PagePermission, PageTable
from repro.mem.physical import MemoryDevice
from repro.util.constants import PAGE_SIZE


def setup():
    space = AddressSpace()
    space.map_device(PAGE_SIZE, MemoryDevice("m", 16 * PAGE_SIZE))
    inner = RawAccessor(space)
    table = PageTable(PAGE_SIZE, 16 * PAGE_SIZE)
    return inner, table


class TestPageTable:
    def test_default_read_write(self):
        _inner, table = setup()
        assert table.is_writable(PAGE_SIZE + 100)

    def test_protect_read_only(self):
        _inner, table = setup()
        table.protect_all(PagePermission.READ)
        assert not table.is_writable(PAGE_SIZE)

    def test_protect_range_covers_pages(self):
        _inner, table = setup()
        table.protect(PAGE_SIZE + 100, PAGE_SIZE, PagePermission.READ)
        assert not table.is_writable(PAGE_SIZE)        # page of addr 100
        assert not table.is_writable(2 * PAGE_SIZE)    # next page touched
        assert table.is_writable(3 * PAGE_SIZE)

    def test_dirty_tracking(self):
        _inner, table = setup()
        table.mark_dirty(PAGE_SIZE + 5)
        table.mark_dirty(PAGE_SIZE + 6)        # same page
        table.mark_dirty(3 * PAGE_SIZE)
        assert table.dirty_pages() == [PAGE_SIZE, 3 * PAGE_SIZE]
        table.clear_dirty()
        assert table.dirty_pages() == []

    def test_out_of_range_rejected(self):
        _inner, table = setup()
        with pytest.raises(ProtectionError):
            table.permission(100 * PAGE_SIZE)


class TestFaultingAccessor:
    def test_fault_fires_once_per_page(self):
        inner, table = setup()
        faults = []

        def handler(page):
            faults.append(page)
            table.protect(page, PAGE_SIZE, PagePermission.READ_WRITE)

        accessor = FaultingAccessor(inner, table, handler)
        table.protect_all(PagePermission.READ)
        accessor.write(PAGE_SIZE + 8, b"x")
        accessor.write(PAGE_SIZE + 64, b"y")       # same page: no new fault
        accessor.write(2 * PAGE_SIZE, b"z")        # new page: fault
        assert faults == [PAGE_SIZE, 2 * PAGE_SIZE]
        assert accessor.stats.get("write_faults") == 2

    def test_loads_never_fault(self):
        inner, table = setup()
        accessor = FaultingAccessor(
            inner, table, lambda page: pytest.fail("load faulted"))
        table.protect_all(PagePermission.READ)
        accessor.read(PAGE_SIZE, 8)

    def test_handler_must_unprotect(self):
        inner, table = setup()
        accessor = FaultingAccessor(inner, table, lambda page: None)
        table.protect_all(PagePermission.READ)
        with pytest.raises(ProtectionError):
            accessor.write(PAGE_SIZE, b"x")

    def test_write_spanning_pages_faults_both(self):
        inner, table = setup()
        faults = []

        def handler(page):
            faults.append(page)
            table.protect(page, PAGE_SIZE, PagePermission.READ_WRITE)

        accessor = FaultingAccessor(inner, table, handler)
        table.protect_all(PagePermission.READ)
        accessor.write(2 * PAGE_SIZE - 4, b"12345678")
        assert faults == [PAGE_SIZE, 2 * PAGE_SIZE]

    def test_dirty_marked_on_write(self):
        inner, table = setup()
        accessor = FaultingAccessor(inner, table, lambda page: None)
        accessor.write(PAGE_SIZE + 10, b"d")
        assert table.dirty_pages() == [PAGE_SIZE]
