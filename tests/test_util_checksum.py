"""CRC-32C behaviour, including the incremental-seed property."""

from hypothesis import given, strategies as st

from repro.util.checksum import crc32c, verify


class TestCrc32c:
    def test_known_vector(self):
        # RFC 3720 test vector: 32 bytes of zeros.
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_known_vector_ones(self):
        assert crc32c(b"\xff" * 32) == 0x62A8AB43

    def test_known_vector_ascending(self):
        assert crc32c(bytes(range(32))) == 0x46DD794E

    def test_empty(self):
        assert crc32c(b"") == 0

    def test_verify(self):
        data = b"hello world"
        assert verify(data, crc32c(data))
        assert not verify(data, crc32c(data) ^ 1)

    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_incremental_equals_whole(self, a, b):
        assert crc32c(b, crc=crc32c(a)) == crc32c(a + b)

    @given(st.binary(min_size=1, max_size=256),
           st.integers(min_value=0, max_value=255))
    def test_single_bit_flip_detected(self, data, pos_seed):
        pos = pos_seed % len(data)
        corrupted = bytearray(data)
        corrupted[pos] ^= 0x01
        assert crc32c(data) != crc32c(bytes(corrupted))
