"""Architectural constants shared across the simulator.

These mirror the platform the paper evaluates on: a 64-bit x86 server with
64-byte cache lines and 4 KiB pages, attached to Optane DC persistent
memory. Everything that slices memory into lines or pages imports from
here so the granularities stay consistent.
"""

#: Size of one CPU cache line in bytes (x86, ThunderX-1, and CXL all use 64).
CACHE_LINE_SIZE = 64

#: Size of one virtual-memory page in bytes (x86-64 base pages).
PAGE_SIZE = 4096

#: Number of cache lines per page.
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE

#: Width of a machine word in bytes. All structure fields are u64.
WORD_SIZE = 8

#: Number of words in one cache line.
WORDS_PER_LINE = CACHE_LINE_SIZE // WORD_SIZE

#: A canonical invalid / null address. Address 0 is reserved in every
#: address space built by this package, so structures can use 0 as NULL.
NULL_ADDR = 0

#: Maximum representable address (exclusive); 48-bit physical addressing.
MAX_PHYS_ADDR = 1 << 48


def is_power_of_two(value):
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0
