"""The coherent hierarchy: hits, misses, coherence, evictions, crash."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.homes import HostHome
from repro.cache.line import MesiState
from repro.errors import AddressError
from repro.mem.address_space import AddressSpace
from repro.mem.physical import DramDevice
from repro.sim.clock import SimClock
from repro.sim.latency import default_model

BASE = 0x100000
SIZE = 1 << 21


def build(num_cores=2, grants_exclusive=True, tiny=True):
    clock = SimClock()
    lat = default_model()
    space = AddressSpace()
    space.map_device(BASE, DramDevice("dram", SIZE))
    kwargs = {}
    if tiny:
        kwargs = dict(
            l1_config=CacheConfig(2 * 1024, 2),
            l2_config=CacheConfig(8 * 1024, 4),
            llc_config=CacheConfig(32 * 1024, 8),
        )
    hierarchy = CacheHierarchy(clock, lat, num_cores=num_cores, **kwargs)
    home = HostHome("dram", space, lat.media.dram_ns, lat.media.dram_ns)
    home.grants_exclusive = grants_exclusive
    hierarchy.add_home(BASE, SIZE, home)
    return hierarchy, clock, space, home


class TestBasics:
    def test_store_load_roundtrip(self):
        h, _c, _s, _home = build()
        h.store(0, BASE + 100, b"hello")
        assert h.load(0, BASE + 100, 5) == b"hello"

    def test_line_spanning_access(self):
        h, _c, _s, _home = build()
        h.store(0, BASE + 60, b"12345678")
        assert h.load(0, BASE + 60, 8) == b"12345678"

    def test_load_miss_fills_and_hits(self):
        h, _c, _s, _home = build()
        h.load(0, BASE, 8)
        assert h.stats.get("memory_fetches") == 1
        h.load(0, BASE, 8)
        assert h.stats.get("l1_hits") == 1
        assert h.stats.get("memory_fetches") == 1

    def test_unhomed_address_rejected(self):
        h, _c, _s, _home = build()
        with pytest.raises(AddressError):
            h.load(0, 0x500000000, 8)

    def test_latency_charged(self):
        h, clock, _s, _home = build()
        h.load(0, BASE, 8)
        miss_time = clock.now_ns
        assert miss_time > default_model().media.dram_ns   # miss: media + caches
        h.load(0, BASE, 8)
        hit_time = clock.now_ns - miss_time
        assert hit_time == pytest.approx(default_model().cache.l1_ns)


class TestExclusiveGrant:
    def test_sole_reader_gets_E_from_host_home(self):
        h, _c, _s, _home = build(grants_exclusive=True)
        h.load(0, BASE, 8)
        assert h.directory.state(BASE, 0) == MesiState.EXCLUSIVE

    def test_second_reader_gets_S(self):
        h, _c, _s, _home = build()
        h.load(0, BASE, 8)
        h.load(1, BASE, 8)
        assert h.directory.state(BASE, 1) == MesiState.SHARED

    def test_device_style_home_never_grants_E(self):
        h, _c, _s, _home = build(grants_exclusive=False)
        h.load(0, BASE, 8)
        assert h.directory.state(BASE, 0) == MesiState.SHARED

    def test_silent_E_to_M_upgrade(self):
        h, _c, _s, home = build(grants_exclusive=True)
        h.load(0, BASE, 8)
        acquires_before = home.stats.get("acquires")
        h.store(0, BASE, b"x")
        # E->M is silent: no extra home traffic.
        assert home.stats.get("acquires") == acquires_before
        assert h.directory.state(BASE, 0) == MesiState.MODIFIED


class TestCoherence:
    def test_cross_core_read_of_dirty_line(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"dirty")
        assert h.load(1, BASE, 5) == b"dirty"
        assert h.stats.get("cross_core_transfers") == 1
        assert h.directory.state(BASE, 0) == MesiState.SHARED
        assert h.directory.state(BASE, 1) == MesiState.SHARED

    def test_store_invalidates_sharers(self):
        h, _c, _s, _home = build()
        h.load(0, BASE, 8)
        h.load(1, BASE, 8)
        h.store(1, BASE, b"new")
        assert h.directory.state(BASE, 0) == MesiState.INVALID
        assert h.directory.owner(BASE) == 1

    def test_store_steals_dirty_line(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"AAAA")
        h.store(1, BASE + 4, b"BBBB")
        assert h.load(0, BASE, 8) == b"AAAABBBB"

    def test_writes_by_alternating_cores_converge(self):
        h, _c, _s, _home = build()
        for i in range(16):
            h.store(i % 2, BASE + i, bytes([i]))
        assert h.load(0, BASE, 16) == bytes(range(16))


class TestEvictions:
    def test_dirty_eviction_reaches_home(self):
        h, _c, space, _home = build()
        # Fill far beyond the tiny 32 KiB LLC.
        for i in range(0, 256 * 1024, 64):
            h.store(0, BASE + i, i.to_bytes(4, "little"))
        assert h.stats.get("llc_writebacks") > 0
        # Early lines must have reached DRAM and read back correctly.
        assert h.load(0, BASE, 4) == (0).to_bytes(4, "little")

    def test_inclusion_maintained(self):
        h, _c, _s, _home = build()
        l1, l2 = h.core_caches(0)
        for i in range(0, 64 * 1024, 64):
            h.store(0, BASE + i, b"x")
        for line in l1.lines():
            assert l2.peek(line.addr) is not None

    def test_l1_l2_share_object(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"v1")
        l1, l2 = h.core_caches(0)
        assert l1.peek(BASE) is l2.peek(BASE)


class TestStaleLlcCopy:
    """Regression: an upgrade must supersede a dirty LLC copy.

    Found by the reference-model property test: store(c0) / load(c1)
    (downgrade parks the dirty line in the LLC) / store(c0) again
    (upgrade) left the stale dirty LLC copy alive, and a later flush
    wrote it back over the newer data.
    """

    def test_upgrade_supersedes_dirty_llc_copy(self):
        h, _c, space, _home = build()
        h.store(0, BASE, b"v1......")
        h.load(1, BASE, 8)             # M->S; dirty v1 parked in LLC
        h.store(0, BASE, b"v2......")  # S->M upgrade
        h.flush_all()
        assert space.read(BASE, 8) == b"v2......"

    def test_cross_core_steal_supersedes_llc_copy(self):
        h, _c, space, _home = build(num_cores=3)
        h.store(0, BASE, b"v1......")
        h.load(1, BASE, 8)             # dirty v1 in LLC, both cores S
        h.store(2, BASE, b"v3......")  # third core takes M
        h.flush_all()
        assert space.read(BASE, 8) == b"v3......"

    def test_no_m_owner_coexists_with_llc_copy(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"x")
        h.load(1, BASE, 8)
        h.store(1, BASE, b"y")
        owner = h.directory.owner(BASE)
        assert owner is not None
        assert h.llc.peek(BASE) is None


class TestCrash:
    def test_drop_all_loses_dirty_data(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"\xaa" * 8)
        h.drop_all()
        assert h.load(0, BASE, 8) == bytes(8)

    def test_flush_all_preserves_dirty_data(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"\xbb" * 8)
        h.flush_all()
        h.drop_all()
        assert h.load(0, BASE, 8) == b"\xbb" * 8

    def test_dirty_lines_listing(self):
        h, _c, _s, _home = build()
        h.store(0, BASE, b"x")
        h.store(0, BASE + 128, b"y")
        h.load(0, BASE + 256, 8)
        assert h.dirty_lines() == [BASE, BASE + 128]


class TestWritebackLine:
    def test_clwb_pushes_to_home_keeps_line(self):
        h, _c, space, _home = build()
        h.store(0, BASE, b"flushme!")
        assert h.writeback_line(BASE)
        assert space.read(BASE, 8) == b"flushme!"
        # The line stays cached (clean) and hits in L1.
        hits = h.stats.get("l1_hits")
        h.load(0, BASE, 8)
        assert h.stats.get("l1_hits") == hits + 1

    def test_clwb_clean_line_is_noop(self):
        h, _c, _s, _home = build()
        h.load(0, BASE, 8)
        assert not h.writeback_line(BASE)

    def test_clwb_then_crash_preserves(self):
        h, _c, space, _home = build()
        h.store(0, BASE, b"saved")
        h.writeback_line(BASE)
        h.drop_all()
        assert space.read(BASE, 5) == b"saved"
