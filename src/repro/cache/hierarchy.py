"""The coherent CPU cache hierarchy.

Per core: a private L1 and an L2 *inclusive of* L1. Shared across cores: a
non-inclusive (victim-style) LLC. Coherence state lives in the
:class:`~repro.cache.coherence.Directory`. Design choices that matter for
PAX (and are exercised by tests):

* **L1 and L2 alias one line object per core.** A line resident in both
  levels is the *same* :class:`~repro.cache.line.CacheLine` instance, so
  the dirty bit and data can never diverge within a core. Distinct cores
  and the LLC hold distinct copies.
* **M/E lines are never silently dropped.** Private-cache evictions always
  notify the directory; dirty data always lands in the LLC, and dirty LLC
  victims always reach the owning home. This is what lets the PAX device
  reason about write-back safety.
* **Device-homed lines are never granted E.** A store therefore always
  produces a coherence transaction the device can see at least once per
  epoch (after each `persist()` snoop downgrade, lines are S again).
* **Snoop entry points.** :meth:`snoop_shared` / :meth:`snoop_invalidate`
  are the host-side handlers for the device-to-host messages PAX sends
  during `persist()` (paper §3.3): they downgrade/invalidate every cached
  copy and surface the freshest dirty data.

A crash (:meth:`drop_all`) discards caches and directory — the ADR model.
:meth:`flush_all` implements eADR: dirty lines are pushed to their homes
first.
"""

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.line import CacheLine, MesiState
from repro.cache.mechanisms import make_mechanisms
from repro.errors import AddressError, ProtocolError
from repro.util.bitops import split_lines
from repro.util.constants import CACHE_LINE_SIZE
from repro.util.fastpath import fast_path_enabled
from repro.util.stats import StatGroup

#: Offset-within-line mask, hoisted for the single-line fast path.
_LINE_MASK = CACHE_LINE_SIZE - 1

#: MESI states bound to module globals: the per-access walk compares
#: against these a handful of times per event, and a global load is
#: cheaper than two attribute hops.
_INVALID = MesiState.INVALID
_SHARED = MesiState.SHARED
_EXCLUSIVE = MesiState.EXCLUSIVE
_MODIFIED = MesiState.MODIFIED


class _Core:
    """Private cache levels for one core."""

    __slots__ = ("core_id", "l1", "l2")

    def __init__(self, core_id, l1_config, l2_config):
        self.core_id = core_id
        self.l1 = SetAssociativeCache("core%d.l1" % core_id, l1_config)
        self.l2 = SetAssociativeCache("core%d.l2" % core_id, l2_config)


def default_l1_config():
    """32 KiB, 8-way — Skylake-SP L1D."""
    return CacheConfig(size_bytes=32 * 1024, ways=8)


def default_l2_config():
    """256 KiB, 8-way (sized so set count is a power of two)."""
    return CacheConfig(size_bytes=256 * 1024, ways=8)


def default_llc_config():
    """2 MiB shared slice, 16-way."""
    return CacheConfig(size_bytes=2 * 1024 * 1024, ways=16)


class CacheHierarchy:
    """A multi-core write-back cache hierarchy over pluggable homes."""

    def __init__(self, clock, latency, num_cores=1,
                 l1_config=None, l2_config=None, llc_config=None,
                 mechanisms=None, mech_policy="lru"):
        self._clock = clock
        self._lat = latency
        self.num_cores = num_cores
        self._cores = [
            _Core(i, l1_config or default_l1_config(),
                  l2_config or default_l2_config())
            for i in range(num_cores)
        ]
        self._llc = SetAssociativeCache("llc", llc_config or default_llc_config())
        #: Miss-path mechanism stack below the LLC (None = pre-zoo miss
        #: path, byte-for-byte). See :mod:`repro.cache.mechanisms`.
        self._mech = make_mechanisms(mechanisms, mech_policy,
                                     label_prefix="host.mech")
        from repro.cache.coherence import Directory
        self._dir = Directory()
        # Direct reference to the directory's entry dict: the per-access
        # walk reads coherence state once per event, and going through
        # Directory.state() costs a method call plus a second dict probe.
        # The dict identity is stable (Directory.clear() empties in place).
        self._dir_entries = self._dir._entries
        self._homes = []
        #: line_addr -> home memo over the sorted range list; rebuilt
        #: lazily and invalidated by :meth:`add_home`.
        self._home_map = {}
        #: Optional :class:`~repro.sanitizer.base.Tracer` notified of
        #: every store (machines re-propagate it across restart()).
        self.tracer = None
        self.stats = StatGroup("hierarchy")
        # Hot counters/histograms bound once so no string-keyed lookup
        # happens per access (see the hot-path-stat-lookup lint rule).
        stats = self.stats
        self._c_loads = stats.counter("loads")
        self._c_stores = stats.counter("stores")
        self._c_l1_hits = stats.counter("l1_hits")
        self._c_l2_hits = stats.counter("l2_hits")
        self._c_llc_hits = stats.counter("llc_hits")
        self._c_memory_fetches = stats.counter("memory_fetches")
        self._c_cross_core = stats.counter("cross_core_transfers")
        self._c_sharer_forwards = stats.counter("sharer_forwards")
        self._c_upgrades = stats.counter("upgrades")
        self._c_inval_snoops = stats.counter("invalidation_snoops")
        self._c_l1_evictions = stats.counter("l1_evictions")
        self._c_l2_evictions = stats.counter("l2_evictions")
        self._c_llc_writebacks = stats.counter("llc_writebacks")
        self._c_clwb_writebacks = stats.counter("clwb_writebacks")
        self._c_snoop_shared = stats.counter("snoop_shared")
        self._c_snoop_invalidate = stats.counter("snoop_invalidate")
        self._c_mech_hits = stats.counter("mech_hits")
        self._c_mech_prefetch_fetches = stats.counter("mech_prefetch_fetches")
        self._h_access_ns = stats.histogram("access_ns")
        cache_lat = self._lat.cache
        self._l1_ns = cache_lat.l1_ns
        self._l2_ns = cache_lat.l2_ns
        self._llc_ns = cache_lat.llc_ns
        self._cross_core_ns = cache_lat.cross_core_ns
        # Bound methods for the per-access epilogue (histogram sample +
        # clock charge); both targets are fixed for the hierarchy's life.
        self._record_access = self._h_access_ns.record
        self._advance = clock.advance
        self._fast = fast_path_enabled()

    # -- configuration ------------------------------------------------------

    def add_home(self, base, size, home):
        """Register ``home`` as owning physical range ``[base, base+size)``."""
        self._homes.append((base, base + size, home))
        self._homes.sort(key=lambda item: item[0])
        self._home_map.clear()

    def home_for(self, line_addr):
        """Return the home owning ``line_addr``.

        Memoized per line address: the miss path asks for the same few
        hundred thousand lines over and over, and the linear range scan
        only needs to run once per line.
        """
        home = self._home_map.get(line_addr)
        if home is not None:
            return home
        for base, end, home in self._homes:
            if base <= line_addr < end:
                self._home_map[line_addr] = home
                return home
        raise AddressError("no home for address 0x%x" % line_addr)

    # -- public access path ---------------------------------------------------

    def load(self, core_id, addr, size):
        """Perform a load of ``size`` bytes at ``addr`` from ``core_id``."""
        self._c_loads.value += 1
        if self._fast and 0 < size:
            offset = addr & _LINE_MASK
            if offset + size <= CACHE_LINE_SIZE:
                # Single-line fast path: no generator, no join buffer.
                line = self._access_line(core_id, addr - offset, False)
                return line.read(offset, size)
        out = bytearray()
        for base, offset, length in split_lines(addr, size):
            line = self._access_line(core_id, base, exclusive=False)
            out += line.read(offset, length)
        return bytes(out)

    def store(self, core_id, addr, data):
        """Perform a store of ``data`` at ``addr`` from ``core_id``."""
        data = bytes(data)
        self._c_stores.value += 1
        size = len(data)
        if self._fast and 0 < size:
            offset = addr & _LINE_MASK
            if offset + size <= CACHE_LINE_SIZE:
                base = addr - offset
                line = self._access_line(core_id, base, True)
                line.write(offset, data)
                if self.tracer is not None:
                    self.tracer.on_store(base)
                return
        cursor = 0
        for base, offset, length in split_lines(addr, size):
            line = self._access_line(core_id, base, exclusive=True)
            line.write(offset, data[cursor:cursor + length])
            cursor += length
            if self.tracer is not None:
                self.tracer.on_store(base)

    # -- the per-line coherence walk ----------------------------------------

    def _access_line(self, core_id, line_addr, exclusive):
        core = self._cores[core_id]
        entry = self._dir_entries.get(line_addr)
        state = _INVALID if entry is None \
            else entry.states.get(core_id, _INVALID)
        if state != _INVALID:
            return self._hit_path(core, line_addr, state, exclusive)
        return self._miss_path(core, line_addr, exclusive)

    def _hit_path(self, core, line_addr, state, exclusive):
        """The line is already in this core's private caches."""
        line = core.l1.lookup(line_addr)
        if line is not None:
            latency = self._l1_ns
            self._c_l1_hits.value += 1
        else:
            line = core.l2.lookup(line_addr)
            if line is None:
                raise ProtocolError(
                    "directory says core %d holds 0x%x but L2 lost it"
                    % (core.core_id, line_addr))
            latency = self._l2_ns
            self._c_l2_hits.value += 1
            self._fill_l1(core, line)
        if exclusive:
            if state == _SHARED:
                latency += self._upgrade(core.core_id, line_addr)
            elif state == _EXCLUSIVE:
                self._dir.set_state(line_addr, core.core_id, _MODIFIED)
                if self._mech is not None:
                    # Silent E->M: the only M transition with no home
                    # message, so the side buffers must be told here.
                    self._mech.invalidate(line_addr)
        # _charge() inlined: this is the single hottest return path.
        self._record_access(latency)
        self._advance(latency)
        return line

    def _miss_path(self, core, line_addr, exclusive):
        """The line is not in this core; find it elsewhere or at home."""
        latency = 0.0
        mech = self._mech
        if exclusive and mech is not None:
            # The line is about to be modified: whatever clean copy a
            # side buffer holds goes stale the instant the store lands.
            mech.invalidate(line_addr)
        owner = self._dir.owner(line_addr)
        sharers = [c for c in self._dir.sharers(line_addr)
                   if c != core.core_id]
        if owner is not None and owner != core.core_id:
            data, dirty, extra = self._pull_from_core(
                owner, line_addr, invalidate=exclusive)
            latency += extra
            new_state = MesiState.MODIFIED if exclusive else MesiState.SHARED
            line = CacheLine(line_addr, data, dirty=dirty if exclusive else False)
            if exclusive:
                # Any LLC copy is older than the stolen M data.
                self._llc.remove(line_addr)
            self._c_cross_core.add(1)
        elif sharers:
            # Cache-to-cache forward from a clean sharer: cheaper than a
            # home fetch, and for device-homed lines it spares a device
            # round trip. A store still tells the home (upgrade message),
            # because the PAX device must log the first modification.
            source = self._cores[sharers[0]].l2.peek(line_addr)
            if source is None:
                raise ProtocolError(
                    "directory sharer %d lost line 0x%x"
                    % (sharers[0], line_addr))
            data = source.snapshot()
            latency += self._cross_core_ns
            self._c_sharer_forwards.add(1)
            if exclusive:
                latency += self._invalidate_sharers(core.core_id, line_addr)
                # As in _upgrade: a dirty LLC copy is superseded by the
                # forwarded data the new owner will modify.
                self._llc.remove(line_addr)
                _none, home_ns = self.home_for(line_addr).acquire(
                    line_addr, True, False)
                latency += home_ns
                new_state = MesiState.MODIFIED
            else:
                new_state = MesiState.SHARED
            line = CacheLine(line_addr, data, dirty=False)
        else:
            if exclusive:
                latency += self._invalidate_sharers(core.core_id, line_addr)
            llc_line = self._llc.lookup(line_addr)
            home = self.home_for(line_addr)
            if llc_line is not None:
                latency += self._llc_ns
                self._c_llc_hits.add(1)
                data = llc_line.snapshot()
                dirty = llc_line.dirty
                if exclusive:
                    # Ownership (and the write-back obligation, if any)
                    # moves into the core; and for device-homed lines the
                    # device must still hear about the impending store.
                    self._llc.remove(line_addr)
                    _none, home_ns = home.acquire(line_addr, True, False)
                    latency += home_ns
                    line = CacheLine(line_addr, data, dirty=dirty)
                    new_state = MesiState.MODIFIED
                else:
                    line = CacheLine(line_addr, data, dirty=False)
                    new_state = MesiState.SHARED
            else:
                latency += self._llc_ns   # LLC lookup that missed
                data = None
                if mech is not None and not exclusive:
                    # Side buffers serve demand loads only: stores must
                    # reach the home so the device logs the first write.
                    data = mech.probe(line_addr, self._mech_fetch)
                if data is not None:
                    latency += self._llc_ns   # adjacent side-buffer probe
                    self._c_mech_hits.value += 1
                    line = CacheLine(line_addr, data, dirty=False)
                    new_state = MesiState.SHARED
                else:
                    data, home_ns = home.acquire(line_addr, exclusive, True)
                    latency += home_ns
                    self._c_memory_fetches.add(1)
                    if mech is not None and not exclusive:
                        mech.on_demand_fill(line_addr, data, self._mech_fetch)
                    line = CacheLine(line_addr, data, dirty=False)
                    if exclusive:
                        new_state = MesiState.MODIFIED
                    elif home.grants_exclusive \
                            and not self._dir.sharers(line_addr):
                        new_state = MesiState.EXCLUSIVE
                    else:
                        new_state = MesiState.SHARED
        latency += self._fill_core(core, line)
        self._dir.set_state(line_addr, core.core_id, new_state)
        tracer = self.tracer
        if tracer is not None:
            tracer.on_span("store" if exclusive else "load", "miss",
                           self._clock.now_ns, latency, {"line": line_addr})
        self._charge(latency)
        return line

    def _upgrade(self, core_id, line_addr):
        """S -> M: invalidate other sharers, tell the home if it must know."""
        if self._mech is not None:
            self._mech.invalidate(line_addr)
        latency = self._invalidate_sharers(core_id, line_addr)
        # A dirty LLC copy (from an earlier M->S downgrade) is superseded:
        # the new owner's M line carries the write-back obligation now, so
        # the stale copy must not be written back later.
        self._llc.remove(line_addr)
        home = self.home_for(line_addr)
        _none, home_ns = home.acquire(line_addr, True, False)
        latency += home_ns
        self._dir.set_state(line_addr, core_id, MesiState.MODIFIED)
        self._c_upgrades.add(1)
        return latency

    def _invalidate_sharers(self, requester, line_addr):
        """Drop every other core's (necessarily clean, S-state) copy."""
        latency = 0.0
        for sharer in list(self._dir.sharers(line_addr)):
            if sharer == requester:
                continue
            other = self._cores[sharer]
            other.l1.remove(line_addr)
            other.l2.remove(line_addr)
            self._dir.drop(line_addr, sharer)
            latency += self._llc_ns   # snoop round through the LLC
            self._c_inval_snoops.add(1)
        return latency

    def _pull_from_core(self, owner_id, line_addr, invalidate):
        """Fetch the line from the core holding it M/E."""
        owner = self._cores[owner_id]
        line = owner.l2.peek(line_addr)
        if line is None:
            raise ProtocolError(
                "directory owner %d lost line 0x%x" % (owner_id, line_addr))
        data = line.snapshot()
        dirty = line.dirty
        extra = self._cross_core_ns
        if invalidate:
            owner.l1.remove(line_addr)
            owner.l2.remove(line_addr)
            self._dir.drop(line_addr, owner_id)
        else:
            # Downgrade to S; the dirty data's write-back obligation moves
            # to the LLC so no update is lost if the ex-owner evicts.
            line.dirty = False
            self._dir.set_state(line_addr, owner_id, MesiState.SHARED)
            if dirty:
                extra += self._insert_llc(CacheLine(line_addr, data, dirty=True))
        return data, dirty, extra

    # -- fills and evictions ---------------------------------------------------

    def _fill_core(self, core, line):
        """Insert ``line`` into L2 then L1 (same object), handling victims."""
        latency = 0.0
        victim = core.l2.insert(line)
        if victim is not None:
            latency += self._evict_from_l2(core, victim)
        self._fill_l1(core, line)
        return latency

    def _fill_l1(self, core, line):
        victim = core.l1.insert(line)
        if victim is not None and victim.addr != line.addr:
            # The victim object still lives in L2 (inclusion), so dropping
            # the L1 pointer loses nothing.
            if core.l2.peek(victim.addr) is None:
                raise ProtocolError(
                    "L1 victim 0x%x missing from inclusive L2" % victim.addr)
            self._c_l1_evictions.add(1)

    def _evict_from_l2(self, core, victim):
        """An L2 victim leaves the core entirely (back-invalidates L1)."""
        core.l1.remove(victim.addr)
        self._dir.drop(victim.addr, core.core_id)
        self._c_l2_evictions.add(1)
        if victim.dirty:
            return self._insert_llc(CacheLine(victim.addr, victim.data, dirty=True))
        if self._mech is not None:
            # Clean L2 victims bypass the non-inclusive LLC entirely, so
            # this is where they leave the hierarchy — the victim-buffer
            # capture point on the memory side.
            self._mech.on_evict(victim.addr, victim.snapshot())
        return 0.0

    def _insert_llc(self, line):
        """Insert into the LLC; push any dirty LLC victim to its home."""
        existing = self._llc.peek(line.addr)
        if existing is not None:
            existing.data = bytearray(line.data)
            existing.dirty = existing.dirty or line.dirty
            return 0.0
        victim = self._llc.insert(line)
        if victim is None:
            return 0.0
        latency = 0.0
        if victim.dirty:
            home = self.home_for(victim.addr)
            latency = home.writeback(victim.addr, victim.snapshot())
            self._c_llc_writebacks.add(1)
        if self._mech is not None:
            # Dirty victims were just written back, so the captured copy
            # matches the home again; clean victims always did.
            self._mech.on_evict(victim.addr, victim.snapshot())
        return latency

    # -- mechanism plumbing ------------------------------------------------------

    def _mech_fetch(self, line_addr):
        """Guarded background fetch for mechanism prefetches.

        Returns the home's current data for ``line_addr``, or None when
        the line must not be prefetched: held by any core (an E holder
        could silently transition to M, leaving the buffer stale with no
        invalidation message), resident in the LLC (prefetch would be
        pure pollution), or outside every home's range. The transfer's
        side effects (home counters, link bandwidth backlog, device HBM
        fill) happen; the latency is hidden — an overlapped background
        fill that never delays the demand access that triggered it.
        """
        entry = self._dir_entries.get(line_addr)
        if entry is not None and entry.states:
            return None
        if self._llc.peek(line_addr) is not None:
            return None
        try:
            home = self.home_for(line_addr)
        except AddressError:
            return None
        data, _overlapped_ns = home.acquire(line_addr, False, True)
        self._c_mech_prefetch_fetches.value += 1
        return data

    @property
    def mechanisms(self):
        """The miss-path mechanism stack, or None (tests, fast-path gate)."""
        return self._mech

    # -- snoops from the device (and eADR flushing) -----------------------------

    def snoop_shared(self, line_addr):
        """Downgrade every cached copy to S; return freshest dirty data.

        This is the host-side handler for the device-to-host RdShared the
        PAX device issues for every logged line during ``persist()``
        (paper §3.3). Returns None if no copy was dirty — the device then
        already holds the newest value.

        Custody contract: returned dirty data carries its write-back
        obligation with it — the caller (the device) must get it to the
        home. All cached copies are left clean, so nothing else will.
        """
        self._c_snoop_shared.add(1)
        fresh = None
        owner = self._dir.owner(line_addr)
        if owner is not None:
            line = self._cores[owner].l2.peek(line_addr)
            if line is None:
                raise ProtocolError(
                    "owner %d lost snooped line 0x%x" % (owner, line_addr))
            if line.dirty:
                fresh = line.snapshot()
                line.dirty = False
            self._dir.set_state(line_addr, owner, MesiState.SHARED)
        llc_line = self._llc.peek(line_addr)
        if llc_line is not None:
            if fresh is not None:
                llc_line.data = bytearray(fresh)
                llc_line.dirty = False
            elif llc_line.dirty:
                fresh = llc_line.snapshot()
                llc_line.dirty = False
        if self.tracer is not None:
            self.tracer.on_snoop("shared", line_addr, fresh is not None)
        return fresh

    def snoop_invalidate(self, line_addr):
        """Remove every cached copy; return freshest dirty data (or None)."""
        self._c_snoop_invalidate.add(1)
        if self._mech is not None:
            # The device is taking custody of the line; drop any side-
            # buffer copy along with the cached ones.
            self._mech.invalidate(line_addr)
        fresh = None
        owner = self._dir.owner(line_addr)
        for sharer in list(self._dir.sharers(line_addr)):
            core = self._cores[sharer]
            line = core.l2.peek(line_addr)
            if line is not None and line.dirty and sharer == owner:
                fresh = line.snapshot()
            core.l1.remove(line_addr)
            core.l2.remove(line_addr)
            self._dir.drop(line_addr, sharer)
        llc_line = self._llc.remove(line_addr)
        if llc_line is not None and llc_line.dirty and fresh is None:
            fresh = llc_line.snapshot()
        if self.tracer is not None:
            self.tracer.on_snoop("invalidate", line_addr, fresh is not None)
        return fresh

    def writeback_line(self, line_addr):
        """CLWB semantics: push the dirty copy (if any) to the home, keep
        the line cached clean. Returns True if data was written back."""
        owner = self._dir.owner(line_addr)
        if owner is not None:
            line = self._cores[owner].l2.peek(line_addr)
            if line is not None and line.dirty:
                self._charge(self.home_for(line_addr).writeback(
                    line_addr, line.snapshot()))
                line.dirty = False
                self._dir.set_state(line_addr, owner, MesiState.SHARED)
                llc_line = self._llc.peek(line_addr)
                if llc_line is not None:
                    llc_line.data = bytearray(line.data)
                    llc_line.dirty = False
                self._c_clwb_writebacks.add(1)
                return True
        llc_line = self._llc.peek(line_addr)
        if llc_line is not None and llc_line.dirty:
            self._charge(self.home_for(line_addr).writeback(
                line_addr, llc_line.snapshot()))
            llc_line.dirty = False
            self._c_clwb_writebacks.add(1)
            return True
        return False

    # -- crash semantics ---------------------------------------------------------

    def drop_all(self):
        """ADR crash: every cached byte (incl. dirty data) is lost."""
        for core in self._cores:
            core.l1.clear()
            core.l2.clear()
        self._llc.clear()
        if self._mech is not None:
            self._mech.clear()
        self._dir.clear()
        self.stats.counter("crash_drops").add(1)

    def flush_all(self):
        """eADR: write every dirty line back to its home, then keep clean copies."""
        flushed = 0
        for line_addr in self._dir.lines_held():
            owner = self._dir.owner(line_addr)
            if owner is None:
                continue
            line = self._cores[owner].l2.peek(line_addr)
            if line is not None and line.dirty:
                self.home_for(line_addr).writeback(line_addr, line.snapshot())
                line.dirty = False
                self._dir.set_state(line_addr, owner, MesiState.SHARED)
                flushed += 1
        for line in list(self._llc.lines()):
            if line.dirty:
                self.home_for(line.addr).writeback(line.addr, line.snapshot())
                line.dirty = False
                flushed += 1
        self.stats.counter("eadr_flushes").add(flushed)
        return flushed

    def dirty_lines(self):
        """Addresses of every dirty line anywhere in the hierarchy."""
        dirty = set()
        for core in self._cores:
            for line in core.l2.lines():
                if line.dirty:
                    dirty.add(line.addr)
        for line in self._llc.lines():
            if line.dirty:
                dirty.add(line.addr)
        return sorted(dirty)

    # -- bookkeeping ------------------------------------------------------------

    def _charge(self, latency_ns):
        self._record_access(latency_ns)
        self._advance(latency_ns)

    @property
    def directory(self):
        """The coherence directory (exposed for tests and the device)."""
        return self._dir

    @property
    def llc(self):
        """The shared last-level cache array."""
        return self._llc

    def core_caches(self, core_id):
        """Return ``(l1, l2)`` arrays of one core (tests)."""
        core = self._cores[core_id]
        return core.l1, core.l2

    def __repr__(self):
        return "CacheHierarchy(%d cores)" % self.num_cores
